//! Strategy trait, combinators, and the regex-subset string strategy.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type. Unlike the real crate
/// there is no value tree / shrinking — `generate` produces a final value.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive structures: `self` is the leaf case, `recurse` builds one
    /// level of nesting from a strategy for the level below. Unlike the
    /// real crate there is no size accounting — `depth` bounds nesting and
    /// each level flips a coin between leaf and node, so the two tuning
    /// parameters are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let leaf = strat.clone();
            let node = recurse(leaf.clone()).boxed();
            strat = BoxedStrategy(Rc::new(move |rng| {
                if rng.below(2) == 0 {
                    leaf.generate(rng)
                } else {
                    node.generate(rng)
                }
            }));
        }
        strat
    }
}

/// Type-erased strategy (used by `prop_oneof!`).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?}: 1000 consecutive rejects", self.whence);
    }
}

/// Chooses one of several strategies, optionally weighted.
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: std::fmt::Debug> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

// -- numeric ranges ----------------------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                // span can be 2^64 for the full domain; fold the modulo in
                // u128 space.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

// -- tuples ------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

// -- regex-subset string strategy --------------------------------------------

/// `&str` as a strategy: the string is a regex (subset) and values are
/// strings matching it.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = RegexNode::parse(self);
        let mut out = String::new();
        ast.emit(rng, &mut out);
        out
    }
}

/// Parsed regex subset: alternation of sequences of quantified atoms.
#[derive(Debug, Clone)]
enum RegexNode {
    /// Alternation: one branch is chosen uniformly.
    Alt(Vec<RegexNode>),
    /// Concatenation of quantified atoms.
    Seq(Vec<(RegexNode, u32, u32)>),
    /// Character class as inclusive ranges.
    Class(Vec<(char, char)>),
    /// Literal character.
    Lit(char),
}

/// Unbounded quantifiers are capped — proptest-the-real-crate defaults to
/// small strings too.
const STAR_MAX: u32 = 8;

impl RegexNode {
    fn parse(pattern: &str) -> RegexNode {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0usize;
        let node = Self::parse_alt(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "unsupported regex {pattern:?}: trailing input at {pos}"
        );
        node
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> RegexNode {
        let mut branches = vec![Self::parse_seq(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            branches.push(Self::parse_seq(chars, pos));
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            RegexNode::Alt(branches)
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> RegexNode {
        let mut atoms = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = Self::parse_atom(chars, pos);
            let (lo, hi) = Self::parse_quant(chars, pos);
            atoms.push((atom, lo, hi));
        }
        RegexNode::Seq(atoms)
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> RegexNode {
        match chars[*pos] {
            '[' => {
                *pos += 1;
                assert!(
                    chars.get(*pos) != Some(&'^'),
                    "unsupported regex: negated classes"
                );
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let lo = Self::class_char(chars, pos);
                    if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                        *pos += 1;
                        let hi = Self::class_char(chars, pos);
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(chars.get(*pos) == Some(&']'), "unterminated char class");
                *pos += 1;
                RegexNode::Class(ranges)
            }
            '(' => {
                *pos += 1;
                let inner = Self::parse_alt(chars, pos);
                assert!(chars.get(*pos) == Some(&')'), "unterminated group");
                *pos += 1;
                inner
            }
            '\\' => {
                *pos += 1;
                let c = Self::unescape(chars[*pos]);
                *pos += 1;
                RegexNode::Lit(c)
            }
            '.' => {
                *pos += 1;
                RegexNode::Class(vec![(' ', '~')])
            }
            c => {
                *pos += 1;
                RegexNode::Lit(c)
            }
        }
    }

    fn class_char(chars: &[char], pos: &mut usize) -> char {
        if chars[*pos] == '\\' {
            *pos += 1;
            let c = Self::unescape(chars[*pos]);
            *pos += 1;
            c
        } else {
            let c = chars[*pos];
            *pos += 1;
            c
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other, // \\ \- \] \( … — the char itself
        }
    }

    fn parse_quant(chars: &[char], pos: &mut usize) -> (u32, u32) {
        match chars.get(*pos) {
            Some('*') => {
                *pos += 1;
                (0, STAR_MAX)
            }
            Some('+') => {
                *pos += 1;
                (1, STAR_MAX)
            }
            Some('?') => {
                *pos += 1;
                (0, 1)
            }
            Some('{') => {
                *pos += 1;
                let mut lo = 0u32;
                while chars[*pos].is_ascii_digit() {
                    lo = lo * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let hi = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut hi = 0u32;
                    let mut saw = false;
                    while chars[*pos].is_ascii_digit() {
                        hi = hi * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                        saw = true;
                    }
                    if saw {
                        hi
                    } else {
                        lo + STAR_MAX
                    }
                } else {
                    lo
                };
                assert!(chars[*pos] == '}', "unterminated quantifier");
                *pos += 1;
                (lo, hi)
            }
            _ => (1, 1),
        }
    }

    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            RegexNode::Alt(branches) => {
                let i = rng.below(branches.len() as u64) as usize;
                branches[i].emit(rng, out);
            }
            RegexNode::Seq(atoms) => {
                for (atom, lo, hi) in atoms {
                    let n = if hi > lo {
                        lo + rng.below((hi - lo + 1) as u64) as u32
                    } else {
                        *lo
                    };
                    for _ in 0..n {
                        atom.emit(rng, out);
                    }
                }
            }
            RegexNode::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| (*b as u64).saturating_sub(*a as u64) + 1)
                    .sum();
                let mut pick = rng.below(total.max(1));
                for (a, b) in ranges {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(*a as u32 + pick as u32).unwrap_or(*a));
                        return;
                    }
                    pick -= span;
                }
            }
            RegexNode::Lit(c) => out.push(*c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(12345)
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3i64..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let u = (2usize..=4).generate(&mut r);
            assert!((2..=4).contains(&u));
            let f = (-1.0..1.0f64).generate(&mut r);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_matches_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[A-Za-z_][A-Za-z0-9_]{0,20}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 21, "{s:?}");
            let c0 = s.chars().next().unwrap();
            assert!(c0.is_ascii_alphabetic() || c0 == '_', "{s:?}");

            let t = "[ -~\\n\\t]{0,200}".generate(&mut r);
            assert!(t.len() <= 200);
            assert!(t
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));

            let u = "[ -~]{0,12}(,|\"|\\n)?[ -~]{0,8}".generate(&mut r);
            assert!(u.len() <= 21);
        }
    }

    #[test]
    fn oneof_and_combinators() {
        let mut r = rng();
        let strat = crate::prop_oneof![Just("a".to_string()), Just("b".to_string()), "[0-9]{1,3}",];
        let mut saw_a = false;
        let mut saw_digit = false;
        for _ in 0..200 {
            let v = strat.generate(&mut r);
            if v == "a" {
                saw_a = true;
            }
            if v.chars().all(|c| c.is_ascii_digit()) && !v.is_empty() {
                saw_digit = true;
            }
        }
        assert!(saw_a && saw_digit);

        let mapped = (0i64..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = mapped.generate(&mut r);
            assert!(v % 2 == 0 && (0..10).contains(&v));
        }

        let flat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..10, n));
        for _ in 0..50 {
            let v = flat.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }
}
