//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_filter`, numeric-range and regex-subset string
//! strategies, tuple strategies, `collection::vec` / `collection::btree_set`,
//! `option::of`, `prop_oneof!`, `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed, there is **no shrinking** (the failing
//! input is printed as-is), and regex string strategies support only the
//! subset of syntax found in this repo (char classes, groups with
//! alternation, `* + ? {m,n}` quantifiers, common escapes).

pub mod strategy;

pub mod test_runner {
    /// RNG used for generation: xoshiro-free SplitMix64 chain — small,
    /// fast, deterministic.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Run-time configuration; `ProptestConfig` in the prelude.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        /// Honors `PROPTEST_CASES` (as the real crate does), so CI can
        /// pin the case count explicitly and local runs can dial it up
        /// (`PROPTEST_CASES=4096 cargo test`) or down while debugging.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256);
            Config {
                cases,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — the case is skipped, not failed.
        Reject(String),
        /// `prop_assert*!` failed.
        Fail(String),
    }

    /// Drives `config.cases` accepted cases of `body`, seeding the RNG
    /// from `ident` (usually file:line) so each test has its own stream.
    pub fn run_cases<F>(config: Config, ident: &str, mut body: F)
    where
        F: FnMut(&mut TestRng, &mut Vec<String>) -> Result<(), TestCaseError>,
    {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in ident.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut attempt = 0u64;
        while accepted < config.cases {
            attempt += 1;
            let mut rng = TestRng::from_seed(seed ^ attempt.wrapping_mul(0xa076_1d64_78bd_642f));
            let mut desc: Vec<String> = Vec::new();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng, &mut desc)
            }));
            match outcome {
                Ok(Ok(())) => accepted += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest: too many prop_assume! rejects \
                             ({rejected} rejects for {accepted} accepted cases)"
                        );
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest case failed (case #{accepted}, attempt {attempt}): {msg}\n\
                         inputs:\n  {}",
                        desc.join("\n  ")
                    );
                }
                Err(panic_payload) => {
                    eprintln!(
                        "proptest case panicked (case #{accepted}, attempt {attempt})\n\
                         inputs:\n  {}",
                        desc.join("\n  ")
                    );
                    std::panic::resume_unwind(panic_payload);
                }
            }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    // Bias toward boundary values — uniform bits alone
                    // almost never produce 0/MIN/MAX.
                    match rng.below(8) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            match rng.below(10) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => f64::MIN_POSITIVE,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy producing any value of `A`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for collections: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi_incl <= self.lo {
                self.lo
            } else {
                self.lo + rng.below((self.hi_incl - self.lo + 1) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_incl: r.end.saturating_sub(1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector of `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = std::collections::BTreeSet::new();
            // Duplicates may make the exact target unreachable; bound the
            // attempts like the real crate does.
            for _ in 0..n.saturating_mul(4).max(16) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// `proptest::collection::btree_set` — a set of `element`, sized by
    /// `size` (best effort when duplicates collide).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `proptest::option::of` — `Some(inner)` half the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// -- macros ------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            $crate::test_runner::run_cases(
                __config,
                concat!(file!(), "::", stringify!($name)),
                |__rng, __desc| {
                    $(
                        let __v = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __desc.push(format!("{} = {:?}", stringify!($pat), &__v));
                        let $pat = __v;
                    )+
                    { $body }
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform (or weighted, `w => strat`) choice among strategies of one
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    format!("{} at {}:{}", format_args!($($fmt)*), file!(), line!())
                )
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format_args!($($fmt)*), l, r
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Skip this case (not a failure) when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
