//! Offline stand-in for the `rand` crate (0.8 API shape).
//!
//! Implements the subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_range`,
//! `gen_bool` — on top of xoshiro256++ seeded via SplitMix64. Streams are
//! deterministic per seed but do **not** match the real crate's streams.

pub mod rngs {
    pub use crate::StdRng;
}

/// Core RNG trait: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniformly samplable numeric types (supports `Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
    /// Successor for turning inclusive ranges into exclusive ones; `None`
    /// when `hi` is the maximum value (floats just widen negligibly).
    fn successor(self) -> Option<Self>;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "gen_range: empty range");
                let span = (high_excl as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; span ≪ 2^64 in
                // practice so modulo bias is negligible for test workloads.
                let r = rng.next_u64() as u128;
                let off = (r * span) >> 64;
                (low as i128 + off as i128) as $t
            }

            fn successor(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high_excl - low)
            }

            fn successor(self) -> Option<Self> {
                Some(self) // inclusive float ranges: endpoint hit has measure ~0
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges acceptable to `gen_range` (half-open and inclusive).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        match hi.successor() {
            Some(hi_excl) if lo < hi_excl => T::sample_range(rng, lo, hi_excl),
            _ => lo, // degenerate or saturated range
        }
    }
}

/// Types producible by `Rng::gen` (the `Standard` distribution).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// xoshiro256++ — fast, solid statistical quality for test-data generation.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
            let j: usize = rng.gen_range(0..5usize);
            assert!(j < 5);
            let k = rng.gen_range(1..=12);
            assert!((1..=12).contains(&k));
            let f = rng.gen_range(5.0..10_000.0f64);
            assert!((5.0..10_000.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
        // gen_bool hits both sides for p=0.5.
        let flips: Vec<bool> = (0..100).map(|_| rng.gen_bool(0.5)).collect();
        assert!(flips.iter().any(|&x| x) && flips.iter().any(|&x| !x));
    }

    #[test]
    fn skew_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let lows = (0..1000).filter(|_| rng.gen_bool(0.1)).count();
        assert!(lows > 30 && lows < 250, "gen_bool(0.1) hit {lows}/1000");
    }
}
