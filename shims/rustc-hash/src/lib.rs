//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the same FxHash algorithm (a multiply-and-rotate hash
//! originally from Firefox, used by rustc) so behaviour and performance
//! match the real crate for the APIs this workspace uses.

use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hashing algorithm (word-at-a-time multiply +
/// rotate). Not HashDoS-resistant — use only for trusted keys.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u32::from_le_bytes(buf) as u64);
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u16::from_le_bytes(buf) as u64);
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hash_is_deterministic() {
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"hello world");
        h2.write(b"hello world");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"hello worle");
        assert_ne!(h1.finish(), h3.finish());
    }
}
