//! Offline stand-in for `rayon`.
//!
//! The parallel-iterator entry points (`par_iter`, `into_par_iter`,
//! `par_sort_unstable_by`, …) return **ordinary sequential iterators**, so
//! every adapter (`map`, `filter`, `max`, ordered `collect`, …) keeps its
//! std semantics. Call sites keep rayon's API shape; execution is simply
//! single-threaded until the real crate is available. The ordered-collect
//! guarantee call sites rely on holds trivially.

pub mod prelude {
    /// `.par_iter()` on slice-like containers → sequential `slice::Iter`.
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.into_par_iter()` → the container's ordinary `IntoIterator`.
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = std::ops::Range<u32>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Iter = std::ops::Range<u64>;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    /// `par_sort_*` on mutable slices → the std sorts.
    pub trait ParallelSliceMut<T> {
        fn as_mut_slice_for_par(&mut self) -> &mut [T];

        fn par_sort_unstable_by<F>(&mut self, cmp: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.as_mut_slice_for_par().sort_unstable_by(cmp);
        }

        fn par_sort_by<F>(&mut self, cmp: F)
        where
            F: FnMut(&T, &T) -> std::cmp::Ordering,
        {
            self.as_mut_slice_for_par().sort_by(cmp);
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_mut_slice_for_par().sort_unstable();
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn as_mut_slice_for_par(&mut self) -> &mut [T] {
            self
        }
    }

    impl<T> ParallelSliceMut<T> for Vec<T> {
        fn as_mut_slice_for_par(&mut self) -> &mut [T] {
            self.as_mut_slice()
        }
    }
}

/// Runs both closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Stand-in pool builder: `install` just runs the closure on this thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Number of "threads" the sequential stand-in uses.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![3, 1, 2];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let evens: Vec<u32> = (0..10u32).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
        let mut idx = vec![4u32, 1, 3];
        idx.par_sort_unstable_by(|a, b| a.cmp(b));
        assert_eq!(idx, vec![1, 3, 4]);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
    }
}
