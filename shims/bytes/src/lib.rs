//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the API the workspace's binary IR codec uses:
//! [`BytesMut`] as a growable write buffer, [`Bytes`] as its frozen
//! read-only form, the [`Buf`] cursor trait implemented for `&[u8]`, and
//! the [`BufMut`] writer trait implemented for [`BytesMut`]. Scalar
//! accessors are explicit-endian (`*_le`/plain big-endian pairs), matching
//! the real crate's semantics.

use std::ops::Deref;

/// Immutable, cheaply cloneable byte buffer (frozen [`BytesMut`]).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: std::sync::Arc::from(&[][..]),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: std::sync::Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: std::sync::Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer for building binary messages.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait: appends scalars/slices to a growable buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor trait. `&[u8]` is the canonical implementation: reads
/// advance the slice in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    /// Panics if `dst` is longer than the remaining input, like the real
    /// crate; callers bounds-check with [`Buf::remaining`] first.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xdead_beef);
        assert_eq!(cur.get_i64_le(), -42);
        assert_eq!(cur.get_f64_le(), 1.5);
        let mut rest = [0u8; 3];
        cur.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!cur.has_remaining());
    }
}
