//! Offline stand-in for `criterion`.
//!
//! Keeps the bench sources compiling and runnable: each benchmark is timed
//! with `std::time::Instant` over a fixed number of iterations and the
//! median per-iteration time is printed. No statistics, plots, or saved
//! baselines — swap the real crate back in for publishable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation (recorded, reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_string());
        group.bench_function("run", f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        self.report(&id.to_string(), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        self.report(&id.to_string(), &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mut samples = b.samples.clone();
        if samples.is_empty() {
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let per_iter = median / b.iters_per_sample.max(1) as u32;
        let thr = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter.as_nanos() > 0 => {
                let gib = n as f64 / (1u64 << 30) as f64;
                format!("  ({:.3} GiB/s)", gib / per_iter.as_secs_f64())
            }
            Some(Throughput::Elements(n)) if per_iter.as_nanos() > 0 => {
                format!("  ({:.3} Melem/s)", n as f64 / 1e6 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}: median {:?}{}", self.name, id, per_iter, thr);
        // Machine-readable sink for the bench-regression lane: when
        // `CRITERION_JSON` names a file, append one JSON line per bench.
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if !path.is_empty() {
                use std::io::Write as _;
                if let Ok(mut f) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                {
                    let _ = writeln!(
                        f,
                        "{{\"bench\":\"{}/{}\",\"median_ns\":{}}}",
                        self.name,
                        id,
                        per_iter.as_nanos()
                    );
                }
            }
        }
    }
}

/// Runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up call, then a timed sample.
        black_box(f());
        let start = Instant::now();
        black_box(f());
        self.iters_per_sample = 1;
        self.samples.push(start.elapsed());
    }

    /// Batched iteration: `setup` output is consumed by `routine` and its
    /// construction time is excluded from the sample.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.iters_per_sample = 1;
        self.samples.push(start.elapsed());
    }
}

/// Batch-size hint for `iter_batched` (ignored by the shim timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declares a bench group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("add", 7), &7u64, |b, &x| {
            b.iter(|| {
                calls += 1;
                x + 1
            });
        });
        group.finish();
        assert!(calls >= 3);
    }
}
