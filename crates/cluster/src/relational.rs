//! Distributed tabular operations (paper §III: the backend supports
//! "massively parallel execution of graph and tabular queries").
//!
//! Rows are range-partitioned across the simulated compute nodes; each
//! node computes partial per-group aggregates over its slice, and the
//! coordinator merges the partials. Results are bit-identical to the
//! single-node kernel ([`graql_table::ops::group_aggregate`]), including
//! the first-seen group ordering.

use graql_table::ops::{AggFn, AggSpec};
use graql_table::{ColumnDef, Table, TableSchema};
use graql_types::{DataType, GraqlError, Result, Value};
use rustc_hash::FxHashMap;

/// Per-group partial state (mergeable across nodes).
#[derive(Clone)]
struct Partial {
    /// First row index (global) that opened the group — for ordering.
    first_row: u32,
    count: i64,
    non_null: Vec<i64>,
    sum: Vec<f64>,
    /// Integer sums accumulate separately in i64 for precision.
    isum: Vec<i64>,
    min: Vec<Value>,
    max: Vec<Value>,
}

impl Partial {
    fn new(n_aggs: usize, first_row: u32) -> Partial {
        Partial {
            first_row,
            count: 0,
            non_null: vec![0; n_aggs],
            sum: vec![0.0; n_aggs],
            isum: vec![0; n_aggs],
            min: vec![Value::Null; n_aggs],
            max: vec![Value::Null; n_aggs],
        }
    }

    fn absorb_row(&mut self, t: &Table, row: usize, aggs: &[AggSpec]) {
        self.count += 1;
        for (ai, spec) in aggs.iter().enumerate() {
            let col = match spec.func {
                AggFn::CountStar => None,
                AggFn::Count(c) | AggFn::Sum(c) | AggFn::Avg(c) | AggFn::Min(c) | AggFn::Max(c) => {
                    Some(c)
                }
            };
            let Some(c) = col else { continue };
            let v = t.get(row, c);
            if v.is_null() {
                continue;
            }
            self.non_null[ai] += 1;
            if let Some(x) = v.as_f64() {
                self.sum[ai] += x;
            }
            if let Some(x) = v.as_int() {
                self.isum[ai] = self.isum[ai].wrapping_add(x);
            }
            if self.min[ai].is_null() || v < self.min[ai] {
                self.min[ai] = v.clone();
            }
            if self.max[ai].is_null() || v > self.max[ai] {
                self.max[ai] = v;
            }
        }
    }

    fn merge(&mut self, other: &Partial) {
        self.first_row = self.first_row.min(other.first_row);
        self.count += other.count;
        for i in 0..self.non_null.len() {
            self.non_null[i] += other.non_null[i];
            self.sum[i] += other.sum[i];
            self.isum[i] = self.isum[i].wrapping_add(other.isum[i]);
            if !other.min[i].is_null() && (self.min[i].is_null() || other.min[i] < self.min[i]) {
                self.min[i] = other.min[i].clone();
            }
            if !other.max[i].is_null() && (self.max[i].is_null() || other.max[i] > self.max[i]) {
                self.max[i] = other.max[i].clone();
            }
        }
    }
}

/// Distributed `group by` + aggregates over `nodes` simulated nodes.
pub fn distributed_group_aggregate(
    t: &Table,
    group_cols: &[usize],
    aggs: &[AggSpec],
    nodes: usize,
) -> Result<Table> {
    if nodes == 0 {
        return Err(GraqlError::cluster("a cluster needs at least one node"));
    }
    // Output schema mirrors the single-node kernel: group columns first,
    // then aggregate columns.
    let mut defs: Vec<ColumnDef> = group_cols
        .iter()
        .map(|&c| t.schema().column(c).clone())
        .collect();
    for a in aggs {
        let dtype = match a.func {
            AggFn::CountStar | AggFn::Count(_) => DataType::Integer,
            AggFn::Sum(c) => {
                let dt = t.schema().column(c).dtype;
                if !dt.is_numeric() {
                    return Err(GraqlError::type_error("aggregate over non-numeric column"));
                }
                dt
            }
            AggFn::Avg(c) => {
                if !t.schema().column(c).dtype.is_numeric() {
                    return Err(GraqlError::type_error("aggregate over non-numeric column"));
                }
                DataType::Float
            }
            AggFn::Min(c) | AggFn::Max(c) => t.schema().column(c).dtype,
        };
        defs.push(ColumnDef::new(a.out_name.clone(), dtype));
    }
    let schema = TableSchema::new(defs)?;

    // Range partitioning: node i takes rows [i*chunk, …).
    let n_rows = t.n_rows();
    let chunk = n_rows.div_ceil(nodes).max(1);
    let partials: Vec<FxHashMap<Vec<Value>, Partial>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nodes)
            .map(|node| {
                scope.spawn(move || {
                    let mut local: FxHashMap<Vec<Value>, Partial> = FxHashMap::default();
                    let lo = node * chunk;
                    let hi = ((node + 1) * chunk).min(n_rows);
                    for row in lo..hi {
                        let key: Vec<Value> = group_cols.iter().map(|&c| t.get(row, c)).collect();
                        local
                            .entry(key)
                            .or_insert_with(|| Partial::new(aggs.len(), row as u32))
                            .absorb_row(t, row, aggs);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Merge at the coordinator.
    let mut merged: FxHashMap<Vec<Value>, Partial> = FxHashMap::default();
    for local in partials {
        for (key, p) in local {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&p),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(p);
                }
            }
        }
    }
    // First-seen order, like the single-node kernel.
    let mut groups: Vec<(Vec<Value>, Partial)> = merged.into_iter().collect();
    groups.sort_by_key(|(_, p)| p.first_row);

    let mut out = Table::empty(schema);
    for (key, p) in &groups {
        let mut row: Vec<Value> = key.clone();
        for (ai, spec) in aggs.iter().enumerate() {
            row.push(match spec.func {
                AggFn::CountStar => Value::Int(p.count),
                AggFn::Count(_) => Value::Int(p.non_null[ai]),
                AggFn::Sum(c) => {
                    if p.non_null[ai] == 0 {
                        Value::Null
                    } else if t.schema().column(c).dtype == DataType::Integer {
                        Value::Int(p.isum[ai])
                    } else {
                        Value::Float(p.sum[ai])
                    }
                }
                AggFn::Avg(_) => {
                    if p.non_null[ai] == 0 {
                        Value::Null
                    } else {
                        Value::Float(p.sum[ai] / p.non_null[ai] as f64)
                    }
                }
                AggFn::Min(_) => p.min[ai].clone(),
                AggFn::Max(_) => p.max[ai].clone(),
            });
        }
        out.push_row(&row)?;
    }
    // Global aggregates over an empty table still yield one row (SQL
    // semantics, matching the kernel).
    if group_cols.is_empty() && out.n_rows() == 0 {
        let row: Vec<Value> = aggs
            .iter()
            .map(|a| match a.func {
                AggFn::CountStar | AggFn::Count(_) => Value::Int(0),
                _ => Value::Null,
            })
            .collect();
        out.push_row(&row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_table::ops::group_aggregate;
    use proptest::prelude::*;

    fn table(rows: &[(i64, Option<f64>)]) -> Table {
        let schema = TableSchema::of(&[("g", DataType::Integer), ("x", DataType::Float)]);
        Table::from_rows(
            schema,
            rows.iter()
                .map(|(g, x)| vec![Value::Int(*g), x.map(Value::Float).unwrap_or(Value::Null)]),
        )
        .unwrap()
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFn::CountStar, "n"),
            AggSpec::new(AggFn::Count(1), "nn"),
            AggSpec::new(AggFn::Sum(1), "s"),
            AggSpec::new(AggFn::Avg(1), "a"),
            AggSpec::new(AggFn::Min(1), "lo"),
            AggSpec::new(AggFn::Max(1), "hi"),
        ]
    }

    #[test]
    fn matches_single_node_kernel() {
        let t = table(&[
            (1, Some(2.0)),
            (2, Some(8.0)),
            (1, None),
            (1, Some(4.0)),
            (2, Some(1.0)),
        ]);
        let expected = group_aggregate(&t, &[0], &specs()).unwrap();
        for nodes in [1, 2, 3, 7] {
            let got = distributed_group_aggregate(&t, &[0], &specs(), nodes).unwrap();
            assert_eq!(got.n_rows(), expected.n_rows(), "{nodes} nodes");
            for r in 0..expected.n_rows() {
                assert_eq!(got.row(r), expected.row(r), "{nodes} nodes, row {r}");
            }
        }
    }

    #[test]
    fn global_aggregate_and_empty_input() {
        let t = table(&[]);
        let expected = group_aggregate(&t, &[], &specs()).unwrap();
        let got = distributed_group_aggregate(&t, &[], &specs(), 4).unwrap();
        assert_eq!(got.n_rows(), 1);
        assert_eq!(got.row(0), expected.row(0));
    }

    proptest! {
        #[test]
        fn equals_kernel_on_random_tables(
            rows in proptest::collection::vec((0i64..6, proptest::option::of(-100.0..100.0f64)), 0..60),
            nodes in 1usize..6,
        ) {
            let t = table(&rows);
            let expected = group_aggregate(&t, &[0], &specs()).unwrap();
            let got = distributed_group_aggregate(&t, &[0], &specs(), nodes).unwrap();
            prop_assert_eq!(got.n_rows(), expected.n_rows());
            for r in 0..expected.n_rows() {
                // Float sums can differ by association order; compare with
                // tolerance on the numeric columns, exactly elsewhere.
                let (e, g) = (expected.row(r), got.row(r));
                for (ci, (ev, gv)) in e.iter().zip(&g).enumerate() {
                    match (ev.as_f64(), gv.as_f64()) {
                        (Some(a), Some(b)) => {
                            prop_assert!((a - b).abs() < 1e-9, "row {} col {}: {} vs {}", r, ci, a, b)
                        }
                        _ => prop_assert_eq!(ev, gv, "row {} col {}", r, ci),
                    }
                }
            }
        }
    }
}
