//! Communication and work metrics of a cluster query execution — the
//! stand-in for network counters on the real GEMS cluster.

/// Totals for one BSP superstep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperstepMetrics {
    /// Partial bindings extended locally (stayed on the same node).
    pub local_extensions: u64,
    /// Partial bindings shipped to another node.
    pub messages: u64,
    /// Approximate payload volume of those messages.
    pub bytes: u64,
}

/// Whole-query metrics.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    pub per_superstep: Vec<SuperstepMetrics>,
}

impl ClusterMetrics {
    pub fn supersteps(&self) -> usize {
        self.per_superstep.len()
    }

    pub fn total_messages(&self) -> u64 {
        self.per_superstep.iter().map(|s| s.messages).sum()
    }

    pub fn total_bytes(&self) -> u64 {
        self.per_superstep.iter().map(|s| s.bytes).sum()
    }

    pub fn total_local(&self) -> u64 {
        self.per_superstep.iter().map(|s| s.local_extensions).sum()
    }

    /// Fraction of extensions that crossed node boundaries (0..=1).
    pub fn remote_ratio(&self) -> f64 {
        let m = self.total_messages() as f64;
        let l = self.total_local() as f64;
        if m + l == 0.0 {
            0.0
        } else {
            m / (m + l)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let m = ClusterMetrics {
            per_superstep: vec![
                SuperstepMetrics {
                    local_extensions: 5,
                    messages: 5,
                    bytes: 100,
                },
                SuperstepMetrics {
                    local_extensions: 10,
                    messages: 0,
                    bytes: 0,
                },
            ],
        };
        assert_eq!(m.supersteps(), 2);
        assert_eq!(m.total_messages(), 5);
        assert_eq!(m.total_bytes(), 100);
        assert!((m.remote_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(ClusterMetrics::default().remote_ratio(), 0.0);
    }
}
