//! # graql-cluster
//!
//! A **simulated GEMS backend cluster** (paper §III): the multi-node,
//! in-memory execution substrate GraQL targets, reproduced with one OS
//! thread per "compute node" and message passing through shared
//! mailboxes in place of InfiniBand.
//!
//! What is preserved from the real system (see DESIGN.md §2):
//!
//! * **hash partitioning** of vertex instances across nodes;
//! * **bidirectional edge fragments** per node (an edge lives on its
//!   source's owner for forward traversal and its target's owner for
//!   reverse traversal — the §III-B edge index, distributed);
//! * **bulk-synchronous path-query execution**: partial path bindings flow
//!   along edges; a binding that crosses to a vertex owned by another node
//!   becomes a message;
//! * **measurable communication**: messages and bytes per superstep.
//!
//! What is simulated: the network (mailboxes + a barrier), the node count
//! (threads), and the failure model (none — matching the paper, which does
//! not discuss fault tolerance).

pub mod exec;
pub mod metrics;
pub mod partition;
pub mod relational;
pub mod shard;

pub use exec::{run_path_query, ClusterBindings};
pub use metrics::{ClusterMetrics, SuperstepMetrics};
pub use partition::Partitioning;
pub use relational::distributed_group_aggregate;
pub use shard::Shard;

use graql_core::Database;
use graql_graph::Graph;
use graql_types::{GraqlError, Result};

/// A cluster view over a database: partitioning + per-node shards.
pub struct Cluster<'a> {
    pub graph: &'a Graph,
    pub storage: &'a graql_core::ddl::Storage,
    pub partitioning: Partitioning,
    pub shards: Vec<Shard>,
}

impl<'a> Cluster<'a> {
    /// Partitions the database's graph across `nodes` simulated compute
    /// nodes. The graph must already be built
    /// (call [`Database::graph`] first).
    pub fn new(db: &'a Database, nodes: usize) -> Result<Self> {
        if nodes == 0 {
            return Err(GraqlError::cluster("a cluster needs at least one node"));
        }
        let graph = db
            .graph_ref()
            .ok_or_else(|| GraqlError::cluster("build the graph before forming a cluster"))?;
        let partitioning = Partitioning::hash(graph, nodes);
        let shards = (0..nodes)
            .map(|n| Shard::build(graph, &partitioning, n))
            .collect();
        Ok(Cluster {
            graph,
            storage: db.storage(),
            partitioning,
            shards,
        })
    }

    pub fn n_nodes(&self) -> usize {
        self.shards.len()
    }
}
