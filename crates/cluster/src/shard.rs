//! Per-node shards: the slice of the graph a compute node holds.
//!
//! Each shard stores, per edge type, the **forward fragment** (edges whose
//! source it owns, CSR by source) and the **reverse fragment** (edges
//! whose target it owns, CSR by target) — the distributed version of the
//! paper's bidirectional edge index. Every edge therefore appears on at
//! most two nodes.

use graql_graph::{Csr, ETypeId, Graph};

use crate::partition::Partitioning;

/// One edge-type fragment: local CSR + local→global edge-id map.
struct Fragment {
    csr: Csr,
    /// `global_ids[local]` = global edge id (local ids are positions in
    /// the filtered pair list, which is exactly what [`Csr::build`]
    /// assigns).
    global_ids: Vec<u32>,
}

/// One compute node's local graph data.
pub struct Shard {
    pub node: usize,
    fwd: Vec<Fragment>,
    rev: Vec<Fragment>,
}

impl Shard {
    /// Extracts node `node`'s fragments from the global graph.
    pub fn build(graph: &Graph, part: &Partitioning, node: usize) -> Shard {
        let mut fwd = Vec::new();
        let mut rev = Vec::new();
        for et in graph.etype_ids() {
            let es = graph.eset(et);
            let n_src = graph.vset(es.src_type).len();
            let n_tgt = graph.vset(es.tgt_type).len();
            let (mut fs, mut ft, mut fid) = (Vec::new(), Vec::new(), Vec::new());
            let (mut rs, mut rt, mut rid) = (Vec::new(), Vec::new(), Vec::new());
            for e in 0..es.len() as u32 {
                let (s, t) = es.endpoints(e);
                if part.owner(es.src_type, s) == node {
                    fs.push(s);
                    ft.push(t);
                    fid.push(e);
                }
                if part.owner(es.tgt_type, t) == node {
                    rs.push(t);
                    rt.push(s);
                    rid.push(e);
                }
            }
            fwd.push(Fragment {
                csr: Csr::build(n_src, &fs, &ft),
                global_ids: fid,
            });
            rev.push(Fragment {
                csr: Csr::build(n_tgt, &rs, &rt),
                global_ids: rid,
            });
        }
        Shard { node, fwd, rev }
    }

    /// Local out-neighbors of `v` through edge type `et` in the forward
    /// direction, as `(neighbor, global edge id)` pairs.
    pub fn fwd_neighbors<'s>(
        &'s self,
        et: ETypeId,
        v: u32,
    ) -> impl Iterator<Item = (u32, u32)> + 's {
        let f = &self.fwd[et.0 as usize];
        f.csr
            .neighbors(v)
            .iter()
            .zip(f.csr.edge_ids(v))
            .map(move |(&t, &local)| (t, f.global_ids[local as usize]))
    }

    /// Local in-neighbors of `v` (reverse fragment).
    pub fn rev_neighbors<'s>(
        &'s self,
        et: ETypeId,
        v: u32,
    ) -> impl Iterator<Item = (u32, u32)> + 's {
        let f = &self.rev[et.0 as usize];
        f.csr
            .neighbors(v)
            .iter()
            .zip(f.csr.edge_ids(v))
            .map(move |(&t, &local)| (t, f.global_ids[local as usize]))
    }

    /// Edge count of the forward fragment for `et`.
    pub fn fwd_count(&self, et: ETypeId) -> usize {
        self.fwd[et.0 as usize].csr.n_edges()
    }

    /// Edge count of the reverse fragment for `et`.
    pub fn rev_count(&self, et: ETypeId) -> usize {
        self.rev[et.0 as usize].csr.n_edges()
    }

    /// Total local edge slots (each edge counted once per fragment).
    pub fn local_edges(&self) -> usize {
        self.fwd.iter().map(|f| f.csr.n_edges()).sum::<usize>()
            + self.rev.iter().map(|f| f.csr.n_edges()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_graph::{EdgeSet, VertexSet};
    use graql_table::{Table, TableSchema};
    use graql_types::{DataType, Value};

    fn ring_graph() -> Graph {
        let mut g = Graph::new();
        let schema = TableSchema::of(&[("id", DataType::Integer)]);
        let t = Table::from_rows(schema, (0..10i64).map(|i| vec![Value::Int(i)])).unwrap();
        let a = g
            .add_vertex_type(VertexSet::build("A", "t", &t, vec![0], None).unwrap())
            .unwrap();
        g.add_edge_type(EdgeSet::from_pairs(
            "e",
            a,
            a,
            (0..9u32).map(|i| (i, i + 1)).chain([(9, 0)]),
        ))
        .unwrap();
        g
    }

    #[test]
    fn fragments_cover_every_edge_exactly_once_per_direction() {
        let g = ring_graph();
        let p = Partitioning::hash(&g, 3);
        let shards: Vec<Shard> = (0..3).map(|n| Shard::build(&g, &p, n)).collect();
        let et = g.etype("e").unwrap();
        let fwd_total: usize = shards.iter().map(|s| s.fwd_count(et)).sum();
        let rev_total: usize = shards.iter().map(|s| s.rev_count(et)).sum();
        assert_eq!(fwd_total, 10, "each edge in exactly one forward fragment");
        assert_eq!(rev_total, 10, "each edge in exactly one reverse fragment");
    }

    #[test]
    fn fragment_adjacency_and_global_ids_match() {
        let g = ring_graph();
        let p = Partitioning::hash(&g, 2);
        let et = g.etype("e").unwrap();
        let a = g.vtype("A").unwrap();
        for node in 0..2 {
            let shard = Shard::build(&g, &p, node);
            for v in 0..10u32 {
                let nbrs: Vec<(u32, u32)> = shard.fwd_neighbors(et, v).collect();
                if p.owner(a, v) == node {
                    assert_eq!(nbrs.len(), 1, "node {node} vertex {v}");
                    let (t, eid) = nbrs[0];
                    assert_eq!(t, (v + 1) % 10);
                    assert_eq!(g.eset(et).endpoints(eid), (v, t), "global id resolves");
                } else {
                    assert!(nbrs.is_empty(), "unowned source has no local out-edges");
                }
                // Reverse fragment mirrors ownership of the *target*.
                let rnbrs: Vec<(u32, u32)> = shard.rev_neighbors(et, v).collect();
                if p.owner(a, v) == node {
                    assert_eq!(rnbrs.len(), 1);
                    assert_eq!(rnbrs[0].0, (v + 9) % 10);
                } else {
                    assert!(rnbrs.is_empty());
                }
            }
        }
    }
}
