//! Bulk-synchronous distributed path-query execution.
//!
//! Partial path bindings ("tuples") live on the node owning their frontier
//! vertex. Each superstep extends every tuple by one hop through the local
//! edge fragment; extensions whose new frontier is owned elsewhere are
//! shipped as messages. After `n-1` supersteps the complete bindings are
//! gathered at the coordinator.
//!
//! This mirrors how the GEMS backend walks its distributed edge index; the
//! single-node engine (`graql-core`) is the baseline it is validated
//! against (`cluster == local` on every query, see tests).

use std::sync::Barrier;

use parking_lot::Mutex;

use graql_core::compile::{compile_query, CLink, CQuery, CompileCtx};
use graql_core::exec::cand::{edge_filters, local_candidates, Cand};
use graql_core::exec::enumerate::Binding;
use graql_core::exec::ExecCtx;
use graql_core::Database;
use graql_graph::{ETypeId, VTypeId};
use graql_parser::ast::{self, Dir};
use graql_table::BitSet;
use graql_types::{GraqlError, Result};
use rustc_hash::FxHashMap;

use crate::metrics::{ClusterMetrics, SuperstepMetrics};
use crate::Cluster;

/// Result of a distributed path query: complete bindings (sorted for
/// deterministic comparison) + communication metrics.
#[derive(Debug)]
pub struct ClusterBindings {
    pub bindings: Vec<Binding>,
    pub metrics: ClusterMetrics,
}

/// A partial binding in flight.
#[derive(Clone)]
struct PTuple {
    v: Vec<(VTypeId, u32)>,
    e: Vec<(ETypeId, u32)>,
}

impl PTuple {
    fn approx_bytes(&self) -> u64 {
        (self.v.len() * 8 + self.e.len() * 8) as u64
    }
}

/// Runs a single linear path query (no groups, no label references, no
/// seeds) across the cluster. Label *definitions* are permitted — the
/// Berlin Q2 graph phase carries one.
pub fn run_path_query(
    cluster: &Cluster<'_>,
    db: &Database,
    path: &ast::PathQuery,
) -> Result<ClusterBindings> {
    let cctx = CompileCtx {
        graph: cluster.graph,
        storage: cluster.storage,
        params: db.params(),
        regex_cap: db.config().regex_cap,
    };
    let cquery: CQuery = compile_query(&cctx, &[path])?;
    let cpath = &cquery.paths[0];
    if cpath.has_groups() {
        return Err(GraqlError::cluster(
            "path regular expressions are not supported on the simulated cluster",
        ));
    }
    if cpath
        .vsteps
        .iter()
        .any(|v| v.label_ref.is_some() || v.seed.is_some())
    {
        return Err(GraqlError::cluster(
            "label references and seeded steps are not supported on the simulated cluster",
        ));
    }

    // Global per-step candidates and per-link edge filters (evaluated once;
    // attribute data is co-partitioned with its vertices on the real
    // system, so this is node-local work there).
    let empty_tables: FxHashMap<String, std::sync::Arc<graql_table::Table>> = FxHashMap::default();
    let empty_subgraphs: FxHashMap<String, std::sync::Arc<graql_graph::Subgraph>> =
        FxHashMap::default();
    let config = db.config().clone();
    let ctx = ExecCtx {
        graph: cluster.graph,
        storage: cluster.storage,
        result_tables: &empty_tables,
        result_subgraphs: &empty_subgraphs,
        config: &config,
        params: db.params(),
        guard: graql_types::QueryGuard::unlimited(),
        obs: None,
        stats: None,
    };
    let cands: Vec<Cand> = cpath
        .vsteps
        .iter()
        .map(|v| local_candidates(&ctx, v))
        .collect::<Result<_>>()?;
    let efilters: Vec<FxHashMap<ETypeId, BitSet>> = cpath
        .links
        .iter()
        .map(|l| match l {
            CLink::Edge(e) => edge_filters(&ctx, e),
            CLink::Group(_) => unreachable!("groups rejected above"),
        })
        .collect::<Result<_>>()?;

    let n_nodes = cluster.n_nodes();
    let n_steps = cpath.vsteps.len();

    // Seed tuples: step-0 candidates, assigned to their owners.
    let mut initial: Vec<Vec<PTuple>> = vec![Vec::new(); n_nodes];
    for (&vt, set) in &cands[0] {
        for idx in set.iter() {
            let owner = cluster.partitioning.owner(vt, idx as u32);
            initial[owner].push(PTuple {
                v: vec![(vt, idx as u32)],
                e: Vec::new(),
            });
        }
    }

    // Mailboxes: inbox[node] holds tuples arriving for that node.
    let inboxes: Vec<Mutex<Vec<PTuple>>> = (0..n_nodes).map(|_| Mutex::new(Vec::new())).collect();
    let barrier = Barrier::new(n_nodes);
    let metrics = Mutex::new(vec![SuperstepMetrics::default(); n_steps.saturating_sub(1)]);
    let done: Vec<Mutex<Vec<PTuple>>> = (0..n_nodes).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|scope| {
        for node in 0..n_nodes {
            let shard = &cluster.shards[node];
            let part = &cluster.partitioning;
            let graph = cluster.graph;
            let cands = &cands;
            let efilters = &efilters;
            let cpath = &*cpath;
            let inboxes = &inboxes;
            let barrier = &barrier;
            let metrics = &metrics;
            let done = &done;
            let mut tuples = std::mem::take(&mut initial[node]);
            scope.spawn(move || {
                for step in 1..n_steps {
                    let link = match &cpath.links[step - 1] {
                        CLink::Edge(e) => e,
                        CLink::Group(_) => unreachable!(),
                    };
                    let allowed = &cands[step];
                    let mut local = SuperstepMetrics::default();
                    let mut outboxes: Vec<Vec<PTuple>> = vec![Vec::new(); n_nodes];
                    for t in tuples.drain(..) {
                        let (vt, v) = *t.v.last().expect("nonempty tuple");
                        // Applicable edge types from this frontier vertex.
                        let etypes: Vec<ETypeId> = match &link.domain {
                            Some(d) => d.clone(),
                            None => graph.etype_ids().collect(),
                        };
                        for et in etypes {
                            let es = graph.eset(et);
                            let (from_ty, reached_ty) = match link.dir {
                                Dir::Out => (es.src_type, es.tgt_type),
                                Dir::In => (es.tgt_type, es.src_type),
                            };
                            if from_ty != vt {
                                continue;
                            }
                            let Some(allowed_set) = allowed.get(&reached_ty) else {
                                continue;
                            };
                            let filt = efilters[step - 1].get(&et);
                            let neighbors: Vec<(u32, u32)> = match link.dir {
                                Dir::Out => shard.fwd_neighbors(et, v).collect(),
                                Dir::In => shard.rev_neighbors(et, v).collect(),
                            };
                            for (nbr, eid) in neighbors {
                                if !allowed_set.contains(nbr as usize) {
                                    continue;
                                }
                                if let Some(f) = filt {
                                    if !f.contains(eid as usize) {
                                        continue;
                                    }
                                }
                                let mut t2 = t.clone();
                                t2.v.push((reached_ty, nbr));
                                t2.e.push((et, eid));
                                let dest = part.owner(reached_ty, nbr);
                                if dest == node {
                                    local.local_extensions += 1;
                                } else {
                                    local.messages += 1;
                                    local.bytes += t2.approx_bytes();
                                }
                                outboxes[dest].push(t2);
                            }
                        }
                    }
                    // Deliver.
                    for (dest, out) in outboxes.into_iter().enumerate() {
                        if !out.is_empty() {
                            inboxes[dest].lock().extend(out);
                        }
                    }
                    {
                        let mut m = metrics.lock();
                        let s = &mut m[step - 1];
                        s.local_extensions += local.local_extensions;
                        s.messages += local.messages;
                        s.bytes += local.bytes;
                    }
                    // All sends complete before anyone reads its inbox.
                    barrier.wait();
                    tuples = std::mem::take(&mut *inboxes[node].lock());
                    barrier.wait();
                }
                *done[node].lock() = tuples;
            });
        }
    });

    let mut bindings: Vec<Binding> = Vec::new();
    for d in &done {
        for t in d.lock().drain(..) {
            bindings.push(Binding { v: t.v, e: t.e });
        }
    }
    // Deterministic order for comparisons.
    bindings.sort_by(|a, b| a.v.cmp(&b.v).then_with(|| a.e.cmp(&b.e)));
    Ok(ClusterBindings {
        bindings,
        metrics: ClusterMetrics {
            per_superstep: metrics.into_inner(),
        },
    })
}
