//! Hash partitioning of vertex instances across compute nodes.
//!
//! The paper lists "the difficulty of partitioning graphs across nodes on
//! a cluster" among the core challenges; GEMS (like most distributed graph
//! stores) hash-partitions vertices for balance. We hash `(vertex type,
//! instance index)` with a 64-bit mix so ownership is deterministic,
//! uniform, and independent of node count order.

use graql_graph::{Graph, VTypeId};

/// Ownership map: which node owns each vertex instance.
#[derive(Debug, Clone)]
pub struct Partitioning {
    pub n_nodes: usize,
    /// `owner[vtype][idx]` = owning node.
    owner: Vec<Vec<u16>>,
}

/// SplitMix64 — a tiny, well-distributed 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl Partitioning {
    /// Hash-partitions every vertex of `graph` across `n_nodes`.
    pub fn hash(graph: &Graph, n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        assert!(n_nodes <= u16::MAX as usize, "node count fits u16");
        let owner = graph
            .vtype_ids()
            .map(|vt| {
                let n = graph.vset(vt).len();
                (0..n as u64)
                    .map(|i| (mix((vt.0 as u64) << 40 | i) % n_nodes as u64) as u16)
                    .collect()
            })
            .collect();
        Partitioning { n_nodes, owner }
    }

    /// The node owning vertex `idx` of type `vt`.
    #[inline]
    pub fn owner(&self, vt: VTypeId, idx: u32) -> usize {
        self.owner[vt.0 as usize][idx as usize] as usize
    }

    /// Number of vertices owned by `node`.
    pub fn owned_count(&self, node: usize) -> usize {
        self.owner
            .iter()
            .map(|per_type| per_type.iter().filter(|&&o| o as usize == node).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_graph::{EdgeSet, VertexSet};
    use graql_table::{Table, TableSchema};
    use graql_types::{DataType, Value};

    fn graph(n: i64) -> Graph {
        let mut g = Graph::new();
        let schema = TableSchema::of(&[("id", DataType::Integer)]);
        let t = Table::from_rows(schema, (0..n).map(|i| vec![Value::Int(i)])).unwrap();
        let a = g
            .add_vertex_type(VertexSet::build("A", "t", &t, vec![0], None).unwrap())
            .unwrap();
        g.add_edge_type(EdgeSet::from_pairs(
            "e",
            a,
            a,
            (0..n as u32 - 1).map(|i| (i, i + 1)),
        ))
        .unwrap();
        g
    }

    #[test]
    fn every_vertex_has_exactly_one_owner() {
        let g = graph(500);
        let p = Partitioning::hash(&g, 7);
        let total: usize = (0..7).map(|n| p.owned_count(n)).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let g = graph(4000);
        let p = Partitioning::hash(&g, 8);
        for n in 0..8 {
            let c = p.owned_count(n);
            assert!((300..=700).contains(&c), "node {n} owns {c} of 4000");
        }
    }

    #[test]
    fn ownership_is_deterministic() {
        let g = graph(100);
        let p1 = Partitioning::hash(&g, 4);
        let p2 = Partitioning::hash(&g, 4);
        let vt = g.vtype("A").unwrap();
        for i in 0..100 {
            assert_eq!(p1.owner(vt, i), p2.owner(vt, i));
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let g = graph(50);
        let p = Partitioning::hash(&g, 1);
        assert_eq!(p.owned_count(0), 50);
    }
}
