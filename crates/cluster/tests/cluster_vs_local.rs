//! The cluster's ground truth: for every supported query, the distributed
//! execution must produce exactly the single-node engine's bindings.

use graql_cluster::Cluster;
use graql_core::exec::query::run_query;
use graql_core::exec::ExecCtx;
use graql_parser::ast::{SelectSource, Stmt};
use graql_types::Value;
use rustc_hash::FxHashMap;

fn path_of(src: &str) -> graql_parser::ast::PathQuery {
    let Stmt::Select(sel) = graql_parser::parse_statement(src).unwrap() else {
        panic!()
    };
    let SelectSource::Graph(comp) = sel.source else {
        panic!()
    };
    match comp {
        graql_parser::ast::PathComposition::Single(p) => p,
        other => panic!("expected a single path, got {other:?}"),
    }
}

/// Runs the same path on the local engine, returning sorted bindings.
fn local_bindings(
    db: &graql_core::Database,
    path: &graql_parser::ast::PathQuery,
) -> Vec<graql_core::exec::enumerate::Binding> {
    let empty_t: FxHashMap<String, std::sync::Arc<graql_table::Table>> = FxHashMap::default();
    let empty_s: FxHashMap<String, std::sync::Arc<graql_graph::Subgraph>> = FxHashMap::default();
    let config = db.config().clone();
    let ctx = ExecCtx {
        graph: db.graph_ref().unwrap(),
        storage: db.storage(),
        result_tables: &empty_t,
        result_subgraphs: &empty_s,
        config: &config,
        params: db.params(),
        guard: graql_types::QueryGuard::unlimited(),
        obs: None,
        stats: None,
    };
    let qr = run_query(&ctx, &[path], true).unwrap();
    let mut out: Vec<_> = qr
        .bindings
        .unwrap()
        .into_iter()
        .map(|mb| mb.per_path.into_iter().next().unwrap())
        .collect();
    out.sort_by(|a, b| a.v.cmp(&b.v).then_with(|| a.e.cmp(&b.e)));
    out
}

fn queries() -> Vec<&'static str> {
    vec![
        // One hop with a filter.
        "select * from graph ProductVtx() --producer--> ProducerVtx(country = 'US') into subgraph g",
        // Reverse hop.
        "select * from graph ProducerVtx(country = 'DE') <--producer-- ProductVtx() into subgraph g",
        // The Berlin Q2 graph phase (set label definition, no reference).
        "select y.id from graph ProductVtx (id = %Product1%) --feature--> FeatureVtx() \
         <--feature-- def y: ProductVtx (id != %Product1%) into table T",
        // Three hops crossing several types.
        "select * from graph PersonVtx(country = 'DE') <--reviewer-- ReviewVtx() \
         --reviewFor--> ProductVtx() --producer--> ProducerVtx(country = 'US') into subgraph g",
        // Variant edge and vertex steps.
        "select * from graph ProductVtx(id = %Product1%) <--[]-- [] into subgraph g",
        // Edge condition through the assoc table (`type` edge).
        "select * from graph ProductVtx() --type--> TypeVtx() into subgraph g",
    ]
}

#[test]
fn cluster_matches_local_on_every_query_and_node_count() {
    let mut db = graql_bsbm::build_database(graql_bsbm::Scale::new(60)).unwrap();
    db.set_param("Product1", Value::str("product0"));
    db.graph().unwrap();
    for src in queries() {
        let path = path_of(src);
        let expected = local_bindings(&db, &path);
        for nodes in [1, 2, 4, 7] {
            let cluster = Cluster::new(&db, nodes).unwrap();
            let got = graql_cluster::run_path_query(&cluster, &db, &path)
                .unwrap_or_else(|e| panic!("{src} on {nodes} nodes: {e}"));
            assert_eq!(
                got.bindings.len(),
                expected.len(),
                "{src} on {nodes} nodes: binding count"
            );
            assert_eq!(got.bindings, expected, "{src} on {nodes} nodes");
        }
    }
}

#[test]
fn single_node_cluster_sends_no_messages() {
    let mut db = graql_bsbm::build_database(graql_bsbm::Scale::new(40)).unwrap();
    db.set_param("Product1", Value::str("product0"));
    db.graph().unwrap();
    let path =
        path_of("select * from graph ProductVtx() --producer--> ProducerVtx() into subgraph g");
    let cluster = Cluster::new(&db, 1).unwrap();
    let got = graql_cluster::run_path_query(&cluster, &db, &path).unwrap();
    assert_eq!(got.metrics.total_messages(), 0);
    assert!(got.metrics.total_local() > 0);
}

#[test]
fn more_nodes_mean_more_communication() {
    let mut db = graql_bsbm::build_database(graql_bsbm::Scale::new(80)).unwrap();
    db.graph().unwrap();
    let path = path_of(
        "select * from graph OfferVtx() --product--> ProductVtx() --producer--> ProducerVtx() \
         into subgraph g",
    );
    let mut last_ratio = -1.0;
    for nodes in [1, 2, 8] {
        let cluster = Cluster::new(&db, nodes).unwrap();
        let got = graql_cluster::run_path_query(&cluster, &db, &path).unwrap();
        let ratio = got.metrics.remote_ratio();
        assert!(
            ratio >= last_ratio,
            "remote ratio should not decrease with node count: {last_ratio} → {ratio} at {nodes}"
        );
        last_ratio = ratio;
    }
    assert!(
        last_ratio > 0.5,
        "at 8 nodes most extensions are remote: {last_ratio}"
    );
}

#[test]
fn unsupported_features_are_rejected() {
    let mut db = graql_bsbm::build_database(graql_bsbm::Scale::new(20)).unwrap();
    db.graph().unwrap();
    let cluster = Cluster::new(&db, 2).unwrap();
    let path = path_of(
        "select * from graph TypeVtx() { --subclass--> TypeVtx() }+ --> TypeVtx() into subgraph g",
    );
    let err = graql_cluster::run_path_query(&cluster, &db, &path).unwrap_err();
    assert!(matches!(err, graql_types::GraqlError::Cluster(_)), "{err}");
}

#[test]
fn zero_node_cluster_rejected() {
    let mut db = graql_bsbm::build_database(graql_bsbm::Scale::new(10)).unwrap();
    db.graph().unwrap();
    assert!(Cluster::new(&db, 0).is_err());
}
