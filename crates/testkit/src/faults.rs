//! The curated fault matrix and exclusive arming for fault-injection
//! tests.
//!
//! The failpoint registry (`graql_types::failpoints`) is process-global,
//! and `cargo test` runs tests concurrently in one process — so any test
//! that arms a fault must hold [`FaultGuard`] for its duration. The guard
//! serializes armed sections behind a global lock and disarms *all*
//! sites on drop (including on panic), so no fault leaks into an
//! unrelated test.

use graql_types::failpoints;
use parking_lot::{Mutex, MutexGuard};

/// One row of the fault matrix: a failpoint site and the spec to arm it
/// with (`[PCT%][CNT*]ACTION[(ARG)]`, see `failpoints::parse_spec`).
#[derive(Debug, Clone, Copy)]
pub struct FaultCase {
    pub site: &'static str,
    pub spec: &'static str,
}

const fn case(site: &'static str, spec: &'static str) -> FaultCase {
    FaultCase { site, spec }
}

/// Every compiled failpoint site, armed with a *transient* spec: faults
/// fire a bounded number of times (`N*`), so an idempotent request must
/// eventually succeed through the client's retry loop. Sites whose
/// failures are not transient by nature (persist I/O, execution
/// cancellation) are listed too — their contract is a clean typed error,
/// not recovery.
pub const FAULT_MATRIX: &[FaultCase] = &[
    // Frame-level transport faults (crates/net/src/frame.rs).
    case("net/frame/read-delay", "2*delay(40)"),
    case("net/frame/read-err", "2*err"),
    case("net/frame/write-delay", "2*delay(40)"),
    case("net/frame/write-err", "2*err"),
    case("net/frame/write-corrupt", "1*corrupt"),
    case("net/frame/write-truncate", "1*truncate"),
    // Server-side faults (crates/net/src/server.rs).
    case("net/server/accept-refuse", "1*refuse"),
    case("net/server/exec-delay", "2*delay(40)"),
    case("net/server/drop-before-reply", "1*err"),
    // Admission-control shedding: the server answers Submit with the
    // retryable "server busy" error, so the client's backoff loop must
    // absorb a bounded burst of sheds.
    case("net/server/shed", "2*refuse"),
    // Client-side fault (crates/net/src/client.rs).
    case("net/client/send-delay", "2*delay(40)"),
    // Persistence and execution faults (crates/core).
    case("core/persist/save-io", "1*err"),
    case("core/persist/save-commit", "1*err"),
    case("core/persist/load-io", "1*err"),
    // Write-ahead-log faults (crates/core/src/wal). `err` on append/fsync
    // is transient: the commit is refused with a typed error, the log is
    // rolled back to its durable prefix, and the next commit succeeds.
    // `truncate`/`corrupt` on append simulate a crash mid-write: they
    // leave a torn/corrupt tail on disk and poison the WAL, and the
    // recovery path must discard the tail on reopen (tests/wal_recovery.rs
    // drives those through reopen cycles).
    case("core/wal/append", "1*err"),
    case("core/wal/append", "1*truncate"),
    case("core/wal/append", "1*corrupt"),
    case("core/wal/fsync", "1*err"),
    case("core/wal/checkpoint", "1*err"),
    case("core/exec/cancel", "1*err"),
    case("core/exec/cancel-stmt", "1*err"),
    // Governance: a fault at the per-batch guard checkpoint aborts the
    // query mid-kernel with a typed error; the engine must stay usable.
    case("core/exec/batch", "1*err"),
    // Morsel scheduler faults (crates/core/src/exec/morsel.rs): `dispatch`
    // fires inside a morsel claim (from a worker thread when threads > 1),
    // `merge` fires on the caller thread just before slot reassembly. Both
    // must abort the query with one typed error and leave the server up.
    case("core/exec/morsel-dispatch", "1*err"),
    case("core/exec/morsel-merge", "1*err"),
    // Replication faults (crates/net/src/{server,replica}.rs). `stream`
    // fires on the primary before a batch is shipped; `apply` fires on
    // the replica before a received batch is applied; `ack` fires on the
    // replica after the batch is locally durable but before the ack is
    // sent. All three kill the subscription; the contract is exact
    // LSN-resume on reconnect — no record applied twice or skipped
    // (tests/replication.rs drives these through reconnect cycles; the
    // generic matrix rig skips them because no replication stream runs
    // there).
    case("net/repl/stream", "1*err"),
    case("net/repl/apply", "1*err"),
    case("net/repl/ack", "1*err"),
];

static ARM_LOCK: Mutex<()> = Mutex::new(());

/// Holds the arming lock; dropping disarms every site.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        failpoints::disarm_all();
    }
}

/// Takes the global arming lock *without* arming anything — for tests
/// that must observe a fault-free registry while others may arm.
pub fn exclusive() -> FaultGuard {
    let lock = ARM_LOCK.lock();
    failpoints::disarm_all();
    FaultGuard { _lock: lock }
}

/// Arms the given `(site, spec)` pairs under `seed`, exclusively.
///
/// Panics on a malformed spec — the matrix is static test data.
pub fn arm_exclusive(entries: &[(&str, &str)], seed: u64) -> FaultGuard {
    let guard = exclusive();
    for (site, spec) in entries {
        failpoints::configure_seeded(site, spec, seed)
            .unwrap_or_else(|e| panic!("bad fault spec {spec:?} for {site}: {e}"));
    }
    guard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_compiled_site_with_valid_specs() {
        for c in FAULT_MATRIX {
            failpoints::parse_spec(c.spec)
                .unwrap_or_else(|e| panic!("{}: bad spec {:?}: {e}", c.site, c.spec));
        }
        // Every subsystem is represented.
        for prefix in [
            "net/frame/",
            "net/server/",
            "net/client/",
            "net/repl/",
            "core/",
        ] {
            assert!(
                FAULT_MATRIX.iter().any(|c| c.site.starts_with(prefix)),
                "no matrix entry under {prefix}"
            );
        }
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _g = arm_exclusive(&[("net/frame/read-err", "1*err")], 9);
            assert!(failpoints::armed());
            assert_eq!(failpoints::armed_sites(), vec!["net/frame/read-err"]);
        }
        assert!(!failpoints::armed(), "guard drop disarms everything");
    }
}
