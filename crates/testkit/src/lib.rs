//! # graql-testkit
//!
//! Deterministic chaos-testing toolkit for the workspace (see TESTING.md):
//!
//! - [`gen`] — a seeded generator of valid relational GraQL scripts over
//!   the paper's Berlin (BSBM) schema, for differential testing.
//! - [`refeval`] — a naive, row-at-a-time reference evaluator for
//!   table-sourced selects that mirrors the engine's documented semantics
//!   (`crates/core/src/exec/relational.rs`) without sharing any of its
//!   kernel code.
//! - [`naive`] — O(n²) reference implementations of the Table-1 kernels
//!   (`filter`/`join`/`group`/`sort`/`distinct`/`top`), the oracles for
//!   the table-op property tests.
//! - [`oracle`] — the differential runner: renders session outputs in the
//!   `gems-shell` wire format and writes divergence artifacts when two
//!   evaluation paths disagree.
//! - [`faults`] — the curated fault matrix over every `failpoint!` site,
//!   plus an exclusive arming guard so fault-injection tests serialize
//!   and never leak armed faults into other tests.
//!
//! This crate hard-enables the `failpoints` feature on `graql-net` and
//! `graql-core`; depending on it from dev-dependencies is what arms the
//! workspace's test builds (feature unification) while release builds
//! stay failpoint-free.

pub mod faults;
pub mod gen;
pub mod naive;
pub mod oracle;
pub mod refeval;

pub use faults::{arm_exclusive, exclusive, FaultCase, FaultGuard, FAULT_MATRIX};
pub use gen::{ScriptGen, TestRng};
pub use oracle::{render_outcome, render_outputs, write_divergence};
pub use refeval::reference_outputs;
