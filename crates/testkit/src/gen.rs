//! Seeded generation of valid relational GraQL scripts over the Berlin
//! schema (paper Appendix A), for the differential oracle.
//!
//! The generator is *constructive*: instead of generating arbitrary text
//! and filtering out rejects, it builds each `select` so that it is valid
//! by construction — comparisons are type-compatible, projected columns
//! appear in `group by`, `order by` keys exist in the output schema, and
//! output column names are unique (the engine rejects duplicate names in
//! `rename`). Every script therefore executes cleanly on all three
//! evaluation paths, and any divergence is a real semantics bug, not a
//! generator artifact.

/// SplitMix64 — the same tiny deterministic generator the failpoint
/// registry uses; good enough statistical quality for test-case choice
/// and fully reproducible from a `u64` seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// True with probability `pct`%.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Value domain of one column, used to draw plausible literals.
#[derive(Debug, Clone, Copy)]
enum Domain {
    Int {
        lo: i64,
        hi: i64,
    },
    Float {
        lo: f64,
        hi: f64,
    },
    /// Identifiers of the form `{prefix}{0..n}` (e.g. `product17`).
    Ids {
        prefix: &'static str,
        n: u64,
    },
    Pool(&'static [&'static str]),
    /// Dates and free text: usable for projection / grouping / ordering
    /// but not for literal comparisons.
    Opaque,
}

struct Col {
    name: &'static str,
    domain: Domain,
    /// Numeric under the engine's `is_numeric` (sum/avg eligible).
    numeric: bool,
}

const fn col(name: &'static str, domain: Domain, numeric: bool) -> Col {
    Col {
        name,
        domain,
        numeric,
    }
}

const PUBLISHERS: &[&str] = &["pub0", "pub1", "pub2", "pub3", "pub4"];

struct TableInfo {
    name: &'static str,
    cols: &'static [Col],
}

/// The Berlin tables the generator draws from (the entity tables; the
/// two link tables are covered by the graph-side tests).
fn tables() -> &'static [TableInfo] {
    use Domain::*;
    const COUNTRIES: &[&str] = graql_bsbm::gen::COUNTRIES;
    static PRODUCTS: &[Col] = &[
        col(
            "id",
            Ids {
                prefix: "product",
                n: 60,
            },
            false,
        ),
        col("label", Opaque, false),
        col(
            "producer",
            Ids {
                prefix: "producer",
                n: 12,
            },
            false,
        ),
        col("propertyNumeric_1", Int { lo: 1, hi: 2000 }, true),
        col("propertyNumeric_2", Int { lo: 1, hi: 2000 }, true),
        col("propertyNumeric_3", Int { lo: 1, hi: 2000 }, true),
        col("propertyNumeric_4", Int { lo: 1, hi: 2000 }, true),
        col("propertyNumeric_5", Int { lo: 1, hi: 2000 }, true),
        col("publisher", Pool(PUBLISHERS), false),
        col("date", Opaque, false),
    ];
    static OFFERS: &[Col] = &[
        col(
            "id",
            Ids {
                prefix: "offer",
                n: 400,
            },
            false,
        ),
        col(
            "product",
            Ids {
                prefix: "product",
                n: 60,
            },
            false,
        ),
        col(
            "vendor",
            Ids {
                prefix: "vendor",
                n: 12,
            },
            false,
        ),
        col(
            "price",
            Float {
                lo: 5.0,
                hi: 10_000.0,
            },
            true,
        ),
        col("deliveryDays", Int { lo: 1, hi: 14 }, true),
        col("publisher", Pool(PUBLISHERS), false),
        col("validFrom", Opaque, false),
    ];
    static REVIEWS: &[Col] = &[
        col(
            "id",
            Ids {
                prefix: "review",
                n: 400,
            },
            false,
        ),
        col(
            "reviewFor",
            Ids {
                prefix: "product",
                n: 60,
            },
            false,
        ),
        col(
            "reviewer",
            Ids {
                prefix: "person",
                n: 30,
            },
            false,
        ),
        col("ratings_1", Int { lo: 1, hi: 10 }, true),
        col("ratings_2", Int { lo: 1, hi: 10 }, true),
        col("ratings_3", Int { lo: 1, hi: 10 }, true),
        col("ratings_4", Int { lo: 1, hi: 10 }, true),
        col("publisher", Pool(PUBLISHERS), false),
        col("reviewDate", Opaque, false),
    ];
    static PRODUCERS: &[Col] = &[
        col(
            "id",
            Ids {
                prefix: "producer",
                n: 12,
            },
            false,
        ),
        col("country", Pool(COUNTRIES), false),
        col("publisher", Pool(PUBLISHERS), false),
    ];
    static VENDORS: &[Col] = &[
        col(
            "id",
            Ids {
                prefix: "vendor",
                n: 12,
            },
            false,
        ),
        col("country", Pool(COUNTRIES), false),
        col("publisher", Pool(PUBLISHERS), false),
    ];
    static PERSONS: &[Col] = &[
        col(
            "id",
            Ids {
                prefix: "person",
                n: 30,
            },
            false,
        ),
        col("name", Opaque, false),
        col("country", Pool(COUNTRIES), false),
        col("publisher", Pool(PUBLISHERS), false),
    ];
    static TABLES: &[TableInfo] = &[
        TableInfo {
            name: "Products",
            cols: PRODUCTS,
        },
        TableInfo {
            name: "Offers",
            cols: OFFERS,
        },
        TableInfo {
            name: "Reviews",
            cols: REVIEWS,
        },
        TableInfo {
            name: "Producers",
            cols: PRODUCERS,
        },
        TableInfo {
            name: "Vendors",
            cols: VENDORS,
        },
        TableInfo {
            name: "Persons",
            cols: PERSONS,
        },
    ];
    TABLES
}

/// Seeded generator of relational GraQL scripts.
pub struct ScriptGen {
    rng: TestRng,
    /// Monotone counter for `into table` / `into subgraph` result names,
    /// so a sequence of graph scripts never collides on a registered name.
    graph_seq: u64,
}

impl ScriptGen {
    pub fn new(seed: u64) -> Self {
        ScriptGen {
            rng: TestRng::new(seed),
            graph_seq: 0,
        }
    }

    /// The next script: one or two read-only `select` statements.
    pub fn next_script(&mut self) -> String {
        let n = if self.rng.chance(25) { 2 } else { 1 };
        (0..n)
            .map(|_| self.next_select())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// One valid `select … from table …` statement.
    pub fn next_select(&mut self) -> String {
        let table = self.rng.pick_table();
        let mut sql = String::from("select ");
        let distinct = self.rng.chance(20);
        if distinct {
            sql.push_str("distinct ");
        }
        let top = if self.rng.chance(35) {
            Some(1 + self.rng.below(20))
        } else {
            None
        };
        if let Some(n) = top {
            sql.push_str(&format!("top {n} "));
        }

        // Projection shape: star, plain columns, or aggregation.
        let shape = self.rng.below(10);
        let mut out_names: Vec<String> = Vec::new();
        let group_by: Vec<&'static str>;
        if shape < 2 {
            // select *
            sql.push('*');
            group_by = Vec::new();
            out_names.extend(table.cols.iter().map(|c| c.name.to_string()));
        } else if shape < 6 {
            // Plain projection of 1..4 distinct columns with optional aliases.
            let n_cols = 1 + self.rng.below(3) as usize;
            let picked = self.pick_distinct_cols(table, n_cols);
            group_by = Vec::new();
            let items: Vec<String> = picked
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if self.rng.chance(30) {
                        let alias = format!("a{i}");
                        out_names.push(alias.clone());
                        format!("{} as {alias}", c.name)
                    } else {
                        out_names.push(c.name.to_string());
                        c.name.to_string()
                    }
                })
                .collect();
            sql.push_str(&items.join(", "));
        } else {
            // Aggregation: group by 0..2 columns, project (a subset of) the
            // group columns plus 1..3 aggregate calls.
            let n_groups = self.rng.below(3) as usize;
            let groups = self.pick_distinct_cols(table, n_groups);
            group_by = groups.iter().map(|c| c.name).collect();
            let mut items: Vec<String> = Vec::new();
            for c in &groups {
                out_names.push(c.name.to_string());
                items.push(c.name.to_string());
            }
            let n_aggs = 1 + self.rng.below(3);
            for i in 0..n_aggs {
                let (call, needs_alias) = self.gen_agg(table);
                let idx = items.len();
                if needs_alias || self.rng.chance(60) {
                    let alias = format!("m{i}");
                    out_names.push(alias.clone());
                    items.push(format!("{call} as {alias}"));
                } else {
                    out_names.push(format!("agg_{idx}"));
                    items.push(call);
                }
            }
            sql.push_str(&items.join(", "));
        }

        sql.push_str(&format!(" from table {}", table.name));

        if self.rng.chance(70) {
            let w = self.gen_where(table);
            sql.push_str(&format!(" where {w}"));
        }
        if !group_by.is_empty() {
            sql.push_str(&format!(" group by {}", group_by.join(", ")));
        }
        // Order by a subset of the output columns. The oracle demands
        // byte-identical output, which a stable sort gives us even under
        // ties (both the engine and the reference preserve input order).
        if self.rng.chance(65) && !out_names.is_empty() {
            let n_keys = 1 + self.rng.below(2.min(out_names.len() as u64));
            let mut keys: Vec<String> = Vec::new();
            let mut used: Vec<usize> = Vec::new();
            for _ in 0..n_keys {
                let i = self.rng.below(out_names.len() as u64) as usize;
                if used.contains(&i) {
                    continue;
                }
                used.push(i);
                let dir = if self.rng.chance(40) { " desc" } else { "" };
                keys.push(format!("{}{dir}", out_names[i]));
            }
            sql.push_str(&format!(" order by {}", keys.join(", ")));
        }
        sql
    }

    /// One graph-heavy script over the Berlin graph (paper Figs. 2–3):
    /// a multi-hop pattern `select … from graph … into table/subgraph`,
    /// usually followed by a relational postprocessing statement over the
    /// materialized result. Patterns are valid by construction (edge
    /// directions match the schema, vertex conditions are type-correct),
    /// and every path enumeration's row order is part of the contract —
    /// these scripts are what proves the morsel-parallel executor
    /// byte-identical to the serial one.
    pub fn next_graph_script(&mut self) -> String {
        const COUNTRIES: &[&str] = graql_bsbm::gen::COUNTRIES;
        self.graph_seq += 1;
        let t = format!("G{}", self.graph_seq);
        match self.rng.below(6) {
            // Feature-overlap similarity (Fig. 6 shape): products sharing
            // a feature with a fixed product, counted per product.
            0 => {
                let p = format!("product{}", self.rng.below(48));
                let k = 1 + self.rng.below(10);
                format!(
                    "select y.id from graph \
                       ProductVtx(id = '{p}') --feature--> FeatureVtx() \
                       <--feature-- def y: ProductVtx(id != '{p}') \
                     into table {t}\n\
                     select top {k} id, count(*) as groupCount from table {t} \
                     group by id order by groupCount desc, id asc"
                )
            }
            // Vendors offering products from one producer country.
            1 => {
                let c = *self.rng.pick(COUNTRIES);
                format!(
                    "select v.id from graph \
                       ProducerVtx(country = '{c}') <--producer-- ProductVtx() \
                       <--product-- OfferVtx() --vendor--> def v: VendorVtx() \
                     into table {t}\n\
                     select id, count(*) as offers from table {t} \
                     group by id order by offers desc, id asc"
                )
            }
            // Cheapest qualifying offer per product carrying a feature.
            2 => {
                let f = format!("feature{}", self.rng.below(24));
                let x = 100.0 + self.rng.unit() * 9000.0;
                format!(
                    "select y.id, o.price as price from graph \
                       FeatureVtx(id = '{f}') <--feature-- def y: ProductVtx() \
                       <--product-- def o: OfferVtx(price < {x:.2}) \
                     into table {t}\n\
                     select id, min(price) as cheapest from table {t} \
                     group by id order by cheapest asc, id asc"
                )
            }
            // Products reviewed (well) by reviewers from one country.
            3 => {
                let c = *self.rng.pick(COUNTRIES);
                let r = 1 + self.rng.below(9);
                format!(
                    "select p.id from graph \
                       PersonVtx(country = '{c}') <--reviewer-- \
                       ReviewVtx(ratings_1 >= {r}) --reviewFor--> def p: ProductVtx() \
                     into table {t}\n\
                     select id, count(*) as reviews from table {t} \
                     group by id order by reviews desc, id asc"
                )
            }
            // Whole-match table (Fig. 13 shape): one row per binding, all
            // attributes — the raw enumeration order is the output.
            4 => {
                let r = 1 + self.rng.below(9);
                let k = 100 + self.rng.below(1900);
                format!(
                    "select * from graph \
                       ReviewVtx(ratings_1 > {r}) --reviewFor--> \
                       ProductVtx(propertyNumeric_1 <= {k}) \
                     into table {t}"
                )
            }
            // Subgraph capture through the type hierarchy (Fig. 10 shape).
            _ => {
                let p = format!("product{}", self.rng.below(48));
                format!(
                    "select * from graph ProductVtx(id = '{p}') --type--> TypeVtx() \
                     {{ --subclass--> TypeVtx() }}* --> TypeVtx() \
                     into subgraph SG{}",
                    self.graph_seq
                )
            }
        }
    }

    /// `count(*)`, `count(c)`, `min`/`max` over any column, `sum`/`avg`
    /// over numeric columns only. Returns the call text and whether it
    /// must be aliased (never required today; kept for clarity).
    fn gen_agg(&mut self, table: &TableInfo) -> (String, bool) {
        let numeric: Vec<&Col> = table.cols.iter().filter(|c| c.numeric).collect();
        let choice = self.rng.below(6);
        let call = match choice {
            0 => "count(*)".to_string(),
            1 => format!("count({})", self.rng.pick(table.cols).name),
            2 if !numeric.is_empty() => format!("sum({})", self.rng.pick(&numeric).name),
            3 if !numeric.is_empty() => format!("avg({})", self.rng.pick(&numeric).name),
            4 => format!("min({})", self.rng.pick(table.cols).name),
            5 => format!("max({})", self.rng.pick(table.cols).name),
            _ => "count(*)".to_string(),
        };
        (call, false)
    }

    /// A 1–3 clause boolean expression, type-correct by construction.
    fn gen_where(&mut self, table: &TableInfo) -> String {
        let n = 1 + self.rng.below(3);
        let mut parts: Vec<String> = Vec::new();
        for _ in 0..n {
            if let Some(p) = self.gen_predicate(table) {
                parts.push(p);
            }
        }
        if parts.is_empty() {
            parts.push(self.gen_predicate(table).unwrap_or_else(|| {
                // Every Berlin table has an `id` column.
                "id != ''".to_string()
            }));
        }
        let joiner = if self.rng.chance(70) { " and " } else { " or " };
        parts.join(joiner)
    }

    fn gen_predicate(&mut self, table: &TableInfo) -> Option<String> {
        let c = self.rng.pick(table.cols);
        let (lit, ordered) = match c.domain {
            Domain::Int { lo, hi } => {
                let span = (hi - lo).max(1) as u64;
                (format!("{}", lo + self.rng.below(span) as i64), true)
            }
            Domain::Float { lo, hi } => {
                let x = lo + self.rng.unit() * (hi - lo);
                (format!("{x:.2}"), true)
            }
            Domain::Ids { prefix, n } => (format!("'{prefix}{}'", self.rng.below(n)), false),
            Domain::Pool(pool) => (format!("'{}'", self.rng.pick(pool)), false),
            Domain::Opaque => return None,
        };
        let op = if ordered {
            *self.rng.pick(&["=", "!=", "<", "<=", ">", ">="])
        } else {
            *self.rng.pick(&["=", "!="])
        };
        let neg = if self.rng.chance(10) { "not " } else { "" };
        Some(format!("{neg}{} {op} {lit}", c.name))
    }

    /// `n` distinct columns of `table` (order randomized, no duplicates —
    /// duplicate output names are a rename error in the engine).
    fn pick_distinct_cols<'a>(&mut self, table: &'a TableInfo, n: usize) -> Vec<&'a Col> {
        let mut idx: Vec<usize> = (0..table.cols.len()).collect();
        // Partial Fisher–Yates.
        for i in 0..n.min(idx.len()) {
            let j = i + self.rng.below((idx.len() - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.into_iter().take(n).map(|i| &table.cols[i]).collect()
    }
}

impl TestRng {
    fn pick_table(&mut self) -> &'static TableInfo {
        let ts = tables();
        &ts[self.below(ts.len() as u64) as usize]
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_by_seed() {
        let a: Vec<String> = {
            let mut g = ScriptGen::new(7);
            (0..20).map(|_| g.next_script()).collect()
        };
        let b: Vec<String> = {
            let mut g = ScriptGen::new(7);
            (0..20).map(|_| g.next_script()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<String> = {
            let mut g = ScriptGen::new(8);
            (0..20).map(|_| g.next_script()).collect()
        };
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn generated_scripts_parse() {
        let mut g = ScriptGen::new(1);
        for i in 0..200 {
            let s = g.next_script();
            graql_parser::parse(&s).unwrap_or_else(|e| panic!("script {i} {s:?}: {e}"));
        }
    }

    #[test]
    fn generated_graph_scripts_parse() {
        let mut g = ScriptGen::new(1);
        for i in 0..120 {
            let s = g.next_graph_script();
            graql_parser::parse(&s).unwrap_or_else(|e| panic!("graph script {i} {s:?}: {e}"));
        }
    }

    #[test]
    fn graph_result_names_never_collide() {
        let mut g = ScriptGen::new(3);
        let mut names = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = g.next_graph_script();
            let into = s
                .split("into ")
                .nth(1)
                .expect("graph scripts register a result");
            let name = into.split_whitespace().nth(1).unwrap().to_string();
            assert!(names.insert(name), "duplicate result name in {s}");
        }
    }
}
