//! The differential-oracle side of the testkit: a shared renderer that
//! puts session outputs into the exact `gems-shell` presentation format,
//! and a divergence artifact writer for when two evaluation paths
//! disagree (the artifact is what CI uploads on failure).

use std::path::{Path, PathBuf};

use graql_core::SessionOutput;
use graql_types::Result;

/// Renders outputs exactly as `gems-shell` prints them, so the local
/// engine, the remote wire path and the reference evaluator can be
/// compared byte for byte.
pub fn render_outputs(outputs: &[SessionOutput]) -> String {
    let mut s = String::new();
    for (i, out) in outputs.iter().enumerate() {
        match out {
            SessionOutput::Created(name) => s.push_str(&format!("[{i}] created {name}\n")),
            SessionOutput::Ingested { table, rows } => {
                s.push_str(&format!("[{i}] ingested {rows} rows into {table}\n"))
            }
            SessionOutput::Table(t) => s.push_str(&format!(
                "[{i}] table ({} rows):\n{}",
                t.n_rows(),
                t.render()
            )),
            SessionOutput::Subgraph { summary, .. } => {
                s.push_str(&format!("[{i}] subgraph: {summary}\n"))
            }
            SessionOutput::Pipelined => {
                s.push_str(&format!("[{i}] pipelined into the next statement\n"))
            }
            SessionOutput::Profile { text, .. } => {
                // Stage wall times legitimately differ between two
                // executions of the same statement, so only the header
                // line (the profiled statement) joins the differential
                // comparison.
                let head = text.lines().next().unwrap_or("profile");
                s.push_str(&format!("[{i}] {head}\n"))
            }
        }
    }
    s
}

/// Renders an execution outcome: outputs on success, a stable one-line
/// form on error (errors must diverge *identically* too).
pub fn render_outcome(outcome: &Result<Vec<SessionOutput>>) -> String {
    match outcome {
        Ok(outs) => render_outputs(outs),
        Err(e) => format!("error: {e}\n"),
    }
}

/// Writes a divergence artifact under `dir` and returns its path.
///
/// `variants` pairs a label (`"local"`, `"remote"`, `"reference"`) with
/// that path's rendered output. The file is self-contained: script first,
/// then every variant, so a CI artifact alone reproduces the report.
pub fn write_divergence(
    dir: &Path,
    tag: &str,
    script: &str,
    variants: &[(&str, &str)],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{tag}.txt"));
    let mut body = String::new();
    body.push_str("=== script ===\n");
    body.push_str(script);
    body.push('\n');
    for (label, output) in variants {
        body.push_str(&format!("=== {label} ===\n"));
        body.push_str(output);
        if !output.ends_with('\n') {
            body.push('\n');
        }
    }
    std::fs::write(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_table::{Table, TableSchema};
    use graql_types::{DataType, Value};

    #[test]
    fn renderer_matches_gems_shell_format() {
        let schema = TableSchema::of(&[("id", DataType::Integer)]);
        let t = Table::from_rows(schema, vec![vec![Value::Int(1)]]).unwrap();
        let outs = vec![
            SessionOutput::Created("T".into()),
            SessionOutput::Ingested {
                table: "T".into(),
                rows: 3,
            },
            SessionOutput::Table(t),
            SessionOutput::Pipelined,
        ];
        let got = render_outputs(&outs);
        assert!(got.starts_with("[0] created T\n[1] ingested 3 rows into T\n"));
        assert!(got.contains("[2] table (1 rows):\n| id |"));
        assert!(got.ends_with("[3] pipelined into the next statement\n"));
    }

    #[test]
    fn divergence_artifact_is_self_contained() {
        let dir = std::env::temp_dir().join(format!("graql_divergence_{}", std::process::id()));
        let p = write_divergence(
            &dir,
            "seed7_script3",
            "select 1",
            &[("local", "a\n"), ("remote", "b\n")],
        )
        .unwrap();
        let body = std::fs::read_to_string(&p).unwrap();
        assert!(body.contains("=== script ===\nselect 1\n"));
        assert!(body.contains("=== local ===\na\n=== remote ===\nb\n"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
