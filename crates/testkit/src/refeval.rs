//! A naive reference evaluator for table-sourced `select` statements.
//!
//! Mirrors the *documented* semantics of the engine pipeline
//! (`crates/core/src/exec/relational.rs` + the Table-1 kernels) with
//! deliberately simple row-at-a-time code and none of the engine's
//! columnar kernels, hash maps or index machinery. The oracle in
//! `tests/oracle.rs` demands byte-identical rendered output between this
//! evaluator, the in-process engine, and the remote wire path, so the
//! exact tie-break/ordering rules matter:
//!
//! - selection preserves input order;
//! - `group by` emits groups in first-seen order, aggregates fold members
//!   in row order (integer sums accumulate wrapping in `i64`, float sums
//!   and `avg` in `f64`, `min`/`max` skip nulls);
//! - `distinct` keeps first occurrences;
//! - `order by` is a stable sort over the *output* schema under
//!   `Value::cmp_total`;
//! - `top n` truncates last.

use graql_core::SessionOutput;
use graql_parser::ast::{
    AggCall, ColRef, Expr, Lit, Operand, SelectExpr, SelectSource, SelectStmt, SelectTargets, Stmt,
};
use graql_table::{ColumnDef, Table, TableSchema};
use graql_types::{DataType, GraqlError, Result, Value};

/// Executes `text` against the base tables of `db` with the reference
/// evaluator, producing outputs in the same shape a session returns.
///
/// Only read-only, table-sourced selects are supported — exactly the
/// fragment the differential generator emits. Anything else is an error
/// (a generator bug, not a legal divergence).
pub fn reference_outputs(db: &graql_core::Database, text: &str) -> Result<Vec<SessionOutput>> {
    let script = graql_parser::parse(text)?;
    let mut outs = Vec::new();
    for stmt in &script.statements {
        let Stmt::Select(sel) = stmt else {
            return Err(GraqlError::exec(
                "reference evaluator: only select statements are supported",
            ));
        };
        if sel.into.is_some() {
            return Err(GraqlError::exec(
                "reference evaluator: 'into' capture is not supported",
            ));
        }
        let SelectSource::Table(name) = &sel.source else {
            return Err(GraqlError::exec(
                "reference evaluator: only table sources are supported",
            ));
        };
        let base = db
            .table(name)
            .ok_or_else(|| GraqlError::name(format!("unknown table {name:?}")))?;
        outs.push(SessionOutput::Table(evaluate_select(base, sel, name)?));
    }
    Ok(outs)
}

/// The reference pipeline over one base table.
pub fn evaluate_select(base: &Table, sel: &SelectStmt, table_name: &str) -> Result<Table> {
    // 1. Selection.
    let filtered = match &sel.where_clause {
        Some(w) => {
            let mut t = Table::empty(base.schema().clone());
            for r in 0..base.n_rows() {
                if eval_expr(w, base, r, table_name)? {
                    t.push_row(&base.row(r))?;
                }
            }
            t
        }
        None => base.clone(),
    };

    // 2. Projection / aggregation.
    let mut out = match &sel.targets {
        SelectTargets::Star => {
            if !sel.group_by.is_empty() {
                return Err(GraqlError::type_error("'select *' cannot be grouped"));
            }
            filtered
        }
        SelectTargets::Items(items) => {
            let has_aggs = items.iter().any(|i| matches!(i.expr, SelectExpr::Agg(_)));
            if has_aggs || !sel.group_by.is_empty() {
                aggregate_projection(&filtered, sel, table_name)?
            } else {
                let mut cols = Vec::new();
                let mut defs = Vec::new();
                for item in items {
                    let SelectExpr::Col(c) = &item.expr else {
                        unreachable!()
                    };
                    let ci = col_index(c, filtered.schema(), table_name)?;
                    cols.push(ci);
                    let dtype = filtered.schema().column(ci).dtype;
                    let name = item
                        .alias
                        .clone()
                        .unwrap_or_else(|| filtered.schema().column(ci).name.clone());
                    defs.push(ColumnDef::new(name, dtype));
                }
                let mut t = Table::empty(TableSchema::new(defs)?);
                for r in 0..filtered.n_rows() {
                    let row: Vec<Value> = cols.iter().map(|&c| filtered.get(r, c)).collect();
                    t.push_row(&row)?;
                }
                t
            }
        }
    };

    // 3. Distinct (first occurrence).
    if sel.distinct {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        let mut t = Table::empty(out.schema().clone());
        for r in 0..out.n_rows() {
            let row = out.row(r);
            if !seen.iter().any(|s| s == &row) {
                t.push_row(&row)?;
                seen.push(row);
            }
        }
        out = t;
    }

    // 4. Order by, stable, over the output schema.
    if !sel.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = sel
            .order_by
            .iter()
            .map(|k| {
                let col = out.schema().require(&k.col.name).map_err(|_| {
                    GraqlError::name(format!(
                        "'order by' column {:?} is not in the select output",
                        k.col.name
                    ))
                })?;
                Ok((col, k.desc))
            })
            .collect::<Result<Vec<_>>>()?;
        let mut idx: Vec<usize> = (0..out.n_rows()).collect();
        idx.sort_by(|&a, &b| {
            for &(c, desc) in &keys {
                let ord = out.get(a, c).cmp_total(&out.get(b, c));
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        let mut t = Table::empty(out.schema().clone());
        for r in idx {
            t.push_row(&out.row(r))?;
        }
        out = t;
    }

    // 5. Top n.
    if let Some(n) = sel.top {
        let mut t = Table::empty(out.schema().clone());
        for r in 0..out.n_rows().min(n as usize) {
            t.push_row(&out.row(r))?;
        }
        out = t;
    }
    Ok(out)
}

fn col_index(c: &ColRef, schema: &TableSchema, table_name: &str) -> Result<usize> {
    if let Some(q) = &c.qualifier {
        if q != table_name {
            return Err(GraqlError::name(format!(
                "unknown qualifier {q:?}; the table is {table_name:?}"
            )));
        }
    }
    schema.require(&c.name)
}

fn lit_value(lit: &Lit) -> Result<Value> {
    Ok(match lit {
        Lit::Int(i) => Value::Int(*i),
        Lit::Float(f) => Value::Float(*f),
        Lit::Str(s) => Value::str(s),
        Lit::Date(d) => Value::Date(*d),
        Lit::Param(name) => {
            return Err(GraqlError::exec(format!(
                "reference evaluator: unbound parameter %{name}%"
            )))
        }
    })
}

fn eval_expr(e: &Expr, t: &Table, row: usize, table_name: &str) -> Result<bool> {
    Ok(match e {
        Expr::And(ps) => {
            for p in ps {
                if !eval_expr(p, t, row, table_name)? {
                    return Ok(false);
                }
            }
            true
        }
        Expr::Or(ps) => {
            for p in ps {
                if eval_expr(p, t, row, table_name)? {
                    return Ok(true);
                }
            }
            false
        }
        Expr::Not(inner) => !eval_expr(inner, t, row, table_name)?,
        Expr::Cmp { op, lhs, rhs, .. } => {
            let l = operand_value(lhs, t, row, table_name)?;
            let r = operand_value(rhs, t, row, table_name)?;
            op.eval(&l, &r)
        }
    })
}

fn operand_value(o: &Operand, t: &Table, row: usize, table_name: &str) -> Result<Value> {
    match o {
        Operand::Attr { qualifier, name } => {
            let c = col_index(
                &ColRef {
                    qualifier: qualifier.clone(),
                    name: name.clone(),
                },
                t.schema(),
                table_name,
            )?;
            Ok(t.get(row, c))
        }
        Operand::Lit(l) => lit_value(l),
    }
}

/// `group by` + aggregates, assembled in select-list order with the
/// engine's default names (`agg_{i}` for unaliased aggregates).
fn aggregate_projection(t: &Table, sel: &SelectStmt, table_name: &str) -> Result<Table> {
    let SelectTargets::Items(items) = &sel.targets else {
        unreachable!()
    };
    let group_cols: Vec<usize> = sel
        .group_by
        .iter()
        .map(|c| col_index(c, t.schema(), table_name))
        .collect::<Result<_>>()?;

    // Groups in first-seen order (linear-scan key lookup — O(n·g), fine
    // for a reference).
    let groups: Vec<Vec<usize>> = if group_cols.is_empty() {
        vec![(0..t.n_rows()).collect()]
    } else {
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for r in 0..t.n_rows() {
            let key: Vec<Value> = group_cols.iter().map(|&c| t.get(r, c)).collect();
            match keys.iter().position(|k| k == &key) {
                Some(g) => groups[g].push(r),
                None => {
                    keys.push(key);
                    groups.push(vec![r]);
                }
            }
        }
        groups
    };

    // Output columns in select-list order.
    let mut defs: Vec<ColumnDef> = Vec::new();
    enum Slot {
        Group(usize),
        Agg(AggCall),
    }
    let mut slots: Vec<Slot> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match &item.expr {
            SelectExpr::Col(c) => {
                let ci = col_index(c, t.schema(), table_name)?;
                if !group_cols.contains(&ci) {
                    return Err(GraqlError::type_error(format!(
                        "column {:?} must appear in 'group by' or inside an aggregate",
                        c.name
                    )));
                }
                let name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| t.schema().column(ci).name.clone());
                defs.push(ColumnDef::new(name, t.schema().column(ci).dtype));
                slots.push(Slot::Group(ci));
            }
            SelectExpr::Agg(a) => {
                let name = item.alias.clone().unwrap_or_else(|| format!("agg_{i}"));
                defs.push(ColumnDef::new(name, agg_out_type(a, t, table_name)?));
                slots.push(Slot::Agg(a.clone()));
            }
        }
    }

    let mut out = Table::empty(TableSchema::new(defs)?);
    for members in &groups {
        let rep = members.first().copied();
        let mut row: Vec<Value> = Vec::with_capacity(slots.len());
        for slot in &slots {
            row.push(match slot {
                Slot::Group(ci) => rep.map_or(Value::Null, |r| t.get(r, *ci)),
                Slot::Agg(a) => eval_agg(a, t, members, table_name)?,
            });
        }
        out.push_row(&row)?;
    }
    Ok(out)
}

fn agg_input(a: &AggCall) -> Option<&ColRef> {
    match a {
        AggCall::CountStar => None,
        AggCall::Count(c)
        | AggCall::Sum(c)
        | AggCall::Avg(c)
        | AggCall::Min(c)
        | AggCall::Max(c) => Some(c),
    }
}

fn agg_out_type(a: &AggCall, t: &Table, table_name: &str) -> Result<DataType> {
    let input = |c: &ColRef| -> Result<DataType> {
        Ok(t.schema()
            .column(col_index(c, t.schema(), table_name)?)
            .dtype)
    };
    let numeric = |c: &ColRef| -> Result<DataType> {
        let dt = input(c)?;
        if dt.is_numeric() {
            Ok(dt)
        } else {
            Err(GraqlError::type_error(format!(
                "aggregate over non-numeric column {:?}",
                c.name
            )))
        }
    };
    Ok(match a {
        AggCall::CountStar | AggCall::Count(_) => DataType::Integer,
        AggCall::Sum(c) => numeric(c)?,
        AggCall::Avg(c) => {
            numeric(c)?;
            DataType::Float
        }
        AggCall::Min(c) | AggCall::Max(c) => input(c)?,
    })
}

fn eval_agg(a: &AggCall, t: &Table, members: &[usize], table_name: &str) -> Result<Value> {
    let ci = match agg_input(a) {
        Some(c) => Some(col_index(c, t.schema(), table_name)?),
        None => None,
    };
    Ok(match a {
        AggCall::CountStar => Value::Int(members.len() as i64),
        AggCall::Count(_) => {
            let c = ci.unwrap();
            Value::Int(members.iter().filter(|&&r| !t.get(r, c).is_null()).count() as i64)
        }
        AggCall::Sum(_) => {
            let c = ci.unwrap();
            if t.schema().column(c).dtype == DataType::Integer {
                let mut acc: Option<i64> = None;
                for &r in members {
                    if let Some(x) = t.get(r, c).as_int() {
                        acc = Some(acc.unwrap_or(0).wrapping_add(x));
                    }
                }
                acc.map_or(Value::Null, Value::Int)
            } else {
                let mut acc: Option<f64> = None;
                for &r in members {
                    if let Some(x) = t.get(r, c).as_f64() {
                        acc = Some(acc.unwrap_or(0.0) + x);
                    }
                }
                acc.map_or(Value::Null, Value::Float)
            }
        }
        AggCall::Avg(_) => {
            let c = ci.unwrap();
            let (mut sum, mut n) = (0.0, 0usize);
            for &r in members {
                if let Some(x) = t.get(r, c).as_f64() {
                    sum += x;
                    n += 1;
                }
            }
            if n == 0 {
                Value::Null
            } else {
                Value::Float(sum / n as f64)
            }
        }
        AggCall::Min(_) | AggCall::Max(_) => {
            let c = ci.unwrap();
            let min = matches!(a, AggCall::Min(_));
            let mut best: Option<Value> = None;
            for &r in members {
                let v = t.get(r, c);
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if min { v < b } else { v > b };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best.unwrap_or(Value::Null)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> graql_core::Database {
        graql_bsbm::build_database(graql_bsbm::Scale::new(40)).unwrap()
    }

    fn engine_render(db: &mut graql_core::Database, q: &str) -> String {
        let out = db.execute_str(q).unwrap();
        let graql_core::StmtOutput::Table(t) = out else {
            panic!("not a table")
        };
        t.render()
    }

    fn reference_render(db: &graql_core::Database, q: &str) -> String {
        let outs = reference_outputs(db, q).unwrap();
        let SessionOutput::Table(t) = &outs[0] else {
            panic!("not a table")
        };
        t.render()
    }

    #[test]
    fn matches_engine_on_representative_queries() {
        let mut d = db();
        for q in [
            "select * from table Vendors",
            "select distinct country from table Vendors order by country",
            "select id, price from table Offers where price > 5000.0 order by price desc, id",
            "select top 5 vendor, count(*) as n, avg(price) as mean from table Offers \
             group by vendor order by n desc, vendor",
            "select count(*) from table Reviews where ratings_1 >= 8",
            "select publisher, min(propertyNumeric_1), max(propertyNumeric_1) \
             from table Products group by publisher order by publisher",
            "select sum(deliveryDays) as d from table Offers where vendor = 'vendor3'",
        ] {
            let engine = engine_render(&mut d, q);
            let reference = reference_render(&d, q);
            assert_eq!(engine, reference, "divergence on {q}");
        }
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let d = db();
        let q = "select count(*), sum(price), avg(price) from table Offers where price < 0.0";
        let mut d2 = db();
        assert_eq!(reference_render(&d, q), engine_render(&mut d2, q));
    }
}
