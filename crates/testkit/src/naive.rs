//! O(n²) reference implementations of the Table-1 kernels.
//!
//! Each function computes the same answer as its counterpart in
//! `graql_table::ops` using the dumbest correct algorithm available —
//! nested loops and linear scans, no hashing, no sort keys. The table-op
//! property tests (`tests/table_ops_props.rs`) drive random operation
//! sequences through both and demand identical results, including row
//! *order*, which is part of every kernel's contract:
//!
//! - `filter` preserves input order;
//! - `join` pairs are left-major, right matches in right-row order;
//! - `group` representatives appear in first-seen order;
//! - `sort` is stable; `distinct` keeps first occurrences.

use graql_table::ops::SortKey;
use graql_table::{PhysExpr, Table};
use graql_types::Value;

/// Row indices satisfying `pred`, in input order.
pub fn filter_indices(t: &Table, pred: &PhysExpr) -> Vec<u32> {
    (0..t.n_rows())
        .filter(|&r| pred.eval_bool(t, r))
        .map(|r| r as u32)
        .collect()
}

/// Nested-loop equi-join: `(left_row, right_row)` pairs in left-major
/// order. Null keys never join; keys compare under semantic equality
/// (so `integer` joins `float` by value), matching `hash_join_pairs`.
pub fn join_pairs(l: &Table, lkeys: &[usize], r: &Table, rkeys: &[usize]) -> Vec<(u32, u32)> {
    assert_eq!(lkeys.len(), rkeys.len(), "join key arity mismatch");
    let mut out = Vec::new();
    for i in 0..l.n_rows() {
        for j in 0..r.n_rows() {
            let matches = lkeys.iter().zip(rkeys).all(|(&lc, &rc)| {
                let a = l.get(i, lc);
                let b = r.get(j, rc);
                a.sem_eq(&b)
            });
            if matches {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// Group representatives (first of each group, first-seen order) and
/// member lists, via linear key search.
pub fn group_indices(t: &Table, group_cols: &[usize]) -> (Vec<u32>, Vec<Vec<u32>>) {
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut reps: Vec<u32> = Vec::new();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for r in 0..t.n_rows() {
        let key: Vec<Value> = group_cols.iter().map(|&c| t.get(r, c)).collect();
        match keys.iter().position(|k| k == &key) {
            Some(g) => groups[g].push(r as u32),
            None => {
                keys.push(key);
                reps.push(r as u32);
                groups.push(vec![r as u32]);
            }
        }
    }
    (reps, groups)
}

/// Stable insertion sort of row indices under the sort keys.
pub fn sort_indices(t: &Table, keys: &[SortKey]) -> Vec<u32> {
    let cmp = |a: u32, b: u32| {
        for k in keys {
            let ord = t
                .get(a as usize, k.col)
                .cmp_total(&t.get(b as usize, k.col));
            let ord = if k.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    let mut out: Vec<u32> = Vec::with_capacity(t.n_rows());
    for r in 0..t.n_rows() as u32 {
        // Insert after every element that is <= r (stability).
        let pos = out
            .iter()
            .rposition(|&x| cmp(x, r) != std::cmp::Ordering::Greater)
            .map(|p| p + 1)
            .unwrap_or(0);
        out.insert(pos, r);
    }
    out
}

/// First-occurrence indices of distinct rows over the given columns.
pub fn distinct_indices(t: &Table, cols: &[usize]) -> Vec<u32> {
    group_indices(t, cols).0
}

/// The first `n` rows.
pub fn top_n(t: &Table, n: usize) -> Table {
    let idx: Vec<u32> = (0..t.n_rows().min(n) as u32).collect();
    t.gather(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_table::ops;
    use graql_table::TableSchema;
    use graql_types::{CmpOp, DataType};

    fn sample() -> Table {
        let schema = TableSchema::of(&[
            ("k", DataType::Integer),
            ("v", DataType::Float),
            ("s", DataType::Varchar(4)),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::Int(2), Value::Float(1.5), Value::str("b")],
                vec![Value::Int(1), Value::Null, Value::str("a")],
                vec![Value::Int(2), Value::Float(0.5), Value::str("b")],
                vec![Value::Null, Value::Float(2.0), Value::str("c")],
                vec![Value::Int(1), Value::Float(1.5), Value::str("a")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn kernels_agree_on_sample() {
        let t = sample();
        let pred = PhysExpr::Cmp(
            CmpOp::Ge,
            Box::new(PhysExpr::Col(0)),
            Box::new(PhysExpr::Const(Value::Int(1))),
        );
        assert_eq!(filter_indices(&t, &pred), ops::filter_indices(&t, &pred));
        assert_eq!(
            join_pairs(&t, &[0], &t, &[0]),
            ops::hash_join_pairs(&t, &[0], &t, &[0])
        );
        assert_eq!(group_indices(&t, &[0]), ops::group_indices(&t, &[0]));
        let keys = [SortKey::asc(0), SortKey::desc(1)];
        assert_eq!(sort_indices(&t, &keys), ops::sort_indices(&t, &keys));
        assert_eq!(
            distinct_indices(&t, &[0, 2]),
            ops::distinct_indices(&t, &[0, 2])
        );
        let topped = top_n(&t, 3);
        let engine = ops::top_n(&t, 3);
        assert_eq!(topped.n_rows(), engine.n_rows());
        for r in 0..3 {
            assert_eq!(topped.row(r), engine.row(r));
        }
    }
}
