//! # graql-bench
//!
//! Shared fixtures for the Criterion benchmark harness. Each bench target
//! regenerates one experiment of EXPERIMENTS.md; run them all with
//! `cargo bench --workspace` (or a single one with `-p graql-bench --bench <name>`).

use graql_bsbm::Scale;
use graql_core::Database;
use graql_types::Value;

/// Builds a loaded Berlin database with the standard parameter bindings
/// and the graph views already materialized.
pub fn berlin(products: usize) -> Database {
    let mut db = graql_bsbm::build_database(Scale::new(products)).expect("fixture builds");
    db.set_param("Product1", Value::str("product0"));
    db.set_param("Country1", Value::str("US"));
    db.set_param("Country2", Value::str("DE"));
    db.graph().expect("views build");
    db
}

/// Runs a script and returns the row count of its last table output
/// (black-box anchor so the optimizer cannot elide work).
pub fn run_rows(db: &mut Database, script: &str) -> usize {
    let outs = db.execute_script(script).expect("bench query runs");
    match outs.into_iter().last().expect("at least one statement") {
        graql_core::StmtOutput::Table(t) => t.n_rows(),
        graql_core::StmtOutput::Subgraph(s) => s.n_vertices(),
        _ => 0,
    }
}
