//! EXP-SCHED: multi-statement dependence scheduling (§III-B1).
//!
//! An 8-statement script of mutually independent selects runs through (a)
//! plain sequential execution and (b) the dependence scheduler, which
//! places all eight in one parallel window. Paper claim: the explicit
//! `into table` dataflow "enables the query planner to determine whether
//! two separate query statements … can be executed in parallel".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::berlin;
use std::hint::black_box;

fn script() -> String {
    // Eight independent table scans/aggregations over different outputs.
    let mut s = String::new();
    for i in 0..8 {
        s.push_str(&format!(
            "select vendor, count(*) as n, avg(price) as m from table Offers \
             where deliveryDays >= {} group by vendor order by n desc into table W{i}\n",
            i % 7 + 1
        ));
    }
    s
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("script_scheduling");
    group.sample_size(10);
    let src = script();
    for products in [1000usize, 4000] {
        let mut db_seq = berlin(products);
        group.bench_with_input(BenchmarkId::new("sequential", products), &(), |b, _| {
            b.iter(|| black_box(db_seq.execute_script(&src).unwrap().len()));
        });
        let mut db_par = berlin(products);
        group.bench_with_input(
            BenchmarkId::new("scheduled_parallel", products),
            &(),
            |b, _| {
                b.iter(|| {
                    let report = graql_core::run_script(&mut db_par, &src).unwrap();
                    assert_eq!(report.windows.len(), 1, "all eight in one window");
                    black_box(report.outputs.len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
