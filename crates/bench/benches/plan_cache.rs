//! EXP-PLANCACHE: what compiling a query costs, and what caching saves.
//!
//! The serve path caches analysis-validated, rewrite-applied statement
//! lists keyed by (epoch, script text). This bench isolates the win: the
//! same Berlin queries through a `Server` session with the cache at its
//! default capacity (every iteration after the first is a hit) vs with
//! the cache disabled (every iteration re-parses, re-analyzes and
//! re-rewrites). The spread between the two is the compile cost the
//! pipelined serve path no longer pays per request.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use graql_bench::berlin;
use graql_core::Server;

fn bench(c: &mut Criterion) {
    let server = Server::new(berlin(400));
    let mut sess = server.connect("admin").expect("session");

    let mut group = c.benchmark_group("plan_cache");
    let tiny = "select id from table Producers where country = 'US'";
    for (name, query) in [
        ("tiny", tiny),
        ("q1", graql_bsbm::queries::q1()),
        ("q2", graql_bsbm::queries::q2()),
    ] {
        server.set_plan_cache_capacity(1024);
        group.bench_function(format!("{name}_cached"), |b| {
            b.iter(|| black_box(sess.execute_script(query).unwrap().len()));
        });
        server.set_plan_cache_capacity(0);
        group.bench_function(format!("{name}_uncached"), |b| {
            b.iter(|| black_box(sess.execute_script(query).unwrap().len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
