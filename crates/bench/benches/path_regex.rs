//! EXP FIG10: path regular expressions over the subclass hierarchy.
//!
//! Sweeps the repetition quantifier: fixed counts `{1}`, `{2}`, `{4}` and
//! the unbounded `+` (which stops at the reachability fixpoint). Paper
//! claim (§II-B4): regex steps give "a very general query capability" over
//! variable path lengths; set-level BFS keeps them tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::{berlin, run_rows};
use std::hint::black_box;

fn query(quant: &str) -> String {
    format!(
        "select * from graph ProductVtx() --type--> TypeVtx() \
         {{ --subclass--> TypeVtx() }}{quant} --> TypeVtx() into subgraph r"
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_regex");
    group.sample_size(10);
    let mut db = berlin(1000);
    for quant in ["{1}", "{2}", "{4}", "+", "*"] {
        let q = query(quant);
        group.bench_with_input(BenchmarkId::new("quant", quant), &q, |b, q| {
            b.iter(|| black_box(run_rows(&mut db, q)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
