//! EXP-CLUSTER: the simulated GEMS backend — node-count sweep.
//!
//! Measures distributed execution of the Berlin Q2 graph phase while the
//! node count grows, and prints the communication profile (messages,
//! bytes, remote ratio) once per configuration. Paper claim (§I/§III):
//! the design targets a cluster whose aggregated memory holds the data;
//! the cost of distribution is inter-node traffic — visible here as a
//! remote-extension ratio that grows with node count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::berlin;
use graql_cluster::Cluster;
use graql_parser::ast::{PathComposition, SelectSource, Stmt};
use std::hint::black_box;

const QUERY: &str = "select y.id from graph \
    ProductVtx (id = %Product1%) --feature--> FeatureVtx() \
    <--feature-- def y: ProductVtx (id != %Product1%) into table T";

fn path() -> graql_parser::ast::PathQuery {
    let Stmt::Select(sel) = graql_parser::parse_statement(QUERY).unwrap() else {
        panic!()
    };
    let SelectSource::Graph(PathComposition::Single(p)) = sel.source else {
        panic!()
    };
    p
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_scaling");
    group.sample_size(10);
    let db = berlin(1000);
    let p = path();
    for nodes in [1usize, 2, 4, 8] {
        let cluster = Cluster::new(&db, nodes).expect("cluster forms");
        // Communication profile (printed once, recorded in EXPERIMENTS.md).
        let probe = graql_cluster::run_path_query(&cluster, &db, &p).unwrap();
        println!(
            "cluster_scaling/{nodes} nodes: {} bindings, {} supersteps, {} msgs, {} bytes, remote ratio {:.3}",
            probe.bindings.len(),
            probe.metrics.supersteps(),
            probe.metrics.total_messages(),
            probe.metrics.total_bytes(),
            probe.metrics.remote_ratio()
        );
        group.bench_with_input(BenchmarkId::new("q2_graph_phase", nodes), &(), |b, _| {
            b.iter(|| {
                black_box(
                    graql_cluster::run_path_query(&cluster, &db, &p)
                        .unwrap()
                        .bindings
                        .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
