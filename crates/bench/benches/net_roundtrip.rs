//! EXP-NET: what the wire costs.
//!
//! The paper's architecture (§III) separates client, front-end and
//! backend; this repo's seed collapsed them into one process. `graql-net`
//! separates them again, so this bench quantifies the price: Berlin Q1/Q2
//! through a loopback `NetServer` vs the same session API in-process,
//! plus raw protocol latency (ping) and streamed result throughput (a
//! full `Products` scan shipped in row batches).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use graql_bench::berlin;
use graql_core::Server;
use graql_net::{serve, ConnectOptions, GemsSession, RemoteSession, ServeOptions};

fn bench(c: &mut Criterion) {
    let server = Server::new(berlin(400));
    let mut net = serve(server.clone(), ServeOptions::default()).expect("serve");
    let mut remote =
        RemoteSession::connect(net.local_addr(), ConnectOptions::new("admin")).expect("connect");
    let mut inproc = server.connect("admin").expect("in-process session");

    let mut group = c.benchmark_group("net_roundtrip");

    // Raw protocol latency: one framed message each way, no query work.
    group.bench_function("ping", |b| {
        b.iter(|| remote.ping().unwrap());
    });

    for (name, query) in [
        ("q1", graql_bsbm::queries::q1()),
        ("q2", graql_bsbm::queries::q2()),
    ] {
        group.bench_function(format!("{name}_inproc"), |b| {
            b.iter(|| {
                black_box(
                    GemsSession::execute_script(&mut inproc, query)
                        .unwrap()
                        .len(),
                )
            });
        });
        group.bench_function(format!("{name}_remote"), |b| {
            b.iter(|| black_box(remote.execute_script(query).unwrap().len()));
        });
    }

    // Pipelined multiplexing (proto v5): DEPTH requests in flight on one
    // connection, demuxed by request id, vs the one-at-a-time remote
    // path above. Per-element time is the sustained per-query cost with
    // the wire round trip amortized across the window. The `pipelined`
    // bench uses a wire-dominated point lookup (where pipelining pays:
    // single-in-flight spends most of its time waiting on the RTT);
    // `q1_pipelined` shows the compute-bound end, where the gain is
    // bounded by the engine, not the wire.
    const DEPTH: usize = 64;
    let tiny = "select id from table Producers where country = 'US'";
    group.bench_function("tiny_remote", |b| {
        b.iter(|| black_box(remote.execute_script(tiny).unwrap().len()));
    });
    for (name, query) in [
        ("pipelined", tiny),
        ("q1_pipelined", graql_bsbm::queries::q1()),
    ] {
        let ir = graql_core::ir::encode(&graql_parser::parse(query).unwrap());
        group.throughput(Throughput::Elements(DEPTH as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let ids: Vec<u64> = (0..DEPTH).map(|_| remote.submit_ir(&ir).unwrap()).collect();
                for id in ids {
                    black_box(remote.wait(id).unwrap().len());
                }
            });
        });
        group.throughput(Throughput::Elements(1));
    }

    // Streamed throughput: a full wide-table scan crosses the wire in
    // row batches; the in-process run bounds the engine-side cost.
    let scan = "select id, label, producer, propertyNumeric_1, date from table Products";
    let rows = {
        let outputs = remote.execute_script(scan).unwrap();
        match &outputs[..] {
            [graql_core::SessionOutput::Table(t)] => t.n_rows(),
            other => panic!("expected a table, got {other:?}"),
        }
    };
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("scan_inproc", |b| {
        b.iter(|| {
            black_box(
                GemsSession::execute_script(&mut inproc, scan)
                    .unwrap()
                    .len(),
            )
        });
    });
    group.bench_function("scan_remote", |b| {
        b.iter(|| black_box(remote.execute_script(scan).unwrap().len()));
    });
    group.finish();

    drop(remote);
    net.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
