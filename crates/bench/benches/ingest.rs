//! EXP-INGEST: CSV ingest throughput and graph-view (re)generation.
//!
//! Paper claim (§II-A2): "data ingest triggers not only the population of
//! rows in the table, but also the generation of associated vertex and
//! edge instances derived from the table" — this bench separates the two
//! costs: raw CSV → columnar ingest vs the Eq. 1/Eq. 2 view build
//! (including the four-way `export` join and all bidirectional indexes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graql_bsbm::{generate, graph_ddl, schema_ddl, Scale};
use graql_core::Database;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);
    for products in [500usize, 2000] {
        let data = generate(Scale::new(products));
        let total_bytes: usize = data.tables().map(|(_, t)| t.len()).sum();
        group.throughput(Throughput::Bytes(total_bytes as u64));
        group.bench_with_input(BenchmarkId::new("csv_ingest", products), &(), |b, _| {
            b.iter(|| {
                let mut db = Database::new();
                db.execute_script(schema_ddl()).unwrap();
                let mut rows = 0;
                for (t, csv) in data.tables() {
                    rows += db.ingest_str(t, csv).unwrap();
                }
                black_box(rows)
            });
        });
        // View build alone: ingest once, then measure graph regeneration.
        let mut db = Database::new();
        db.execute_script(schema_ddl()).unwrap();
        db.execute_script(graph_ddl()).unwrap();
        for (t, csv) in data.tables() {
            db.ingest_str(t, csv).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("view_build", products), &(), |b, _| {
            b.iter_batched(
                || db.clone(),
                |mut fresh| {
                    let g = fresh.graph().unwrap();
                    black_box(g.n_edges())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
