//! EXP-CULL: semi-join culling ablation for binding enumeration.
//!
//! Paper claim (§II-B1): "the set of vertices selected at a particular
//! step will be culled by subsequent steps of all vertices that have no
//! path to vertices selected at that step" — pre-culling bounds the
//! intermediate results ("the possibility of obtaining large intermediate
//! results" is one of §I's challenges).
//!
//! The query walks offers → products → reviews with a selective final
//! filter; without culling the enumerator explores every offer.
//! Expected shape: culling-on ≤ culling-off, widening with scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::{berlin, run_rows};
use std::hint::black_box;

const QUERY: &str = "select O.id from graph \
    def O: OfferVtx(deliveryDays = 1) --product--> ProductVtx() \
    <--reviewFor-- ReviewVtx() --reviewer--> PersonVtx(country = 'CH')";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("culling_ablation");
    group.sample_size(10);
    for products in [300usize, 1000] {
        for culling in [true, false] {
            let mut db = berlin(products);
            db.config_mut().culling = culling;
            let name = if culling { "culling_on" } else { "culling_off" };
            group.bench_with_input(BenchmarkId::new(name, products), &(), |b, _| {
                b.iter(|| black_box(run_rows(&mut db, QUERY)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
