//! EXP-IR: the binary intermediate representation (§III).
//!
//! Measures encode/decode of the full query corpus against re-parsing the
//! source text, and prints the size ratio. Paper claim: the binary IR is
//! "a convenient mechanism for moving the query script from the front-end
//! … to the backend" — i.e. cheaper to decode than re-parsing and compact
//! on the wire.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn corpus() -> String {
    let mut s = String::new();
    s.push_str(graql_bsbm::schema_ddl());
    s.push_str(graql_bsbm::graph_ddl());
    for q in [
        graql_bsbm::queries::q1(),
        graql_bsbm::queries::q2(),
        graql_bsbm::queries::fig9(),
        graql_bsbm::queries::fig10(),
        graql_bsbm::queries::fig11().0,
        graql_bsbm::queries::fig11().1,
        graql_bsbm::queries::fig12(),
        graql_bsbm::queries::fig13(),
    ] {
        s.push_str(q);
        s.push('\n');
    }
    s
}

fn bench(c: &mut Criterion) {
    let src = corpus();
    let script = graql_parser::parse(&src).unwrap();
    let blob = graql_core::ir::encode(&script);
    println!(
        "ir_codec: source {} bytes → IR {} bytes (ratio {:.2})",
        src.len(),
        blob.len(),
        blob.len() as f64 / src.len() as f64
    );

    let mut group = c.benchmark_group("ir_codec");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("parse_text", |b| {
        b.iter(|| black_box(graql_parser::parse(&src).unwrap().statements.len()));
    });
    group.bench_function("encode", |b| {
        b.iter(|| black_box(graql_core::ir::encode(&script).len()));
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(graql_core::ir::decode(&blob).unwrap().statements.len()));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
