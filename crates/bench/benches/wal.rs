//! EXP-WAL: write-ahead-log commit latency and group-commit batching.
//!
//! `append` measures the single-writer commit path: frame encode, append,
//! and an fsync the writer must wait for. `group_commit/N` runs N threads
//! committing concurrently against one log — the dedicated commit thread
//! drains whole batches per fsync, so throughput should grow with N far
//! faster than N independent fsyncs would allow (the point of group
//! commit). The bench-regression lane pins both: a slipped fsync batch or
//! a serialized commit path shows up as a latency cliff here.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graql_core::{DurabilityOptions, Wal, WalPayload};
use graql_types::WalMetrics;

/// Commits per thread in one group-commit iteration.
const PER_THREAD: u64 = 16;

fn payload(i: u64) -> WalPayload {
    WalPayload::Ingest {
        table: "T".into(),
        csv: format!("{i},{}.5\n", i % 10),
    }
}

fn fresh_wal(dir: &PathBuf) -> Wal {
    let _ = std::fs::remove_dir_all(dir);
    let (_db, wal, _report) = Wal::open(
        dir,
        // No automatic checkpoints: the bench isolates the commit path.
        DurabilityOptions {
            checkpoint_every: 0,
        },
        Arc::new(WalMetrics::new()),
    )
    .unwrap();
    wal
}

fn bench(c: &mut Criterion) {
    let tmp = std::env::temp_dir().join(format!("graql_bench_wal_{}", std::process::id()));
    let mut group = c.benchmark_group("wal");
    group.sample_size(10);

    {
        let wal = fresh_wal(&tmp);
        let mut i = 0u64;
        group.bench_function("append", |b| {
            b.iter(|| {
                i += 1;
                black_box(wal.commit(&payload(i)).unwrap())
            });
        });
    }

    for threads in [2u64, 8] {
        let wal = fresh_wal(&tmp);
        group.throughput(Throughput::Elements(threads * PER_THREAD));
        group.bench_with_input(
            BenchmarkId::new("group_commit", threads),
            &threads,
            |b, &n| {
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..n {
                            let wal = &wal;
                            s.spawn(move || {
                                for i in 0..PER_THREAD {
                                    wal.commit(&payload(t * 100_000 + i)).unwrap();
                                }
                            });
                        }
                    });
                });
            },
        );
    }

    group.finish();
    std::fs::remove_dir_all(&tmp).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
