//! EXP FIG6/FIG7: Berlin Q1 and Q2 end-to-end latency across scales.
//!
//! Paper claim validated (shape): the in-memory tabular+graph engine
//! answers the Berlin BI queries interactively, with cost growing roughly
//! linearly in the data scale (binding enumeration is bounded by the
//! number of matches after per-step culling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::{berlin, run_rows};
use graql_bsbm::queries;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("berlin_queries");
    group.sample_size(10);
    for products in [100usize, 500, 2000] {
        let mut db = berlin(products);
        group.bench_with_input(BenchmarkId::new("Q2", products), &products, |b, _| {
            b.iter(|| black_box(run_rows(&mut db, queries::q2())));
        });
        group.bench_with_input(BenchmarkId::new("Q1", products), &products, |b, _| {
            b.iter(|| black_box(run_rows(&mut db, queries::q1())));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
