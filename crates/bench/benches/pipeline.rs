//! EXP-PIPE: pipelined statement fusion (§III-B1).
//!
//! Berlin Q2 executed (a) with the intermediate `T1` table materialized
//! and (b) fused, streaming bindings straight into the group-by
//! accumulator. Paper claim: pipelining "reduce[s] the amount of space
//! needed to materialize intermediate results" — here it also saves the
//! build/scan of the intermediate table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::berlin;
use graql_bsbm::queries;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for products in [500usize, 2000] {
        let mut db = berlin(products);
        group.bench_with_input(BenchmarkId::new("materialized", products), &(), |b, _| {
            b.iter(|| black_box(db.execute_script(queries::q2()).unwrap().len()));
        });
        let mut db = berlin(products);
        group.bench_with_input(BenchmarkId::new("fused", products), &(), |b, _| {
            b.iter(|| {
                let outs = graql_core::run_script_pipelined(&mut db, queries::q2()).unwrap();
                assert!(matches!(outs[0], graql_core::StmtOutput::Pipelined));
                black_box(outs.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
