//! Static-analysis overhead (DESIGN.md analysis pipeline): the compile
//! path pays for dataflow checks and plan rewrites on every statement, so
//! both must stay cheap relative to execution.
//!
//! * `check` — full `check_script` over the Berlin Q1/Q2 text (lints +
//!   dataflow + cardinality annotation against live catalog statistics).
//! * `rewrite` — the rewrite passes alone over parsed statements.
//! * `exec_rewrite_{on,off}` — end-to-end Q1 latency with rewrites
//!   enabled vs disabled: the rewriter must never make queries slower.
//!
//! Informational lane: not part of the pinned BENCH_10.json regression set.

use criterion::{criterion_group, criterion_main, Criterion};
use graql_bench::{berlin, run_rows};
use graql_bsbm::queries;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_overhead");
    group.sample_size(20);

    let script = format!("{}\n{}", queries::q1(), queries::q2());
    let mut db = berlin(500);

    group.bench_function("check", |b| {
        b.iter(|| black_box(db.check_script_str(&script)));
    });

    let parsed = graql_parser::parse(&script).unwrap();
    let sels: Vec<_> = parsed
        .statements
        .iter()
        .filter_map(|s| s.as_select())
        .collect();
    group.bench_function("rewrite", |b| {
        b.iter(|| {
            for sel in &sels {
                black_box(graql_core::analysis::rewrite_select(sel));
            }
        });
    });

    group.bench_function("exec_rewrite_on", |b| {
        b.iter(|| black_box(run_rows(&mut db, queries::q1())));
    });
    let mut plain = berlin(500);
    plain.config_mut().rewrite = false;
    group.bench_function("exec_rewrite_off", |b| {
        b.iter(|| black_box(run_rows(&mut plain, queries::q1())));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
