//! EXP-PAR: intra-node data parallelism (morsel-driven thread sweep).
//!
//! Paper claim (§I/§III): the backend targets "massively parallel
//! execution of graph and tabular queries"; per-step candidate filtering
//! and the relational kernels are data-parallel. The engine's own morsel
//! scheduler (`ExecConfig::threads`, DESIGN.md §4.8) is swept directly —
//! results are byte-identical at every point, so the sweep measures pure
//! scheduling/scaling behaviour. Expected shape: runtime decreases with
//! threads on scan-heavy work, flattening once the scan is memory-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::{berlin, run_rows};
use std::hint::black_box;

/// Scan-heavy: selective per-step filters over every offer + a sort.
const QUERY: &str = "select id, price from table Offers where price > 100.0 \
                     order by price desc";
const GRAPH_QUERY: &str = "select O.id from graph \
    def O: OfferVtx(price > 5000.0) --product--> ProductVtx(propertyNumeric_1 > 1000)";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for threads in [1usize, 2, 4, 8] {
        if threads > available.max(2) {
            continue;
        }
        let mut db = berlin(2000);
        db.config_mut().threads = threads;
        group.bench_with_input(BenchmarkId::new("table_scan_sort", threads), &(), |b, _| {
            b.iter(|| black_box(run_rows(&mut db, QUERY)));
        });
        group.bench_with_input(
            BenchmarkId::new("graph_filtered_hop", threads),
            &(),
            |b, _| {
                b.iter(|| black_box(run_rows(&mut db, GRAPH_QUERY)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
