//! EXP-LABEL: `def` (set) vs `foreach` (element-wise) label cost on the
//! shared-feature cycle pattern.
//!
//! Paper claim (§II-B2): element-wise labels are strictly more
//! restrictive — "the subgraph patterns matched by [set labels] are a
//! superset of those matched by [element-wise labels]". The foreach
//! variant must therefore produce no more rows; its same-instance check
//! also prunes the search earlier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::{berlin, run_rows};
use std::hint::black_box;

const SET_LABEL: &str = "select z.id from graph \
    def w: ProductVtx() --feature--> FeatureVtx() <--feature-- def z: ProductVtx()";
const EACH_LABEL: &str = "select z.id from graph \
    foreach w: ProductVtx() --feature--> FeatureVtx() <--feature-- def z: w";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("label_semantics");
    group.sample_size(10);
    for products in [100usize, 300] {
        let mut db = berlin(products);
        // Superset property, asserted once per scale outside the timing.
        let set_rows = run_rows(&mut db, SET_LABEL);
        let each_rows = run_rows(&mut db, EACH_LABEL);
        assert!(each_rows <= set_rows, "foreach matches ⊆ set matches");
        group.bench_with_input(BenchmarkId::new("def_set", products), &(), |b, _| {
            b.iter(|| black_box(run_rows(&mut db, SET_LABEL)));
        });
        group.bench_with_input(BenchmarkId::new("foreach_each", products), &(), |b, _| {
            b.iter(|| black_box(run_rows(&mut db, EACH_LABEL)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
