//! EXP TAB1: the Table-1 relational operations over the Offers table.
//!
//! Paper claim validated (shape): tabular operations on the columnar
//! store are fast and scale linearly — the premise for storing all data
//! "in tabular form" and treating graphs as views.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::{berlin, run_rows};
use std::hint::black_box;

const OPS: &[(&str, &str)] = &[
    (
        "select_where",
        "select id, price from table Offers where price > 5000.0",
    ),
    (
        "order_by",
        "select id, price from table Offers order by price desc",
    ),
    (
        "group_by_aggregates",
        "select vendor, count(*) as n, avg(price) as mean, min(price) as lo, \
         max(price) as hi, sum(deliveryDays) as d from table Offers group by vendor",
    ),
    ("distinct", "select distinct vendor from table Offers"),
    (
        "top_n",
        "select top 10 id, price from table Offers order by price desc",
    ),
];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational_ops");
    group.sample_size(20);
    for products in [500usize, 2000] {
        let mut db = berlin(products);
        for (name, q) in OPS {
            group.bench_with_input(
                BenchmarkId::new(*name, products * 4), // offer rows
                q,
                |b, q| b.iter(|| black_box(run_rows(&mut db, q))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
