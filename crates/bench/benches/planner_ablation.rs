//! EXP-PLAN: bidirectional-index planning ablation.
//!
//! The query's *last* step is highly selective (one specific person), so a
//! lexical-forward execution enumerates the whole fan-out while the
//! reverse/auto plans start from the selective end. Paper claim (§III-B):
//! "the existence of both forward and reverse indices enables significant
//! flexibility … the execution is not restricted to the forward-looking
//! lexical representation of the path query."
//!
//! Expected shape: Auto ≈ ReverseOnly ≪ ForwardOnly on this query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graql_bench::{berlin, run_rows};
use graql_core::PlanMode;
use std::hint::black_box;

/// Broad head (all offers), selective tail (one person).
const QUERY: &str = "select O.id from graph \
    def O: OfferVtx() --product--> ProductVtx() <--reviewFor-- ReviewVtx() \
    --reviewer--> PersonVtx(id = 'person0')";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_ablation");
    group.sample_size(10);
    for products in [300usize, 1000] {
        for (name, mode) in [
            ("auto", PlanMode::Auto),
            ("forward_only", PlanMode::ForwardOnly),
            ("reverse_only", PlanMode::ReverseOnly),
        ] {
            let mut db = berlin(products);
            db.config_mut().plan_mode = mode;
            // Isolate the plan-order effect: without the semi-join
            // pre-pass, the enumeration order is the whole story.
            db.config_mut().culling = false;
            group.bench_with_input(BenchmarkId::new(name, products), &(), |b, _| {
                b.iter(|| black_box(run_rows(&mut db, QUERY)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
