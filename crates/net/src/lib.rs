//! # graql-net
//!
//! The wire between the paper's three pieces (§III): client, front-end
//! server, backend. The seed reproduction collapsed them into one process
//! ("No sockets" — DESIGN.md §2, now retired); this crate separates them
//! again with a real session-oriented remote protocol, the layer that
//! defines client/server graph databases in practice (MillenniumDB and the
//! GQL-family systems surveyed by Angles et al. all assume one).
//!
//! Three layers:
//!
//! * [`frame`] — length-prefixed binary frames over TCP: `u32` little-endian
//!   payload length, then the payload. Oversized and truncated frames are
//!   rejected without allocation of attacker-controlled size; read deadlines
//!   distinguish idle timeouts (clean) from mid-frame stalls (error).
//! * [`proto`] — the versioned message enum, each message prefixed with a
//!   u64-LE `request_id` so many requests can be in flight on one
//!   connection (id 0 is connection-scoped traffic). Queries ship as the
//!   existing binary IR (`graql_core::ir`); everything else —
//!   hello/welcome negotiation, static-check requests, catalog describe,
//!   streamed result batches, error frames carrying wire status bytes and
//!   stable `E`-codes — is one tagged message each.
//! * [`server`] / [`client`] — a [`server::NetServer`] running one reader
//!   thread per connection that demuxes tagged frames into a shared,
//!   bounded worker pool (round-robin across connections, fair-share
//!   admission), hosting concurrent [`graql_core::Session`]s over one
//!   shared [`graql_core::Server`]; and a [`client::RemoteSession`]
//!   implementing the same [`GemsSession`] trait as the in-process
//!   session — plus the pipelined `submit`/`poll`/`wait` API for
//!   multiplexed in-flight requests — so callers (the `gems-shell`
//!   binary) switch transports without code changes.
//!
//! Robustness is part of the subsystem: hard per-request deadlines
//! enforced through each request's [`graql_types::QueryGuard`],
//! admission control with bounded-wait load shedding, out-of-band
//! [`Msg::Cancel`] killing in-flight queries, read/write socket deadlines
//! on both ends, protocol-version negotiation with a clean typed error on
//! mismatch, graceful shutdown that drains in-flight requests, and
//! per-connection byte/message/latency/governance counters folded into
//! the aggregate statistics the `describe` service reports.

pub mod client;
pub mod frame;
pub mod proto;
pub mod replica;
pub mod server;

pub use client::{CancelHandle, ConnectOptions, RemoteSession, RetryPolicy};
pub use proto::{Msg, PROTO_VERSION};
pub use replica::{start_tailer, ReplicaTailer};
pub use server::{serve, NetServer, NetStats, ServeOptions};

use graql_types::{Diagnostics, Result};

/// The operations a GEMS client performs against a session, implemented by
/// both the in-process [`graql_core::Session`] and the remote
/// [`RemoteSession`] — the REPL/shell layer is written against this trait
/// and cannot tell the transports apart.
pub trait GemsSession {
    /// Parses and executes a script, returning one self-contained output
    /// per statement.
    fn execute_script(&mut self, text: &str) -> Result<Vec<graql_core::SessionOutput>>;
    /// Static analysis only: every diagnostic, nothing executed.
    fn check_script(&mut self, text: &str) -> Result<Diagnostics>;
    /// The catalog-describe service (object names and sizes).
    fn describe(&mut self) -> Result<String>;
    /// The authenticated user name.
    fn user(&self) -> &str;
    /// The session's access level.
    fn role(&self) -> graql_core::Role;
}

impl GemsSession for graql_core::Session {
    fn execute_script(&mut self, text: &str) -> Result<Vec<graql_core::SessionOutput>> {
        self.execute_script_sealed(text)
    }

    fn check_script(&mut self, text: &str) -> Result<Diagnostics> {
        Ok(graql_core::Session::check_script(self, text))
    }

    fn describe(&mut self) -> Result<String> {
        graql_core::Session::describe(self)
    }

    fn user(&self) -> &str {
        graql_core::Session::user(self)
    }

    fn role(&self) -> graql_core::Role {
        graql_core::Session::role(self)
    }
}
