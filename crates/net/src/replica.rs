//! The replica tailer: the client side of WAL-shipping replication.
//!
//! A replica is a normal durable [`graql_core::Server`] put into
//! [`graql_core::ReplRole::Replica`] plus one background thread — the
//! tailer — that maintains a subscription to the primary's commit stream
//! and feeds every shipped batch through
//! [`graql_core::Server::apply_replicated_records`] (the same replay path
//! crash recovery uses). Durability is local: a batch is acked only after
//! it is fsynced into the *replica's* log, so the applied-LSN watermark
//! survives a replica crash and the next subscription resumes at
//! `durable_lsn + 1` — exact, idempotent, no record applied twice or
//! skipped.
//!
//! Failure handling is the tailer's whole job:
//!
//! * **Connection loss** (primary crash, network fault, a
//!   `net/repl/{stream,apply,ack}` failpoint): bounded-backoff reconnect,
//!   resuming from the local durable watermark. Overlap the primary may
//!   re-send is discarded by LSN during apply.
//! * **Initial sync / falling behind a checkpoint**: the primary streams
//!   its latest snapshot in [`Msg::ReplSnapshot`] chunks; the tailer
//!   materializes the files, loads them through `graql_core::load_dir`
//!   (manifest checksums verified), and re-bases the local log at the
//!   snapshot watermark before applying batches.
//! * **Promotion**: the tailer notices the server is no longer a replica
//!   (admin `Promote`), says `Goodbye`, and exits — the node is fenced
//!   writable and stops consuming the old primary's stream.

use std::collections::BTreeMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use graql_core::Server;
use graql_types::{GraqlError, Result};

use crate::client::{sleep_backoff, RetryPolicy};
use crate::frame::{read_frame, write_frame, FrameRead, MAX_FRAME};
use crate::proto::{self, Msg, PROTO_VERSION};
use crate::server::NetStats;

/// How often the tailer wakes from a blocked read to poll its stop flag
/// and the server's role.
const POLL: Duration = Duration::from_millis(50);

/// Distinguishes the tailer's clean exits from faults that reconnect.
enum TailExit {
    /// Stop flag set or server promoted: do not reconnect.
    Done,
    /// Primary went away (clean close): reconnect and resume.
    Disconnected,
}

/// Handle to the background tailer thread of a replica.
#[derive(Debug)]
pub struct ReplicaTailer {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicaTailer {
    /// Signals the tailer to stop and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaTailer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts tailing `primary` into `server` (which must already be durable
/// and in replica role — see [`Server::set_replica_of`]). The thread runs
/// until [`ReplicaTailer::stop`], the process exits, or the server is
/// promoted. Reconnects forever with bounded backoff: a replica's purpose
/// is to outlive its primary's crashes.
pub fn start_tailer(
    server: Server,
    primary: String,
    retry: RetryPolicy,
    stats: Arc<NetStats>,
) -> ReplicaTailer {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("graql-repl-tail".to_string())
        .spawn(move || tail_loop(&server, &primary, &retry, &stats, &stop2))
        .expect("spawn replica tailer");
    ReplicaTailer {
        stop,
        handle: Some(handle),
    }
}

fn tail_loop(
    server: &Server,
    primary: &str,
    retry: &RetryPolicy,
    stats: &NetStats,
    stop: &AtomicBool,
) {
    let mut jitter = retry.jitter_seed;
    let mut attempt = 0u32;
    let mut streams = 0u64;
    while !stop.load(Ordering::SeqCst) && server.is_replica() {
        // Every established subscription after the first one is a
        // re-connection (counted when the handshake lands, not per
        // failed attempt — mirroring the client session's accounting).
        let mut on_connected = || {
            if streams > 0 {
                stats.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            streams += 1;
        };
        match tail_once(server, primary, stop, &mut on_connected) {
            Ok(TailExit::Done) => return,
            Ok(TailExit::Disconnected) => {
                attempt = 0; // had a live stream: reset the backoff ladder
                if stop.load(Ordering::SeqCst) || !server.is_replica() {
                    return;
                }
                eprintln!("gems-serve: replication stream to {primary} closed, reconnecting");
            }
            Err(e) => {
                if stop.load(Ordering::SeqCst) || !server.is_replica() {
                    return;
                }
                eprintln!("gems-serve: replication stream to {primary} failed ({e}), retrying");
            }
        }
        // Bounded backoff, capped exponent — the tailer retries forever,
        // waiting at most `max_backoff` between attempts.
        attempt = attempt.saturating_add(1).min(16);
        sleep_backoff(retry, attempt, &mut jitter);
    }
}

/// One subscription: connect, handshake, subscribe from the local durable
/// watermark, then apply the stream until it breaks or we are told to
/// stop.
fn tail_once(
    server: &Server,
    primary: &str,
    stop: &AtomicBool,
    on_connected: &mut dyn FnMut(),
) -> Result<TailExit> {
    let addr = primary
        .to_socket_addrs()
        .map_err(|e| GraqlError::net(format!("cannot resolve primary {primary}: {e}")))?
        .next()
        .ok_or_else(|| GraqlError::net(format!("primary {primary} resolves to no address")))?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))
        .map_err(|e| GraqlError::net_retryable(format!("cannot connect to primary: {e}")))?;
    stream
        .set_nodelay(true)
        .map_err(|e| GraqlError::net(format!("nodelay: {e}")))?;
    stream
        .set_read_timeout(Some(POLL))
        .map_err(|e| GraqlError::net(format!("read timeout: {e}")))?;
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| GraqlError::net(format!("write timeout: {e}")))?;

    // One subscription = one logical request: every frame the tailer
    // sends (and every stream frame the primary sends back) carries the
    // subscribe request's id. Acks reuse it; the primary ignores their
    // tag anyway.
    const SUB_ID: u64 = 1;
    let send = |msg: &Msg| -> Result<()> {
        let payload = proto::encode_tagged(SUB_ID, msg);
        let mut w = &stream;
        write_frame(&mut w, &payload, MAX_FRAME)
    };

    // Handshake as admin: the subscription is an administrative stream.
    send(&Msg::Hello {
        proto: PROTO_VERSION,
        user: "admin".to_string(),
    })?;
    match recv_blocking(&stream, stop)? {
        Recv::Msg(Msg::Welcome { proto, .. }) if proto == PROTO_VERSION => on_connected(),
        Recv::Msg(Msg::Welcome { proto, .. }) => {
            return Err(GraqlError::net(format!(
                "primary speaks protocol v{proto}, replica speaks v{PROTO_VERSION}"
            )))
        }
        Recv::Msg(Msg::Error {
            status, message, ..
        }) => return Err(GraqlError::from_wire_status(status, message)),
        Recv::Msg(other) => {
            return Err(GraqlError::net(format!("expected Welcome, got {other:?}")))
        }
        Recv::Stopped => return Ok(TailExit::Done),
        Recv::Closed => return Ok(TailExit::Disconnected),
    }
    send(&Msg::ReplSubscribe {
        from_lsn: server.wal_durable_lsn() + 1,
    })?;

    // Snapshot files under assembly during initial sync, keyed by name.
    let mut snapshot: BTreeMap<String, Vec<u8>> = BTreeMap::new();
    loop {
        if stop.load(Ordering::SeqCst) || !server.is_replica() {
            let _ = send(&Msg::Goodbye);
            return Ok(TailExit::Done);
        }
        let msg = match recv_blocking(&stream, stop)? {
            Recv::Msg(m) => m,
            Recv::Stopped => {
                let _ = send(&Msg::Goodbye);
                return Ok(TailExit::Done);
            }
            Recv::Closed => return Ok(TailExit::Disconnected),
        };
        match msg {
            Msg::ReplSnapshot {
                watermark,
                name,
                data,
                last,
            } => {
                if !name.is_empty() {
                    snapshot.entry(name).or_default().extend_from_slice(&data);
                }
                if last {
                    let files = std::mem::take(&mut snapshot);
                    install_snapshot(server, files, watermark)?;
                    send(&Msg::ReplAck {
                        lsn: watermark.saturating_sub(1),
                    })?;
                }
            }
            Msg::ReplBatch {
                first_lsn: _,
                last_lsn: _,
                frames,
            } => {
                // Fault site: the batch arrived but was not applied. On
                // reconnect the subscription resumes at the same durable
                // watermark and the primary re-sends it.
                graql_types::failpoint!("net/repl/apply", GraqlError::net);
                let records = graql_core::decode_frames(&frames)?;
                let durable = server.apply_replicated_records(&records)?;
                // Fault site: applied (locally durable) but the ack is
                // lost. On reconnect the primary resumes *after* this
                // batch — nothing is applied twice.
                graql_types::failpoint!("net/repl/ack", GraqlError::net);
                send(&Msg::ReplAck { lsn: durable })?;
            }
            Msg::ReplHeartbeat { durable_lsn } => {
                // Liveness + lag visibility; nothing to apply. Ack our
                // watermark so the primary's lag gauge stays current.
                let _ = durable_lsn;
                send(&Msg::ReplAck {
                    lsn: server.wal_durable_lsn(),
                })?;
            }
            Msg::Error {
                status, message, ..
            } => return Err(GraqlError::from_wire_status(status, message)),
            other => {
                return Err(GraqlError::net(format!(
                    "unexpected message {other:?} on the replication stream"
                )))
            }
        }
    }
}

/// What [`recv_blocking`] saw.
enum Recv {
    Msg(Msg),
    /// The stop flag was raised while waiting.
    Stopped,
    /// The primary closed the connection.
    Closed,
}

/// Blocks until one full message arrives, polling `stop` between frame
/// timeouts.
fn recv_blocking(stream: &TcpStream, stop: &AtomicBool) -> Result<Recv> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(Recv::Stopped);
        }
        let mut r = stream;
        match read_frame(&mut r, MAX_FRAME)? {
            FrameRead::Frame(p) => return proto::decode_tagged(&p).map(|(_, m)| Recv::Msg(m)),
            FrameRead::TimedOut => continue,
            FrameRead::Closed => return Ok(Recv::Closed),
        }
    }
}

/// Materializes received snapshot files into a scratch directory, loads
/// them through the checksummed persist path, and installs the result as
/// the replica's database re-based at `watermark`.
fn install_snapshot(
    server: &Server,
    files: BTreeMap<String, Vec<u8>>,
    watermark: u64,
) -> Result<()> {
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "graql-repl-snapshot.{}.{}",
        std::process::id(),
        SCRATCH.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)
        .map_err(|e| GraqlError::net(format!("snapshot scratch dir: {e}")))?;
    let result = (|| {
        for (name, data) in &files {
            // Snapshot directories are flat; reject anything that would
            // escape the scratch dir.
            if name.contains('/') || name.contains('\\') || name == ".." {
                return Err(GraqlError::net(format!(
                    "snapshot file name '{name}' is not a plain file name"
                )));
            }
            std::fs::write(dir.join(name), data)
                .map_err(|e| GraqlError::net(format!("snapshot write {name}: {e}")))?;
        }
        let db = graql_core::load_dir(&dir)?;
        server.install_snapshot(db, watermark)
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}
