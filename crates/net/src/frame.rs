//! Length-prefixed binary framing.
//!
//! One frame = `u32` little-endian payload length + payload bytes. The
//! length is validated against a hard cap *before* any allocation, so a
//! hostile peer cannot make the reader allocate attacker-controlled
//! amounts of memory. Socket read timeouts are folded into the protocol:
//! a timeout while waiting for a new frame header is a clean idle tick
//! (so servers can poll their shutdown flag), while a timeout in the
//! middle of a frame is a stalled peer and a hard error.

use std::io::{ErrorKind, Read, Write};

use graql_types::{GraqlError, Result};

/// Default hard cap on one frame's payload (32 MiB). Large result tables
/// are streamed in row batches well below this.
pub const MAX_FRAME: usize = 32 * 1024 * 1024;

/// Outcome of one framed read.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read deadline passed with no bytes of a new frame — the
    /// connection is idle, not broken.
    TimedOut,
    /// The peer closed the connection at a frame boundary.
    Closed,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// How a fixed-size read at a frame boundary ended.
enum Fill {
    Complete,
    /// Timeout with zero bytes read (only at a frame boundary).
    IdleTimeout,
    /// EOF with zero bytes read (only at a frame boundary).
    Eof,
}

/// Reads exactly `buf.len()` bytes. `start_of_frame` selects the
/// semantics of a zero-byte timeout/EOF: at a frame boundary they are
/// clean ([`Fill::IdleTimeout`] / [`Fill::Eof`]); once any byte has
/// arrived — or when reading a payload — they mean the peer stalled or
/// vanished mid-frame and become errors.
fn read_exact_frame(r: &mut impl Read, buf: &mut [u8], start_of_frame: bool) -> Result<Fill> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if start_of_frame && filled == 0 {
                    return Ok(Fill::Eof);
                }
                return Err(GraqlError::net_retryable("connection closed mid-frame"));
            }
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if start_of_frame && filled == 0 {
                    return Ok(Fill::IdleTimeout);
                }
                return Err(GraqlError::net_retryable(
                    "read deadline exceeded mid-frame",
                ));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(GraqlError::net_retryable(format!("read failed: {e}"))),
        }
    }
    Ok(Fill::Complete)
}

/// Reads one frame. A timeout before the first header byte yields
/// [`FrameRead::TimedOut`]; EOF at a frame boundary yields
/// [`FrameRead::Closed`]; oversized lengths and mid-frame stalls are
/// errors.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<FrameRead> {
    graql_types::failpoint!("net/frame/read-delay");
    graql_types::failpoint!("net/frame/read-err", GraqlError::net_retryable);
    let mut header = [0u8; 4];
    match read_exact_frame(r, &mut header, true)? {
        Fill::Complete => {}
        Fill::IdleTimeout => return Ok(FrameRead::TimedOut),
        Fill::Eof => return Ok(FrameRead::Closed),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_frame {
        return Err(GraqlError::net(format!(
            "frame of {len} bytes exceeds the {max_frame}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_frame(r, &mut payload, false)?;
    Ok(FrameRead::Frame(payload))
}

/// Writes one frame (length header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: usize) -> Result<()> {
    if payload.len() > max_frame {
        return Err(GraqlError::net(format!(
            "refusing to send a {}-byte frame (limit {max_frame})",
            payload.len()
        )));
    }
    graql_types::failpoint!("net/frame/write-delay");
    graql_types::failpoint!("net/frame/write-err", GraqlError::net_retryable);
    #[cfg(feature = "failpoints")]
    let corrupted: Vec<u8>;
    #[cfg(feature = "failpoints")]
    let payload: &[u8] = {
        use graql_types::failpoints::{self, Action};
        if failpoints::hit("net/frame/write-truncate").is_some() && !payload.is_empty() {
            // A mid-frame death: the header promises more bytes than ever
            // arrive, so the peer sees a hard "closed mid-frame" error —
            // never a silently short payload.
            let header = (payload.len() as u32).to_le_bytes();
            let _ = w
                .write_all(&header)
                .and_then(|()| w.write_all(&payload[..payload.len() / 2]))
                .and_then(|()| w.flush());
            return Err(GraqlError::net_retryable(
                "failpoint 'net/frame/write-truncate': frame truncated mid-write",
            ));
        }
        if matches!(
            failpoints::hit("net/frame/write-corrupt"),
            Some(Action::Corrupt)
        ) && !payload.is_empty()
        {
            // Flipping the first payload byte corrupts the message tag, so
            // the peer's decoder rejects the frame deterministically.
            let mut buf = payload.to_vec();
            buf[0] ^= 0xFF;
            corrupted = buf;
            &corrupted
        } else {
            payload
        }
    };
    let header = (payload.len() as u32).to_le_bytes();
    w.write_all(&header)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| {
            if is_timeout(&e) {
                GraqlError::net_retryable("write deadline exceeded")
            } else {
                GraqlError::net_retryable(format!("write failed: {e}"))
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", MAX_FRAME).unwrap();
        let mut r = Cursor::new(buf);
        let FrameRead::Frame(p) = read_frame(&mut r, MAX_FRAME).unwrap() else {
            panic!()
        };
        assert_eq!(p, b"hello");
        let FrameRead::Frame(p) = read_frame(&mut r, MAX_FRAME).unwrap() else {
            panic!()
        };
        assert!(p.is_empty());
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(b"short");
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        assert!(err.to_string().contains("mid-frame"), "{err}");
    }

    #[test]
    fn writer_refuses_oversized_frames() {
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &[0u8; 32], 16).is_err());
    }
}
