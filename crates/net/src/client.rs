//! The remote session client.
//!
//! [`RemoteSession`] speaks the frame + message protocol to a
//! [`crate::server::NetServer`] and implements [`crate::GemsSession`], so
//! the shell drives a networked server through exactly the code paths it
//! uses in-process. Scripts are parsed locally (errors surface with the
//! caret rendering users expect, without a round trip) and shipped as
//! binary IR — the paper's client→front-end format (§III).
//!
//! ## Pipelining (protocol v5)
//!
//! Every frame carries a request id, so one connection can have many
//! queries in flight: [`RemoteSession::submit`] sends a query and returns
//! immediately with its id, [`RemoteSession::wait`] (or the non-blocking
//! [`RemoteSession::poll`]) collects a reply, and the session demuxes
//! interleaved reply streams by id. The classic blocking
//! `execute_script` is submit-then-wait with a pipeline depth of one.
//!
//! Every wait is bounded: connect, reads and writes all carry deadlines,
//! and each in-flight request has its *own* deadline (anchored at
//! submit), so a server sitting on one reply cannot stall unrelated
//! requests — the others keep their budgets and fail individually. A
//! server that stops replying yields a typed
//! [`GraqlError::Net`](graql_types::GraqlError) — never a hang.
//!
//! ## Retry
//!
//! Transport faults (connection reset, truncated frame, timed-out read,
//! an overloaded server refusing the connection) surface as *retryable*
//! [`NetError`](graql_types::NetError)s. For **idempotent** requests —
//! ping, describe, check, and read-only submits — the blocking API
//! transparently reconnects and retries with exponential backoff plus
//! deterministic jitter, up to [`RetryPolicy::max_retries`] times.
//! Requests that mutate server state (DDL, ingest, `into` captures) are
//! never retried: a lost reply does not reveal whether the mutation
//! landed, so the typed error goes to the caller instead. A reconnect
//! fails every pipelined request that was in flight with a retryable
//! error — resubmitting is the caller's decision.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graql_core::{Role, SessionOutput};
use graql_parser::ast::{Script, Stmt};
use graql_types::{Diagnostics, GraqlError, Result};

use crate::frame::{read_frame, write_frame, FrameRead, MAX_FRAME};
use crate::proto::{self, diags_from_wire, Msg, TableAssembler, PROTO_VERSION};
use crate::server::NetStats;
use crate::GemsSession;

/// How many `NotPrimary` redirects one request will follow before giving
/// up (guards against promotion ping-pong).
const MAX_REDIRECTS: u32 = 3;

/// Granularity of the demux pump's socket reads: long waits are chopped
/// into slices of at most this, so per-request deadlines are enforced
/// promptly even while blocked on an unrelated reply.
const PUMP_SLICE: Duration = Duration::from_millis(50);

/// Bounded-retry tuning for idempotent requests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure. `0` disables retry.
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_backoff * 2^(n-1)`, capped at
    /// [`RetryPolicy::max_backoff`], scaled by jitter in `[0.5, 1.0)`.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0x6772_6171_6c21, // "graql!"
        }
    }
}

/// Client-side tuning.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// User to authenticate as.
    pub user: String,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-request deadline, anchored when the request is submitted: if
    /// its reply has not fully arrived by then, that request (and only
    /// that request) fails with a typed error.
    pub timeout: Duration,
    /// Hard cap on one frame's payload, both directions.
    pub max_frame: usize,
    /// Retry behaviour for idempotent requests.
    pub retry: RetryPolicy,
    /// When set, retry/reconnect/failover counts also land in this shared
    /// registry (so e.g. a replica's tailer reports into the replica's
    /// own metrics endpoint). The session always keeps local counts too.
    pub stats: Option<Arc<NetStats>>,
}

impl ConnectOptions {
    pub fn new(user: impl Into<String>) -> Self {
        ConnectOptions {
            user: user.into(),
            connect_timeout: Duration::from_secs(10),
            timeout: Duration::from_secs(60),
            max_frame: MAX_FRAME,
            retry: RetryPolicy::default(),
            stats: None,
        }
    }

    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the number of retries for idempotent requests (0 disables).
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.retry.max_retries = max_retries;
        self
    }

    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.retry.base_backoff = base;
        self.retry.max_backoff = cap;
        self
    }

    /// Replaces the whole retry policy (the `gems-shell
    /// --retries/--backoff-ms` flags build one of these).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Mirrors resilience counters into a shared [`NetStats`].
    pub fn with_stats(mut self, stats: Arc<NetStats>) -> Self {
        self.stats = Some(stats);
        self
    }
}

/// Demux state of one in-flight request: the outputs assembled so far
/// and the request's own deadline.
#[derive(Debug)]
struct InFlight {
    outputs: Vec<SessionOutput>,
    table: Option<TableAssembler>,
    deadline: Instant,
}

/// A session against a remote GEMS server.
#[derive(Debug)]
pub struct RemoteSession {
    stream: TcpStream,
    user: String,
    role: Role,
    server_banner: String,
    max_frame: usize,
    /// Resolved server addresses, tried in order — the failover list. A
    /// `NotPrimary` redirect moves the primary's address to the front.
    addrs: Vec<SocketAddr>,
    /// The endpoint the current socket is connected to (failover
    /// detection compares reconnects against it).
    current: SocketAddr,
    opts: ConnectOptions,
    /// Set when a transport error left the connection unusable; the next
    /// request reconnects first.
    broken: bool,
    /// Jitter RNG state (SplitMix64).
    jitter: u64,
    /// How many reconnect-and-retry cycles this session has performed.
    retries: u64,
    /// How many times the session re-established its connection.
    reconnects: u64,
    /// How many reconnects landed on a different endpoint (read failover
    /// or write redirect).
    failovers: u64,
    /// Request id allocator. Ids are connection-scoped and never 0 (the
    /// wire reserves 0 for cancel-all / unsolicited errors).
    next_id: u64,
    /// Requests submitted but not yet fully replied, keyed by id.
    inflight: HashMap<u64, InFlight>,
    /// Finished requests not yet collected by `wait`/`poll`.
    completed: HashMap<u64, Result<Vec<SessionOutput>>>,
    /// Control round trips awaiting their reply (see `rpc`).
    awaiting_control: std::collections::HashSet<u64>,
    /// Control replies (pong, reports, ...) routed by id.
    control: HashMap<u64, Msg>,
}

/// Connects to the first reachable of `addrs`. Failures are retryable:
/// the server may be restarting or shedding load.
fn open_socket(addrs: &[SocketAddr], connect_timeout: Duration) -> Result<(TcpStream, SocketAddr)> {
    let mut last_err: Option<std::io::Error> = None;
    for candidate in addrs {
        match TcpStream::connect_timeout(candidate, connect_timeout) {
            Ok(s) => return Ok((s, *candidate)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(GraqlError::net_retryable(match last_err {
        Some(e) => format!("cannot connect: {e}"),
        None => "server address resolves to nothing".to_string(),
    }))
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sleeps `base * 2^(attempt-1)` capped at `max_backoff`, scaled by a
/// deterministic jitter factor in `[0.5, 1.0)`.
pub(crate) fn sleep_backoff(policy: &RetryPolicy, attempt: u32, jitter: &mut u64) {
    let exp = policy
        .base_backoff
        .saturating_mul(1u32 << (attempt - 1).min(16));
    let capped = exp.min(policy.max_backoff);
    let factor = 0.5 + (splitmix64(jitter) >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
    std::thread::sleep(capped.mul_f64(factor));
}

/// Cancels this session's in-flight requests from another thread (e.g. a
/// Ctrl-C handler): writes an out-of-band [`Msg::Cancel`] frame tagged
/// with id 0 — cancel-everything — on a clone of the session's socket.
/// The server trips each request's guard and the queries abort at their
/// next cooperative checkpoint; the session then receives typed
/// `Cancelled` errors as the replies and stays usable.
///
/// The handle is bound to the socket it was cloned from: after the
/// session reconnects (retry), take a fresh handle.
#[derive(Debug)]
pub struct CancelHandle {
    stream: TcpStream,
    max_frame: usize,
}

impl CancelHandle {
    /// Requests cancellation of everything executing on the session's
    /// connection. Best-effort and idempotent; errors only if the frame
    /// could not be written.
    pub fn cancel(&self) -> Result<()> {
        let payload = proto::encode_tagged(0, &Msg::Cancel);
        let mut w = &self.stream;
        write_frame(&mut w, &payload, self.max_frame)
    }

    /// Requests cancellation of one specific in-flight request.
    pub fn cancel_request(&self, request_id: u64) -> Result<()> {
        let payload = proto::encode_tagged(request_id, &Msg::Cancel);
        let mut w = &self.stream;
        write_frame(&mut w, &payload, self.max_frame)
    }
}

impl RemoteSession {
    /// A [`CancelHandle`] for the current connection, for cancelling
    /// in-flight requests from another thread.
    pub fn cancel_handle(&self) -> Result<CancelHandle> {
        Ok(CancelHandle {
            stream: self
                .stream
                .try_clone()
                .map_err(|e| GraqlError::net(format!("cannot clone socket: {e}")))?,
            max_frame: self.max_frame,
        })
    }
}

impl RemoteSession {
    /// Connects, negotiates the protocol version and authenticates.
    /// Transient connect failures (refused, overloaded server) retry per
    /// the options' [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs, opts: ConnectOptions) -> Result<RemoteSession> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| GraqlError::net(format!("cannot resolve server address: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(GraqlError::net("server address resolves to nothing"));
        }
        let mut jitter = opts.retry.jitter_seed;
        let mut attempt = 0u32;
        let (stream, current) = loop {
            match open_socket(&addrs, opts.connect_timeout) {
                Ok(s) => break s,
                Err(e) if e.is_retryable() && attempt < opts.retry.max_retries => {
                    attempt += 1;
                    sleep_backoff(&opts.retry, attempt, &mut jitter);
                }
                Err(e) => return Err(e),
            }
        };
        let mut session = RemoteSession {
            stream,
            user: opts.user.clone(),
            role: Role::Analyst,
            server_banner: String::new(),
            max_frame: opts.max_frame,
            addrs,
            current,
            jitter,
            opts,
            broken: true,
            retries: 0,
            reconnects: 0,
            failovers: 0,
            next_id: 0,
            inflight: HashMap::new(),
            completed: HashMap::new(),
            awaiting_control: std::collections::HashSet::new(),
            control: HashMap::new(),
        };
        loop {
            match session.handshake() {
                Ok(()) => return Ok(session),
                Err(e) if e.is_retryable() && attempt < session.opts.retry.max_retries => {
                    attempt += 1;
                    session.backoff(attempt);
                    // A fresh socket for the next attempt; ignore failures
                    // here, the next handshake reports them.
                    let _ = session.reconnect_socket();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The banner the server sent in `Welcome`.
    pub fn server_banner(&self) -> &str {
        &self.server_banner
    }

    /// How many reconnect-and-retry cycles this session has performed.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// How many times the session re-established its connection.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// How many reconnects switched endpoints (failover or redirect).
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The endpoint the session is currently connected to.
    pub fn connected_addr(&self) -> SocketAddr {
        self.current
    }

    /// Round-trips a `Ping` (liveness / latency probe).
    pub fn ping(&mut self) -> Result<()> {
        self.request(true, |s| match s.rpc(&Msg::Ping)? {
            Msg::Pong => Ok(()),
            other => Err(GraqlError::net(format!("expected Pong, got {other:?}"))),
        })
    }

    /// Promotes the connected server to primary (admin only). Idempotent:
    /// promoting a server that is already primary is a no-op, so a lost
    /// reply is safely retried.
    pub fn promote(&mut self) -> Result<()> {
        self.request(true, |s| match s.rpc(&Msg::Promote)? {
            Msg::Done { .. } => Ok(()),
            Msg::Error {
                status, message, ..
            } => Err(GraqlError::from_wire_status(status, message)),
            other => Err(GraqlError::net(format!(
                "expected Done after Promote, got {other:?}"
            ))),
        })
    }

    /// Fetches the server's metrics in Prometheus exposition text — the
    /// same body the `--metrics-addr` HTTP endpoint serves. Idempotent.
    pub fn metrics(&mut self) -> Result<String> {
        self.request(true, |s| match s.rpc(&Msg::Metrics)? {
            Msg::MetricsReport { text } => Ok(text),
            Msg::Error {
                status, message, ..
            } => Err(GraqlError::from_wire_status(status, message)),
            other => Err(GraqlError::net(format!(
                "expected MetricsReport, got {other:?}"
            ))),
        })
    }

    // -- the pipelined API ---------------------------------------------------

    /// Submits a script without waiting for its reply, returning the
    /// request id to [`RemoteSession::wait`]/[`RemoteSession::poll`] on.
    /// Any number of requests may be in flight at once; the server
    /// interleaves and the session demuxes by id. `submit` itself never
    /// retries — with a pipeline in flight, only the caller knows which
    /// requests are safe to resubmit.
    pub fn submit(&mut self, text: &str) -> Result<u64> {
        let script = graql_parser::parse(text)?;
        let ir = graql_core::ir::encode(&script);
        self.submit_ir(&ir)
    }

    /// [`RemoteSession::submit`] for pre-compiled IR.
    pub fn submit_ir(&mut self, ir: &[u8]) -> Result<u64> {
        if self.broken {
            self.reconnect()?;
        }
        let id = self.fresh_id();
        // Register before sending: a reply cannot arrive before the
        // request is written, but an error path mustn't leak the entry.
        self.inflight.insert(
            id,
            InFlight {
                outputs: Vec::new(),
                table: None,
                deadline: Instant::now() + self.opts.timeout,
            },
        );
        if let Err(e) = self.send_tagged(id, &Msg::Submit { ir: ir.to_vec() }) {
            self.inflight.remove(&id);
            self.broken = true;
            self.fail_all_inflight("connection lost while submitting");
            return Err(e);
        }
        Ok(id)
    }

    /// Number of submitted requests whose replies have not been collected.
    pub fn pending(&self) -> usize {
        self.inflight.len() + self.completed.len()
    }

    /// Non-blocking check on one request: drains whatever reply frames
    /// have arrived and returns the outputs if request `id` is complete,
    /// `None` if it is still in flight.
    pub fn poll(&mut self, id: u64) -> Result<Option<Vec<SessionOutput>>> {
        if !self.completed.contains_key(&id) && self.inflight.contains_key(&id) {
            // A transport fault fails the pipeline into `completed`;
            // fall through and hand back this request's entry.
            let _ = self.pump(Duration::ZERO);
            self.expire_deadlines();
        }
        match self.completed.remove(&id) {
            Some(result) => result.map(Some),
            None if self.inflight.contains_key(&id) => Ok(None),
            None => Err(GraqlError::net(format!("unknown request id {id}"))),
        }
    }

    /// Blocks until request `id` completes (reply fully received, its
    /// deadline expired, or the connection died) and returns its outputs.
    pub fn wait(&mut self, id: u64) -> Result<Vec<SessionOutput>> {
        loop {
            if let Some(result) = self.completed.remove(&id) {
                return result;
            }
            if !self.inflight.contains_key(&id) {
                return Err(GraqlError::net(format!("unknown request id {id}")));
            }
            self.expire_deadlines();
            if self.completed.contains_key(&id) {
                continue;
            }
            // Read with a slice bounded by the *soonest* in-flight
            // deadline, not this request's: one slow reply must not
            // stall the deadline enforcement of the others.
            let now = Instant::now();
            let soonest = self
                .inflight
                .values()
                .map(|e| e.deadline)
                .min()
                .unwrap_or(now);
            let slice = soonest.saturating_duration_since(now).min(PUMP_SLICE);
            if let Err(e) = self.pump(slice) {
                // A transport fault failed the whole pipeline into
                // `completed`; return this request's entry so it is
                // consumed (the error is the same retryable one).
                return self.completed.remove(&id).unwrap_or(Err(e));
            }
        }
    }

    /// Cancels one in-flight request (best-effort, out of band). The
    /// request still completes — typically with a typed `Cancelled`
    /// error — and must still be collected.
    pub fn cancel_request(&mut self, id: u64) -> Result<()> {
        self.send_tagged(id, &Msg::Cancel)
    }

    /// Allocates the next request id (connection-scoped, never 0).
    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Fails every in-flight request with a retryable transport error
    /// (called when the connection is known dead — the pipeline cannot
    /// be salvaged, individual resubmission is the caller's decision).
    fn fail_all_inflight(&mut self, why: &str) {
        for (id, _) in std::mem::take(&mut self.inflight) {
            self.completed
                .insert(id, Err(GraqlError::net_retryable(why.to_string())));
        }
    }

    /// Completes every request whose own deadline has passed with a
    /// typed error. Unrelated requests are untouched. The request is
    /// *abandoned*, not cancelled: the server may still complete it
    /// (the reply frames are dropped as strays), so a lost reply to a
    /// write means "unknown whether it landed" — exactly the contract
    /// the no-retry-on-mutation rule is built on. Callers who want the
    /// server to stop spending use [`RemoteSession::cancel_request`].
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .inflight
            .iter()
            .filter(|(_, e)| now >= e.deadline)
            .map(|(id, _)| *id)
            .collect();
        for id in expired {
            self.inflight.remove(&id);
            self.completed.insert(
                id,
                Err(GraqlError::net_retryable(
                    "server did not reply within the deadline",
                )),
            );
        }
    }

    /// Reads at most one frame (waiting up to `wait`) and routes it to
    /// its in-flight request. Transport faults fail the whole pipeline.
    fn pump(&mut self, wait: Duration) -> Result<()> {
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))
            .map_err(|e| GraqlError::net(format!("read timeout: {e}")))?;
        match read_frame(&mut self.stream, self.max_frame) {
            Ok(FrameRead::Frame(p)) => {
                let (id, msg) = proto::decode_tagged(&p)?;
                self.route(id, msg);
                Ok(())
            }
            Ok(FrameRead::TimedOut) => Ok(()),
            Ok(FrameRead::Closed) => {
                self.broken = true;
                self.fail_all_inflight("server closed the connection");
                Err(GraqlError::net_retryable("server closed the connection"))
            }
            Err(e) => {
                self.broken = true;
                self.fail_all_inflight("connection failed mid-reply");
                Err(e)
            }
        }
    }

    /// Feeds one routed message into its request's assembly state.
    /// Frames for unknown ids (replies to requests we already expired)
    /// are dropped — except id-0 errors, which the server uses for
    /// unsolicited connection-level failures (idle hangup, overload
    /// refusal) and which poison the connection for the next request.
    fn route(&mut self, id: u64, msg: Msg) {
        if self.awaiting_control.remove(&id) {
            self.control.insert(id, msg);
            return;
        }
        let Some(entry) = self.inflight.get_mut(&id) else {
            if id == 0 {
                if let Msg::Error { .. } = &msg {
                    self.broken = true;
                }
            }
            return;
        };
        let finish: Option<Result<Vec<SessionOutput>>> = match msg {
            Msg::Created { name } => {
                entry.outputs.push(SessionOutput::Created(name));
                None
            }
            Msg::Ingested { table, rows } => {
                entry.outputs.push(SessionOutput::Ingested { table, rows });
                None
            }
            Msg::TableHeader { cols } => {
                if entry.table.is_some() {
                    Some(Err(GraqlError::net("nested table stream")))
                } else {
                    match TableAssembler::new(&cols) {
                        Ok(t) => {
                            entry.table = Some(t);
                            None
                        }
                        Err(e) => Some(Err(e)),
                    }
                }
            }
            Msg::TableRows { rows } => match entry.table.as_mut() {
                Some(t) => match t.push_rows(&rows) {
                    Ok(()) => None,
                    Err(e) => Some(Err(e)),
                },
                None => Some(Err(GraqlError::net("rows outside a table stream"))),
            },
            Msg::TableEnd => match entry.table.take() {
                Some(t) => {
                    entry.outputs.push(SessionOutput::Table(t.finish()));
                    None
                }
                None => Some(Err(GraqlError::net("TableEnd outside a table stream"))),
            },
            Msg::Subgraph {
                n_vertices,
                n_edges,
                summary,
            } => {
                entry.outputs.push(SessionOutput::Subgraph {
                    n_vertices,
                    n_edges,
                    summary,
                });
                None
            }
            Msg::Pipelined => {
                entry.outputs.push(SessionOutput::Pipelined);
                None
            }
            Msg::ProfileReport { text, json } => {
                entry.outputs.push(SessionOutput::Profile { text, json });
                None
            }
            Msg::Done { .. } => Some(Ok(std::mem::take(&mut entry.outputs))),
            Msg::Error {
                status, message, ..
            } => Some(Err(GraqlError::from_wire_status(status, message))),
            other => Some(Err(GraqlError::net(format!(
                "unexpected message in result stream: {other:?}"
            )))),
        };
        if let Some(result) = finish {
            self.inflight.remove(&id);
            self.completed.insert(id, result);
        }
    }

    /// One tagged control round trip (ping, describe, metrics, ...):
    /// sends the request and pumps until its reply routes back, while
    /// unrelated pipelined replies keep demuxing normally.
    fn rpc(&mut self, msg: &Msg) -> Result<Msg> {
        let id = self.fresh_id();
        if let Err(e) = self.send_tagged(id, msg) {
            self.broken = true;
            return Err(e);
        }
        self.awaiting_control.insert(id);
        let deadline = Instant::now() + self.opts.timeout;
        loop {
            if let Some(reply) = self.control.remove(&id) {
                return Ok(reply);
            }
            let now = Instant::now();
            if now >= deadline {
                self.awaiting_control.remove(&id);
                self.broken = true;
                return Err(GraqlError::net_retryable(
                    "server did not reply within the deadline",
                ));
            }
            self.expire_deadlines();
            let slice = (deadline - now).min(PUMP_SLICE);
            if let Err(e) = self.pump(slice) {
                self.awaiting_control.remove(&id);
                return Err(e);
            }
        }
    }

    /// Opens a fresh socket to the first reachable address, counting the
    /// reconnect (and the failover, when it lands elsewhere).
    fn reconnect_socket(&mut self) -> Result<()> {
        let (stream, addr) = open_socket(&self.addrs, self.opts.connect_timeout)?;
        self.stream = stream;
        self.reconnects += 1;
        let failed_over = addr != self.current;
        if failed_over {
            self.failovers += 1;
        }
        self.current = addr;
        if let Some(stats) = &self.opts.stats {
            stats.reconnects.fetch_add(1, Ordering::Relaxed);
            if failed_over {
                stats.failovers.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Re-points the failover list at `primary` (a `NotPrimary` redirect
    /// target): its addresses move to the front, the broken connection is
    /// abandoned, and the next request reconnects there.
    fn redirect_to(&mut self, primary: &str) -> Result<()> {
        let fresh: Vec<SocketAddr> = primary
            .to_socket_addrs()
            .map_err(|e| GraqlError::net(format!("cannot resolve redirect target {primary}: {e}")))?
            .collect();
        if fresh.is_empty() {
            return Err(GraqlError::net(format!(
                "redirect target {primary} resolves to nothing"
            )));
        }
        self.addrs.retain(|a| !fresh.contains(a));
        for (i, a) in fresh.into_iter().enumerate() {
            self.addrs.insert(i, a);
        }
        self.broken = true;
        Ok(())
    }

    /// Configures the socket and performs Hello/Welcome on it. The
    /// pipeline is empty here (a reconnect already failed it), so the
    /// reply is read directly.
    fn handshake(&mut self) -> Result<()> {
        self.stream
            .set_nodelay(true)
            .map_err(|e| GraqlError::net(format!("nodelay: {e}")))?;
        self.stream
            .set_read_timeout(Some(self.opts.timeout))
            .map_err(|e| GraqlError::net(format!("read timeout: {e}")))?;
        self.stream
            .set_write_timeout(Some(self.opts.timeout))
            .map_err(|e| GraqlError::net(format!("write timeout: {e}")))?;
        let id = self.fresh_id();
        self.send_tagged(
            id,
            &Msg::Hello {
                proto: PROTO_VERSION,
                user: self.user.clone(),
            },
        )?;
        match self.recv_direct()? {
            Msg::Welcome {
                proto,
                role,
                server,
            } => {
                if proto != PROTO_VERSION {
                    return Err(GraqlError::net(format!(
                        "server negotiated unsupported protocol v{proto} (client speaks v{PROTO_VERSION})"
                    )));
                }
                self.role = proto::role_from_tag(role)?;
                self.server_banner = server;
                self.broken = false;
                Ok(())
            }
            Msg::Error {
                status, message, ..
            } => Err(GraqlError::from_wire_status(status, message)),
            other => Err(GraqlError::net(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// Tears down the broken connection and establishes a new one. The
    /// old pipeline dies with the old socket: every in-flight request is
    /// failed retryable (their ids are meaningless to the new server).
    fn reconnect(&mut self) -> Result<()> {
        self.fail_all_inflight("connection re-established, request lost in flight");
        self.awaiting_control.clear();
        self.control.clear();
        self.reconnect_socket()?;
        self.handshake()
    }

    fn backoff(&mut self, attempt: u32) {
        sleep_backoff(&self.opts.retry, attempt, &mut self.jitter);
    }

    /// Runs one request. On a retryable transport fault the connection is
    /// marked broken; idempotent requests then reconnect and retry with
    /// backoff, bounded by the [`RetryPolicy`]. Server-reported errors
    /// (non-retryable statuses) are always final.
    fn request<T>(
        &mut self,
        idempotent: bool,
        f: impl Fn(&mut RemoteSession) -> Result<T>,
    ) -> Result<T> {
        let mut attempt = 0u32;
        loop {
            let result = if self.broken {
                self.reconnect().and_then(|()| f(self))
            } else {
                f(self)
            };
            match result {
                Err(e) if e.is_retryable() => {
                    // The connection state is unknown after a transport
                    // fault: heal it before whatever comes next.
                    self.broken = true;
                    if !idempotent || attempt >= self.opts.retry.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries += 1;
                    if let Some(stats) = &self.opts.stats {
                        stats.retries.fetch_add(1, Ordering::Relaxed);
                    }
                    self.backoff(attempt);
                }
                other => return other,
            }
        }
    }

    fn send_tagged(&mut self, request_id: u64, msg: &Msg) -> Result<()> {
        graql_types::failpoint!("net/client/send-delay");
        let payload = proto::encode_tagged(request_id, msg);
        write_frame(&mut self.stream, &payload, self.max_frame)
    }

    /// Receives one message ignoring its tag — handshake only, where the
    /// pipeline is empty and exactly one reply is owed.
    fn recv_direct(&mut self) -> Result<Msg> {
        match read_frame(&mut self.stream, self.max_frame)? {
            FrameRead::Frame(p) => proto::decode_tagged(&p).map(|(_, m)| m),
            FrameRead::TimedOut => Err(GraqlError::net_retryable(
                "server did not reply within the deadline",
            )),
            FrameRead::Closed => Err(GraqlError::net_retryable("server closed the connection")),
        }
    }
}

/// True when re-running the script cannot change server state: every
/// statement is a `select` without an `into` capture, or a `profile` —
/// the same class the server executes under its shared read lock.
fn is_read_only(script: &Script) -> bool {
    script.statements.iter().all(|s| {
        matches!(s, Stmt::Select(sel) if sel.into.is_none()) || matches!(s, Stmt::Profile(_))
    })
}

impl GemsSession for RemoteSession {
    fn execute_script(&mut self, text: &str) -> Result<Vec<SessionOutput>> {
        // Parse locally: syntax errors render against the local source
        // with spans, and the wire carries compact IR, not text.
        let script = graql_parser::parse(text)?;
        let ir = graql_core::ir::encode(&script);
        let idempotent = is_read_only(&script);
        let mut redirects = 0u32;
        loop {
            // The blocking API is the pipelined one at depth 1:
            // submit-then-wait, inside the retry wrapper.
            let result = self.request(idempotent, |s| {
                let id = s.submit_ir(&ir)?;
                s.wait(id)
            });
            // `NotPrimary` means the statement did NOT execute (the
            // replica fences before touching state), so following the
            // redirect and re-submitting is always safe — even for
            // non-idempotent writes.
            match result {
                Err(e) if redirects < MAX_REDIRECTS && e.redirect_to().is_some() => {
                    let primary = e.redirect_to().expect("checked").to_string();
                    redirects += 1;
                    self.redirect_to(&primary)?;
                }
                other => return other,
            }
        }
    }

    fn check_script(&mut self, text: &str) -> Result<Diagnostics> {
        self.request(true, |s| {
            match s.rpc(&Msg::Check {
                text: text.to_string(),
            })? {
                Msg::CheckReport { diags } => Ok(diags_from_wire(&diags)),
                Msg::Error {
                    status, message, ..
                } => Err(GraqlError::from_wire_status(status, message)),
                other => Err(GraqlError::net(format!(
                    "expected CheckReport, got {other:?}"
                ))),
            }
        })
    }

    fn describe(&mut self) -> Result<String> {
        self.request(true, |s| match s.rpc(&Msg::Describe)? {
            Msg::DescribeReport { text } => Ok(text),
            Msg::Error {
                status, message, ..
            } => Err(GraqlError::from_wire_status(status, message)),
            other => Err(GraqlError::net(format!(
                "expected DescribeReport, got {other:?}"
            ))),
        })
    }

    fn user(&self) -> &str {
        &self.user
    }

    fn role(&self) -> Role {
        self.role
    }
}

impl Drop for RemoteSession {
    fn drop(&mut self) {
        if !self.broken {
            let _ = self.send_tagged(0, &Msg::Goodbye);
        }
    }
}
