//! The remote session client.
//!
//! [`RemoteSession`] speaks the frame + message protocol to a
//! [`crate::server::NetServer`] and implements [`crate::GemsSession`], so
//! the shell drives a networked server through exactly the code paths it
//! uses in-process. Scripts are parsed locally (errors surface with the
//! caret rendering users expect, without a round trip) and shipped as
//! binary IR — the paper's client→front-end format (§III).
//!
//! Every wait is bounded: connect, reads and writes all carry deadlines,
//! and a server that stops replying yields a typed
//! [`GraqlError::Net`](graql_types::GraqlError) — never a hang.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use graql_core::{Role, SessionOutput};
use graql_types::{Diagnostics, GraqlError, Result};

use crate::frame::{read_frame, write_frame, FrameRead, MAX_FRAME};
use crate::proto::{self, diags_from_wire, Msg, TableAssembler, PROTO_VERSION};
use crate::GemsSession;

/// Client-side tuning.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// User to authenticate as.
    pub user: String,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// Per-reply deadline: if the server sends nothing for this long
    /// while a reply is owed, the request fails with a typed error.
    pub timeout: Duration,
    /// Hard cap on one frame's payload, both directions.
    pub max_frame: usize,
}

impl ConnectOptions {
    pub fn new(user: impl Into<String>) -> Self {
        ConnectOptions {
            user: user.into(),
            connect_timeout: Duration::from_secs(10),
            timeout: Duration::from_secs(60),
            max_frame: MAX_FRAME,
        }
    }

    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

/// A session against a remote GEMS server.
#[derive(Debug)]
pub struct RemoteSession {
    stream: TcpStream,
    user: String,
    role: Role,
    server_banner: String,
    max_frame: usize,
}

impl RemoteSession {
    /// Connects, negotiates the protocol version and authenticates.
    pub fn connect(addr: impl ToSocketAddrs, opts: ConnectOptions) -> Result<RemoteSession> {
        let mut last_err: Option<std::io::Error> = None;
        let mut stream = None;
        for candidate in addr
            .to_socket_addrs()
            .map_err(|e| GraqlError::net(format!("cannot resolve server address: {e}")))?
        {
            match TcpStream::connect_timeout(&candidate, opts.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = stream.ok_or_else(|| {
            GraqlError::net(match last_err {
                Some(e) => format!("cannot connect: {e}"),
                None => "server address resolves to nothing".to_string(),
            })
        })?;
        stream
            .set_nodelay(true)
            .map_err(|e| GraqlError::net(format!("nodelay: {e}")))?;
        stream
            .set_read_timeout(Some(opts.timeout))
            .map_err(|e| GraqlError::net(format!("read timeout: {e}")))?;
        stream
            .set_write_timeout(Some(opts.timeout))
            .map_err(|e| GraqlError::net(format!("write timeout: {e}")))?;

        let mut session = RemoteSession {
            stream,
            user: opts.user.clone(),
            role: Role::Analyst,
            server_banner: String::new(),
            max_frame: opts.max_frame,
        };
        session.send(&Msg::Hello {
            proto: PROTO_VERSION,
            user: opts.user,
        })?;
        match session.recv()? {
            Msg::Welcome {
                proto,
                role,
                server,
            } => {
                if proto != PROTO_VERSION {
                    return Err(GraqlError::net(format!(
                        "server negotiated unsupported protocol v{proto} (client speaks v{PROTO_VERSION})"
                    )));
                }
                session.role = proto::role_from_tag(role)?;
                session.server_banner = server;
                Ok(session)
            }
            Msg::Error {
                status, message, ..
            } => Err(GraqlError::from_wire_status(status, message)),
            other => Err(GraqlError::net(format!("expected Welcome, got {other:?}"))),
        }
    }

    /// The banner the server sent in `Welcome`.
    pub fn server_banner(&self) -> &str {
        &self.server_banner
    }

    /// Round-trips a `Ping` (liveness / latency probe).
    pub fn ping(&mut self) -> Result<()> {
        self.send(&Msg::Ping)?;
        match self.recv()? {
            Msg::Pong => Ok(()),
            other => Err(GraqlError::net(format!("expected Pong, got {other:?}"))),
        }
    }

    fn send(&mut self, msg: &Msg) -> Result<()> {
        let payload = proto::encode(msg);
        write_frame(&mut self.stream, &payload, self.max_frame)
    }

    /// Receives one message, turning idle timeouts and mid-reply closes
    /// into typed errors (the client is always owed a reply here).
    fn recv(&mut self) -> Result<Msg> {
        match read_frame(&mut self.stream, self.max_frame)? {
            FrameRead::Frame(p) => proto::decode(&p),
            FrameRead::TimedOut => Err(GraqlError::net("server did not reply within the deadline")),
            FrameRead::Closed => Err(GraqlError::net("server closed the connection")),
        }
    }

    /// Collects a `Submit` reply stream into statement outputs.
    fn collect_outputs(&mut self) -> Result<Vec<SessionOutput>> {
        let mut outputs = Vec::new();
        let mut table: Option<TableAssembler> = None;
        loop {
            match self.recv()? {
                Msg::Created { name } => outputs.push(SessionOutput::Created(name)),
                Msg::Ingested { table, rows } => {
                    outputs.push(SessionOutput::Ingested { table, rows })
                }
                Msg::TableHeader { cols } => {
                    if table.is_some() {
                        return Err(GraqlError::net("nested table stream"));
                    }
                    table = Some(TableAssembler::new(&cols)?);
                }
                Msg::TableRows { rows } => match table.as_mut() {
                    Some(t) => t.push_rows(&rows)?,
                    None => return Err(GraqlError::net("rows outside a table stream")),
                },
                Msg::TableEnd => match table.take() {
                    Some(t) => outputs.push(SessionOutput::Table(t.finish())),
                    None => return Err(GraqlError::net("TableEnd outside a table stream")),
                },
                Msg::Subgraph {
                    n_vertices,
                    n_edges,
                    summary,
                } => outputs.push(SessionOutput::Subgraph {
                    n_vertices,
                    n_edges,
                    summary,
                }),
                Msg::Pipelined => outputs.push(SessionOutput::Pipelined),
                Msg::Done { .. } => return Ok(outputs),
                Msg::Error {
                    status, message, ..
                } => return Err(GraqlError::from_wire_status(status, message)),
                other => {
                    return Err(GraqlError::net(format!(
                        "unexpected message in result stream: {other:?}"
                    )))
                }
            }
        }
    }
}

impl GemsSession for RemoteSession {
    fn execute_script(&mut self, text: &str) -> Result<Vec<SessionOutput>> {
        // Parse locally: syntax errors render against the local source
        // with spans, and the wire carries compact IR, not text.
        let script = graql_parser::parse(text)?;
        let ir = graql_core::ir::encode(&script);
        self.send(&Msg::Submit { ir: ir.to_vec() })?;
        self.collect_outputs()
    }

    fn check_script(&mut self, text: &str) -> Result<Diagnostics> {
        self.send(&Msg::Check {
            text: text.to_string(),
        })?;
        match self.recv()? {
            Msg::CheckReport { diags } => Ok(diags_from_wire(&diags)),
            Msg::Error {
                status, message, ..
            } => Err(GraqlError::from_wire_status(status, message)),
            other => Err(GraqlError::net(format!(
                "expected CheckReport, got {other:?}"
            ))),
        }
    }

    fn describe(&mut self) -> Result<String> {
        self.send(&Msg::Describe)?;
        match self.recv()? {
            Msg::DescribeReport { text } => Ok(text),
            Msg::Error {
                status, message, ..
            } => Err(GraqlError::from_wire_status(status, message)),
            other => Err(GraqlError::net(format!(
                "expected DescribeReport, got {other:?}"
            ))),
        }
    }

    fn user(&self) -> &str {
        &self.user
    }

    fn role(&self) -> Role {
        self.role
    }
}

impl Drop for RemoteSession {
    fn drop(&mut self) {
        let _ = self.send(&Msg::Goodbye);
    }
}
