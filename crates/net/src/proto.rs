//! The versioned wire message enum and its binary codec.
//!
//! Queries travel as the existing binary IR (`graql_core::ir`, paper
//! §III); every other interaction is one tagged message. The codec style
//! matches the IR codec: little-endian scalars, `u32`-length-prefixed
//! strings, one tag byte per variant, every length validated before
//! allocation. Decoding arbitrary bytes must never panic — that property
//! is fuzzed in `tests/proto_props.rs`.
//!
//! Version negotiation: the client's `Hello` opens with the `GNET` magic
//! and its protocol version; a server speaking a different version answers
//! with an `Error` frame (wire status `net`, message naming both versions)
//! and closes — never silence, never a hang.
//!
//! Since protocol version 5 every frame payload opens with a `u64`-LE
//! **request id** before the message bytes ([`encode_tagged`] /
//! [`decode_tagged`]), so one connection can carry many in-flight
//! requests: the client stamps each `Submit` with a fresh id, the server
//! echoes that id on every reply frame belonging to the request, and
//! control traffic (handshake, ping, goodbye) uses whatever id its
//! initiator chose — replies simply echo it. Replication stream frames
//! carry the subscribe request's id.

use bytes::{BufMut, BytesMut};
use graql_core::{Role, SessionOutput};
use graql_table::{ColumnDef, Table, TableSchema};
use graql_types::{
    codes, DataType, Date, Diagnostic, Diagnostics, GraqlError, Result, Severity, Span, Value,
};

/// Protocol version spoken by this build. Bump on any incompatible change
/// to [`Msg`] encoding. Version 2 added [`Msg::Cancel`] and the
/// governance error statuses (deadline / cancelled / budget); version 3
/// added [`Msg::Metrics`] / [`Msg::MetricsReport`] and the
/// [`Msg::ProfileReport`] output for `profile` statements; version 4
/// added the WAL-shipping replication messages ([`Msg::ReplSubscribe`],
/// [`Msg::ReplSnapshot`], [`Msg::ReplBatch`], [`Msg::ReplAck`],
/// [`Msg::ReplHeartbeat`], [`Msg::Promote`]) and the `NotPrimary` error
/// status (15) carrying the primary's address; version 5 prefixed every
/// frame payload with a `u64`-LE request id (pipelined multiplexing —
/// see the module docs) and redefined [`Msg::Cancel`] to target the id
/// it is tagged with (id 0 = cancel everything in flight).
pub const PROTO_VERSION: u16 = 5;

/// Magic opening every `Hello` payload, so a non-GraQL peer (or a stale
/// client) fails the handshake loudly instead of being misparsed.
pub const MAGIC: &[u8; 4] = b"GNET";

/// Rows per `TableRows` batch when streaming a result table.
pub const BATCH_ROWS: usize = 512;

/// One structured diagnostic on the wire (severity, stable code, message,
/// span, notes) — the `check` service's result rows.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDiag {
    pub severity: u8,
    pub code: String,
    pub message: String,
    pub line: u32,
    pub col: u32,
    pub len: u32,
    pub notes: Vec<String>,
}

/// Every message that can cross the wire, client→server and server→client.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    // -- client → server ----------------------------------------------------
    /// Handshake: magic + protocol version + user name.
    Hello { proto: u16, user: String },
    /// Execute a script shipped as binary IR.
    Submit { ir: Vec<u8> },
    /// Statically check a script (source text: diagnostics need spans,
    /// which the IR deliberately drops).
    Check { text: String },
    /// Catalog describe (object names + sizes + wire statistics).
    Describe,
    /// Liveness / latency probe.
    Ping,
    /// Clean session close.
    Goodbye,
    /// Cancel an in-flight request on this connection. The target is the
    /// request id this frame is *tagged* with: the server trips that
    /// request's [`graql_types::QueryGuard`] (whether it is still queued
    /// or already executing) and the query aborts at its next cooperative
    /// checkpoint with a `Cancelled` error frame. Tag id 0 cancels every
    /// request currently in flight on the connection (the legacy
    /// whole-connection `CancelHandle` semantics).
    Cancel,
    /// Request the server's metrics in Prometheus exposition text — the
    /// same rendering the `--metrics-addr` HTTP endpoint serves.
    Metrics,
    /// A replica subscribes to the primary's committed-WAL stream,
    /// resuming from its durable applied-LSN watermark: "send every
    /// record with `lsn >= from_lsn`". The connection switches into
    /// streaming mode; the primary answers with optional
    /// [`Msg::ReplSnapshot`] chunks (when the log no longer reaches back
    /// to `from_lsn`) followed by [`Msg::ReplBatch`] frames and idle
    /// [`Msg::ReplHeartbeat`]s.
    ReplSubscribe { from_lsn: u64 },
    /// The replica's durable-apply acknowledgement: every record with
    /// `lsn <= lsn` is applied and fsynced on the replica. Drives the
    /// primary's per-replica lag accounting.
    ReplAck { lsn: u64 },
    /// Admin fencing: turn this replica into a writable primary. The
    /// replica stops tailing, drops its read-only gate, and starts
    /// accepting writes. Idempotent on a node that is already primary.
    Promote,

    // -- server → client ----------------------------------------------------
    /// Handshake accepted: negotiated version, granted role, banner.
    Welcome {
        proto: u16,
        role: u8,
        server: String,
    },
    /// Request failed. `status` is the [`GraqlError::wire_status`] byte,
    /// `code` the stable diagnostic code (`E…`) when one applies.
    Error {
        status: u8,
        code: String,
        message: String,
    },
    /// DDL executed.
    Created { name: String },
    /// Ingest executed.
    Ingested { table: String, rows: u64 },
    /// A table result begins: its schema. Rows follow in batches.
    TableHeader { cols: Vec<(String, DataType)> },
    /// One batch of rows of the current table result.
    TableRows { rows: Vec<Vec<Value>> },
    /// The current table result is complete.
    TableEnd,
    /// A subgraph result (by size + pre-rendered summary line).
    Subgraph {
        n_vertices: u64,
        n_edges: u64,
        summary: String,
    },
    /// The statement was fused into the next one.
    Pipelined,
    /// The whole script completed: statement count + server-side latency.
    Done { stmts: u32, micros: u64 },
    /// The `check` service's diagnostics.
    CheckReport { diags: Vec<WireDiag> },
    /// The `describe` service's rendering.
    DescribeReport { text: String },
    /// Answer to [`Msg::Ping`].
    Pong,
    /// A `profile` statement's sealed report: the human rendering and the
    /// machine-readable JSON, both produced server-side so local and
    /// remote output are byte-identical.
    ProfileReport { text: String, json: String },
    /// Answer to [`Msg::Metrics`].
    MetricsReport { text: String },
    /// One chunk of the primary's latest checkpoint, shipped to a
    /// subscribing replica whose `from_lsn` predates the log's start.
    /// `data` is appended to snapshot file `name` on the replica;
    /// `watermark` is the LSN the snapshot folds through (the stream of
    /// batches resumes there); `last` marks the final chunk of the whole
    /// snapshot.
    ReplSnapshot {
        watermark: u64,
        name: String,
        data: Vec<u8>,
        last: bool,
    },
    /// One fsynced group-commit batch: the records' raw on-disk WAL
    /// frames (`[len][checksum][lsn][kind][payload]`, byte-identical to
    /// the primary's `wal.log`), covering LSNs `first_lsn..=last_lsn`.
    ReplBatch {
        first_lsn: u64,
        last_lsn: u64,
        frames: Vec<u8>,
    },
    /// Idle keep-alive on the replication stream, carrying the primary's
    /// current durable LSN so a fully caught-up replica can observe lag 0.
    ReplHeartbeat { durable_lsn: u64 },
}

// -- low-level helpers (same shapes as the IR codec) -------------------------

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(GraqlError::net("truncated message"));
    }
    let v = buf[0];
    *buf = &buf[1..];
    Ok(v)
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    if buf.len() < 2 {
        return Err(GraqlError::net("truncated message"));
    }
    let v = u16::from_le_bytes([buf[0], buf[1]]);
    *buf = &buf[2..];
    Ok(v)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.len() < 4 {
        return Err(GraqlError::net("truncated message"));
    }
    let v = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    *buf = &buf[4..];
    Ok(v)
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.len() < 8 {
        return Err(GraqlError::net("truncated message"));
    }
    let mut a = [0u8; 8];
    a.copy_from_slice(&buf[..8]);
    *buf = &buf[8..];
    Ok(u64::from_le_bytes(a))
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>> {
    let n = get_u32(buf)? as usize;
    if buf.len() < n {
        return Err(GraqlError::net("truncated message payload"));
    }
    let v = buf[..n].to_vec();
    *buf = &buf[n..];
    Ok(v)
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    String::from_utf8(get_bytes(buf)?).map_err(|_| GraqlError::net("invalid UTF-8 in message"))
}

fn put_value(b: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => b.put_u8(0),
        Value::Int(i) => {
            b.put_u8(1);
            b.put_i64_le(*i);
        }
        Value::Float(f) => {
            b.put_u8(2);
            b.put_u64_le(f.to_bits());
        }
        Value::Str(s) => {
            b.put_u8(3);
            put_str(b, s);
        }
        Value::Date(d) => {
            b.put_u8(4);
            b.put_i32_le(d.days());
        }
    }
}

fn get_value(buf: &mut &[u8]) -> Result<Value> {
    Ok(match get_u8(buf)? {
        0 => Value::Null,
        1 => Value::Int(get_u64(buf)? as i64),
        2 => Value::Float(f64::from_bits(get_u64(buf)?)),
        3 => Value::str(get_str(buf)?),
        4 => Value::Date(Date(get_u32(buf)? as i32)),
        t => return Err(GraqlError::net(format!("bad value tag {t}"))),
    })
}

fn put_dtype(b: &mut BytesMut, dt: DataType) {
    match dt {
        DataType::Integer => b.put_u8(0),
        DataType::Float => b.put_u8(1),
        DataType::Varchar(n) => {
            b.put_u8(2);
            b.put_u32_le(n);
        }
        DataType::Date => b.put_u8(3),
    }
}

fn get_dtype(buf: &mut &[u8]) -> Result<DataType> {
    Ok(match get_u8(buf)? {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Varchar(get_u32(buf)?),
        3 => DataType::Date,
        t => return Err(GraqlError::net(format!("bad data-type tag {t}"))),
    })
}

// -- message codec -----------------------------------------------------------

/// Encodes a message into a frame payload (without a request-id prefix —
/// the protocol-4 shape, still used by the codec tests and as the tail of
/// every tagged frame).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut b = BytesMut::new();
    encode_into(&mut b, msg);
    b.to_vec()
}

/// Encodes a protocol-5 frame payload: `u64`-LE `request_id`, then the
/// message bytes. The inverse of [`decode_tagged`].
pub fn encode_tagged(request_id: u64, msg: &Msg) -> Vec<u8> {
    let mut b = BytesMut::new();
    b.put_u64_le(request_id);
    encode_into(&mut b, msg);
    b.to_vec()
}

/// Splits a protocol-5 frame payload into its request id and message.
pub fn decode_tagged(data: &[u8]) -> Result<(u64, Msg)> {
    let mut buf = data;
    let id = get_u64(&mut buf)?;
    Ok((id, decode(buf)?))
}

fn encode_into(b: &mut BytesMut, msg: &Msg) {
    match msg {
        Msg::Hello { proto, user } => {
            b.put_u8(0);
            b.put_slice(MAGIC);
            b.put_u16_le(*proto);
            put_str(b, user);
        }
        Msg::Submit { ir } => {
            b.put_u8(1);
            b.put_u32_le(ir.len() as u32);
            b.put_slice(ir);
        }
        Msg::Check { text } => {
            b.put_u8(2);
            put_str(b, text);
        }
        Msg::Describe => b.put_u8(3),
        Msg::Ping => b.put_u8(4),
        Msg::Goodbye => b.put_u8(5),
        Msg::Cancel => b.put_u8(6),
        Msg::Metrics => b.put_u8(7),
        Msg::ReplSubscribe { from_lsn } => {
            b.put_u8(8);
            b.put_u64_le(*from_lsn);
        }
        Msg::ReplAck { lsn } => {
            b.put_u8(9);
            b.put_u64_le(*lsn);
        }
        Msg::Promote => b.put_u8(10),
        Msg::Welcome {
            proto,
            role,
            server,
        } => {
            b.put_u8(16);
            b.put_u16_le(*proto);
            b.put_u8(*role);
            put_str(b, server);
        }
        Msg::Error {
            status,
            code,
            message,
        } => {
            b.put_u8(17);
            b.put_u8(*status);
            put_str(b, code);
            put_str(b, message);
        }
        Msg::Created { name } => {
            b.put_u8(18);
            put_str(b, name);
        }
        Msg::Ingested { table, rows } => {
            b.put_u8(19);
            put_str(b, table);
            b.put_u64_le(*rows);
        }
        Msg::TableHeader { cols } => {
            b.put_u8(20);
            b.put_u32_le(cols.len() as u32);
            for (name, dt) in cols {
                put_str(b, name);
                put_dtype(b, *dt);
            }
        }
        Msg::TableRows { rows } => {
            b.put_u8(21);
            b.put_u32_le(rows.len() as u32);
            for row in rows {
                b.put_u32_le(row.len() as u32);
                for v in row {
                    put_value(b, v);
                }
            }
        }
        Msg::TableEnd => b.put_u8(22),
        Msg::Subgraph {
            n_vertices,
            n_edges,
            summary,
        } => {
            b.put_u8(23);
            b.put_u64_le(*n_vertices);
            b.put_u64_le(*n_edges);
            put_str(b, summary);
        }
        Msg::Pipelined => b.put_u8(24),
        Msg::Done { stmts, micros } => {
            b.put_u8(25);
            b.put_u32_le(*stmts);
            b.put_u64_le(*micros);
        }
        Msg::CheckReport { diags } => {
            b.put_u8(26);
            b.put_u32_le(diags.len() as u32);
            for d in diags {
                b.put_u8(d.severity);
                put_str(b, &d.code);
                put_str(b, &d.message);
                b.put_u32_le(d.line);
                b.put_u32_le(d.col);
                b.put_u32_le(d.len);
                b.put_u32_le(d.notes.len() as u32);
                for n in &d.notes {
                    put_str(b, n);
                }
            }
        }
        Msg::DescribeReport { text } => {
            b.put_u8(27);
            put_str(b, text);
        }
        Msg::Pong => b.put_u8(28),
        Msg::ProfileReport { text, json } => {
            b.put_u8(29);
            put_str(b, text);
            put_str(b, json);
        }
        Msg::MetricsReport { text } => {
            b.put_u8(30);
            put_str(b, text);
        }
        Msg::ReplSnapshot {
            watermark,
            name,
            data,
            last,
        } => {
            b.put_u8(31);
            b.put_u64_le(*watermark);
            put_str(b, name);
            b.put_u32_le(data.len() as u32);
            b.put_slice(data);
            b.put_u8(u8::from(*last));
        }
        Msg::ReplBatch {
            first_lsn,
            last_lsn,
            frames,
        } => {
            b.put_u8(32);
            b.put_u64_le(*first_lsn);
            b.put_u64_le(*last_lsn);
            b.put_u32_le(frames.len() as u32);
            b.put_slice(frames);
        }
        Msg::ReplHeartbeat { durable_lsn } => {
            b.put_u8(33);
            b.put_u64_le(*durable_lsn);
        }
    }
}

/// Decodes a frame payload. Rejects trailing bytes, unknown tags, bad
/// magic, and every truncation — with an error, never a panic.
pub fn decode(mut data: &[u8]) -> Result<Msg> {
    let buf = &mut data;
    let msg = match get_u8(buf)? {
        0 => {
            if buf.len() < 4 || &buf[..4] != MAGIC {
                return Err(GraqlError::net("bad handshake magic (not a GraQL client?)"));
            }
            *buf = &buf[4..];
            Msg::Hello {
                proto: get_u16(buf)?,
                user: get_str(buf)?,
            }
        }
        1 => Msg::Submit {
            ir: get_bytes(buf)?,
        },
        2 => Msg::Check {
            text: get_str(buf)?,
        },
        3 => Msg::Describe,
        4 => Msg::Ping,
        5 => Msg::Goodbye,
        6 => Msg::Cancel,
        7 => Msg::Metrics,
        8 => Msg::ReplSubscribe {
            from_lsn: get_u64(buf)?,
        },
        9 => Msg::ReplAck { lsn: get_u64(buf)? },
        10 => Msg::Promote,
        16 => Msg::Welcome {
            proto: get_u16(buf)?,
            role: get_u8(buf)?,
            server: get_str(buf)?,
        },
        17 => Msg::Error {
            status: get_u8(buf)?,
            code: get_str(buf)?,
            message: get_str(buf)?,
        },
        18 => Msg::Created {
            name: get_str(buf)?,
        },
        19 => Msg::Ingested {
            table: get_str(buf)?,
            rows: get_u64(buf)?,
        },
        20 => {
            let n = get_u32(buf)? as usize;
            let mut cols = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = get_str(buf)?;
                let dt = get_dtype(buf)?;
                cols.push((name, dt));
            }
            Msg::TableHeader { cols }
        }
        21 => {
            let n = get_u32(buf)? as usize;
            let mut rows = Vec::with_capacity(n.min(BATCH_ROWS));
            for _ in 0..n {
                let w = get_u32(buf)? as usize;
                let mut row = Vec::with_capacity(w.min(1024));
                for _ in 0..w {
                    row.push(get_value(buf)?);
                }
                rows.push(row);
            }
            Msg::TableRows { rows }
        }
        22 => Msg::TableEnd,
        23 => Msg::Subgraph {
            n_vertices: get_u64(buf)?,
            n_edges: get_u64(buf)?,
            summary: get_str(buf)?,
        },
        24 => Msg::Pipelined,
        25 => Msg::Done {
            stmts: get_u32(buf)?,
            micros: get_u64(buf)?,
        },
        26 => {
            let n = get_u32(buf)? as usize;
            let mut diags = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let severity = get_u8(buf)?;
                let code = get_str(buf)?;
                let message = get_str(buf)?;
                let line = get_u32(buf)?;
                let col = get_u32(buf)?;
                let len = get_u32(buf)?;
                let n_notes = get_u32(buf)? as usize;
                let mut notes = Vec::with_capacity(n_notes.min(64));
                for _ in 0..n_notes {
                    notes.push(get_str(buf)?);
                }
                diags.push(WireDiag {
                    severity,
                    code,
                    message,
                    line,
                    col,
                    len,
                    notes,
                });
            }
            Msg::CheckReport { diags }
        }
        27 => Msg::DescribeReport {
            text: get_str(buf)?,
        },
        28 => Msg::Pong,
        29 => Msg::ProfileReport {
            text: get_str(buf)?,
            json: get_str(buf)?,
        },
        30 => Msg::MetricsReport {
            text: get_str(buf)?,
        },
        31 => Msg::ReplSnapshot {
            watermark: get_u64(buf)?,
            name: get_str(buf)?,
            data: get_bytes(buf)?,
            last: get_u8(buf)? != 0,
        },
        32 => Msg::ReplBatch {
            first_lsn: get_u64(buf)?,
            last_lsn: get_u64(buf)?,
            frames: get_bytes(buf)?,
        },
        33 => Msg::ReplHeartbeat {
            durable_lsn: get_u64(buf)?,
        },
        t => return Err(GraqlError::net(format!("unknown message tag {t}"))),
    };
    if !buf.is_empty() {
        return Err(GraqlError::net("trailing bytes after message"));
    }
    Ok(msg)
}

// -- bridges to engine types -------------------------------------------------

/// Builds the error frame for a failed request: wire status byte plus the
/// stable diagnostic code from PR 1's taxonomy.
pub fn error_msg(e: &GraqlError) -> Msg {
    Msg::Error {
        status: e.wire_status(),
        code: Diagnostic::from_error(e, Span::default()).code.to_string(),
        message: e.to_string(),
    }
}

/// The message sequence for one statement output: header + row batches +
/// end for tables, single messages otherwise.
pub fn output_msgs(out: &SessionOutput) -> Vec<Msg> {
    match out {
        SessionOutput::Created(name) => vec![Msg::Created { name: name.clone() }],
        SessionOutput::Ingested { table, rows } => vec![Msg::Ingested {
            table: table.clone(),
            rows: *rows,
        }],
        SessionOutput::Table(t) => {
            let mut msgs = vec![Msg::TableHeader {
                cols: t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| (c.name.clone(), c.dtype))
                    .collect(),
            }];
            let mut batch = Vec::with_capacity(BATCH_ROWS.min(t.n_rows()));
            for r in 0..t.n_rows() {
                batch.push(t.row(r));
                if batch.len() == BATCH_ROWS {
                    msgs.push(Msg::TableRows {
                        rows: std::mem::take(&mut batch),
                    });
                }
            }
            if !batch.is_empty() {
                msgs.push(Msg::TableRows { rows: batch });
            }
            msgs.push(Msg::TableEnd);
            msgs
        }
        SessionOutput::Subgraph {
            n_vertices,
            n_edges,
            summary,
        } => vec![Msg::Subgraph {
            n_vertices: *n_vertices,
            n_edges: *n_edges,
            summary: summary.clone(),
        }],
        SessionOutput::Pipelined => vec![Msg::Pipelined],
        SessionOutput::Profile { text, json } => vec![Msg::ProfileReport {
            text: text.clone(),
            json: json.clone(),
        }],
    }
}

/// The tagged frame payloads for one statement output — the protocol-5
/// serve path. Table results are streamed straight out of the column
/// store: each `TableRows` frame is encoded cell by cell from the
/// result's columns (string cells are `Arc` clones out of the column
/// dictionary), with no per-row `Vec<Value>` and no batch
/// `Vec<Vec<Value>>` materialization. Byte-identical to tagging every
/// message of [`output_msgs`] — asserted by the codec tests.
pub fn output_frames(request_id: u64, out: &SessionOutput) -> Vec<Vec<u8>> {
    let SessionOutput::Table(t) = out else {
        return output_msgs(out)
            .iter()
            .map(|m| encode_tagged(request_id, m))
            .collect();
    };
    let n_rows = t.n_rows();
    let n_cols = t.schema().columns().len();
    let mut frames = Vec::with_capacity(2 + n_rows.div_ceil(BATCH_ROWS.max(1)));
    frames.push(encode_tagged(
        request_id,
        &Msg::TableHeader {
            cols: t
                .schema()
                .columns()
                .iter()
                .map(|c| (c.name.clone(), c.dtype))
                .collect(),
        },
    ));
    let mut start = 0;
    while start < n_rows {
        let end = (start + BATCH_ROWS).min(n_rows);
        let mut b = BytesMut::with_capacity(13 + (end - start) * (4 + 9 * n_cols));
        b.put_u64_le(request_id);
        b.put_u8(21); // Msg::TableRows
        b.put_u32_le((end - start) as u32);
        for r in start..end {
            b.put_u32_le(n_cols as u32);
            for c in 0..n_cols {
                put_value(&mut b, &t.get(r, c));
            }
        }
        frames.push(b.to_vec());
        start = end;
    }
    frames.push(encode_tagged(request_id, &Msg::TableEnd));
    frames
}

/// Rebuilds a table from a streamed header + row batches.
#[derive(Debug)]
pub struct TableAssembler {
    table: Table,
}

impl TableAssembler {
    pub fn new(cols: &[(String, DataType)]) -> Result<Self> {
        let schema = TableSchema::new(cols.iter().map(|(n, dt)| ColumnDef::new(n, *dt)).collect())?;
        Ok(TableAssembler {
            table: Table::empty(schema),
        })
    }

    pub fn push_rows(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        for row in rows {
            self.table.push_row(row)?;
        }
        Ok(())
    }

    pub fn finish(self) -> Table {
        self.table
    }
}

/// Converts diagnostics to their wire form.
pub fn diags_to_wire(diags: &Diagnostics) -> Vec<WireDiag> {
    diags
        .iter()
        .map(|d| WireDiag {
            severity: match d.severity {
                Severity::Hint => 0,
                Severity::Warning => 1,
                Severity::Error => 2,
            },
            code: d.code.to_string(),
            message: d.message.clone(),
            line: d.span.line,
            col: d.span.col,
            len: d.span.len,
            notes: d.notes.clone(),
        })
        .collect()
}

/// Converts wire diagnostics back into [`Diagnostics`]. Codes are
/// interned against the stable code table; a code this build does not
/// know (newer peer) degrades to [`codes::NET_OTHER`] with the original
/// code prefixed to the message, so nothing is silently dropped.
pub fn diags_from_wire(wire: &[WireDiag]) -> Diagnostics {
    let mut out = Diagnostics::new();
    for w in wire {
        let span = Span::with_len(w.line, w.col, w.len);
        let (code, message) = match intern_code(&w.code) {
            Some(c) => (c, w.message.clone()),
            None => (codes::NET_OTHER, format!("[{}] {}", w.code, w.message)),
        };
        let mut d = match w.severity {
            2 => Diagnostic::error(code, message, span),
            1 => Diagnostic::warning(code, message, span),
            _ => Diagnostic::hint(code, message, span),
        };
        for n in &w.notes {
            d = d.with_note(n.clone());
        }
        out.push(d);
    }
    out
}

/// The stable code table: wire string → the `'static` code constant.
fn intern_code(code: &str) -> Option<&'static str> {
    const ALL: &[&str] = &[
        codes::PARSE,
        codes::UNKNOWN_NAME,
        codes::UNKNOWN_ATTR,
        codes::BAD_QUALIFIER,
        codes::DUPLICATE,
        codes::AMBIGUOUS,
        codes::NAME_OTHER,
        codes::INCOMPARABLE,
        codes::WRONG_KIND,
        codes::BAD_AGGREGATE,
        codes::MISPLACED_CLAUSE,
        codes::TYPE_OTHER,
        codes::BAD_PATH,
        codes::BAD_LABEL,
        codes::BAD_ENDPOINT,
        codes::PATH_OTHER,
        codes::INGEST_OTHER,
        codes::PLAN_OTHER,
        codes::EXEC_OTHER,
        codes::IR_OTHER,
        codes::CLUSTER_OTHER,
        codes::NET_OTHER,
        codes::ACCESS_DENIED,
        codes::DEADLINE,
        codes::CANCELLED,
        codes::BUDGET,
        codes::NOT_PRIMARY,
        codes::UNUSED_LABEL,
        codes::UNREAD_RESULT,
        codes::ALWAYS_FALSE,
        codes::SHADOWED_RESULT,
        codes::UNSATISFIABLE_STEP,
        codes::DEAD_BRANCH,
        codes::CONTRADICTORY_RANGE,
        codes::ALWAYS_TRUE,
        codes::UNBOUNDED_HIGH_FANOUT,
        codes::ZERO_REPETITION,
        codes::UNGOVERNED_REPETITION,
        codes::TOP_WITHOUT_ORDER,
        codes::TOP_SORT_SPILL,
        codes::COSTLY_TRAVERSAL,
    ];
    ALL.iter().find(|&&c| c == code).copied()
}

/// Maps a granted role tag back to [`Role`], rejecting unknown tags.
pub fn role_from_tag(tag: u8) -> Result<Role> {
    Role::from_wire_tag(tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Msg> {
        vec![
            Msg::Hello {
                proto: PROTO_VERSION,
                user: "ada".into(),
            },
            Msg::Submit {
                ir: vec![1, 2, 3, 255],
            },
            Msg::Check {
                text: "select * from table T".into(),
            },
            Msg::Describe,
            Msg::Ping,
            Msg::Goodbye,
            Msg::Cancel,
            Msg::Welcome {
                proto: PROTO_VERSION,
                role: 1,
                server: "gems-serve/0.1".into(),
            },
            Msg::Error {
                status: 7,
                code: "E0903".into(),
                message: "boom".into(),
            },
            Msg::Created { name: "T".into() },
            Msg::Ingested {
                table: "T".into(),
                rows: 42,
            },
            Msg::TableHeader {
                cols: vec![
                    ("id".into(), DataType::Varchar(10)),
                    ("n".into(), DataType::Integer),
                    ("x".into(), DataType::Float),
                    ("d".into(), DataType::Date),
                ],
            },
            Msg::TableRows {
                rows: vec![
                    vec![
                        Value::str("a"),
                        Value::Int(-3),
                        Value::Float(1.5),
                        Value::Date(Date(7000)),
                    ],
                    vec![Value::Null, Value::Null, Value::Null, Value::Null],
                ],
            },
            Msg::TableEnd,
            Msg::Subgraph {
                n_vertices: 10,
                n_edges: 20,
                summary: "10 vertices (V: 10), 20 edges (e: 20)".into(),
            },
            Msg::Pipelined,
            Msg::Done {
                stmts: 3,
                micros: 12345,
            },
            Msg::CheckReport {
                diags: vec![WireDiag {
                    severity: 2,
                    code: "E0201".into(),
                    message: "type error".into(),
                    line: 3,
                    col: 7,
                    len: 2,
                    notes: vec!["note".into()],
                }],
            },
            Msg::DescribeReport {
                text: "tables:\n".into(),
            },
            Msg::Pong,
            Msg::Metrics,
            Msg::ProfileReport {
                text: "profile select …\nstages:\n".into(),
                json: "{\"statement\":\"select …\"}".into(),
            },
            Msg::MetricsReport {
                text: "# TYPE graql_queries_total counter\n".into(),
            },
            Msg::ReplSubscribe { from_lsn: 17 },
            Msg::ReplAck { lsn: 16 },
            Msg::Promote,
            Msg::ReplSnapshot {
                watermark: 17,
                name: "catalog.graql".into(),
                data: vec![99, 114, 101, 97, 116, 101],
                last: false,
            },
            Msg::ReplBatch {
                first_lsn: 18,
                last_lsn: 19,
                frames: vec![0, 1, 2, 3, 255],
            },
            Msg::ReplHeartbeat { durable_lsn: 19 },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in corpus() {
            let blob = encode(&msg);
            let back = decode(&blob).unwrap();
            // Value has no PartialEq-compatible NaN concerns in this corpus.
            assert_eq!(format!("{msg:?}"), format!("{back:?}"), "{msg:?}");
        }
    }

    #[test]
    fn tagged_round_trip_all_variants() {
        for (i, msg) in corpus().into_iter().enumerate() {
            let id = (i as u64) * 0x0101_0101 + 7;
            let blob = encode_tagged(id, &msg);
            let (back_id, back) = decode_tagged(&blob).unwrap();
            assert_eq!(back_id, id);
            assert_eq!(format!("{msg:?}"), format!("{back:?}"), "{msg:?}");
        }
        // A frame shorter than the id prefix is a clean error.
        assert!(decode_tagged(&[0, 1, 2]).is_err());
    }

    #[test]
    fn output_frames_match_tagged_output_msgs() {
        use graql_table::{ColumnDef, Table, TableSchema};
        // A table spanning several batches, with every column type and
        // nulls, so the zero-copy encoder is exercised cell kind by cell
        // kind.
        let schema = TableSchema::new(vec![
            ColumnDef::new("id", DataType::Varchar(16)),
            ColumnDef::new("n", DataType::Integer),
            ColumnDef::new("x", DataType::Float),
            ColumnDef::new("d", DataType::Date),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        for i in 0..(BATCH_ROWS * 2 + 17) {
            let row = if i % 5 == 0 {
                vec![Value::Null, Value::Null, Value::Null, Value::Null]
            } else {
                vec![
                    Value::str(format!("r{i}")),
                    Value::Int(i as i64 - 100),
                    Value::Float(i as f64 * 0.5),
                    Value::Date(Date(i as i32)),
                ]
            };
            t.push_row(&row).unwrap();
        }
        let outs = [
            SessionOutput::Table(t),
            SessionOutput::Created("T".into()),
            SessionOutput::Subgraph {
                n_vertices: 1,
                n_edges: 2,
                summary: "s".into(),
            },
            SessionOutput::Profile {
                text: "p".into(),
                json: "{}".into(),
            },
        ];
        for out in &outs {
            let fast = output_frames(42, out);
            let slow: Vec<Vec<u8>> = output_msgs(out)
                .iter()
                .map(|m| encode_tagged(42, m))
                .collect();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn truncations_error_cleanly() {
        for msg in corpus() {
            let blob = encode(&msg);
            for cut in 0..blob.len() {
                assert!(decode(&blob[..cut]).is_err(), "{msg:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut blob = encode(&Msg::Ping);
        blob.push(0);
        assert!(decode(&blob).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = encode(&Msg::Hello {
            proto: 1,
            user: "u".into(),
        });
        blob[1] = b'X';
        let err = decode(&blob).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn diagnostics_round_trip_codes_and_spans() {
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::error(codes::INCOMPARABLE, "cmp", Span::with_len(2, 5, 3))
                .with_note("between float and varchar"),
        );
        ds.push(Diagnostic::warning(
            codes::UNUSED_LABEL,
            "unused",
            Span::new(1, 1),
        ));
        ds.push(Diagnostic::hint(
            codes::TOP_WITHOUT_ORDER,
            "top",
            Span::default(),
        ));
        let back = diags_from_wire(&diags_to_wire(&ds));
        assert_eq!(ds, back);
    }

    #[test]
    fn unknown_diag_code_degrades_not_drops() {
        let wire = [WireDiag {
            severity: 2,
            code: "E9999".into(),
            message: "from the future".into(),
            line: 0,
            col: 0,
            len: 0,
            notes: vec![],
        }];
        let ds = diags_from_wire(&wire);
        assert_eq!(ds.len(), 1);
        let d = ds.iter().next().unwrap();
        assert_eq!(d.code, codes::NET_OTHER);
        assert!(d.message.contains("E9999"));
    }
}
