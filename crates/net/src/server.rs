//! The networked GEMS front-end server.
//!
//! **Pipelined multiplexed architecture** (protocol v5): one nonblocking
//! accept loop polling a shutdown flag, one *reader* thread per client
//! connection, and a bounded pool of *worker* threads executing queries.
//! The reader demultiplexes tagged frames: control traffic (ping, check,
//! describe, metrics, promote, cancel) is answered inline, while each
//! `Submit` is stamped into the connection's in-flight table and enqueued
//! on the shared scheduler. Workers drain connections round-robin — one
//! job per turn, so a pipelining client cannot starve its neighbours —
//! and write their reply frames (tagged with the originating request id)
//! directly to the client socket under the connection's write lock.
//! Admission control (the internal `ExecGate`) spans the pool with per-connection
//! fair shares.
//!
//! Because the reader keeps reading while queries execute, an
//! out-of-band `Cancel` lands immediately — whether its target is still
//! queued or already on a worker — and a vanished client cancels every
//! request it had in flight.
//!
//! Graceful shutdown *drains*: every request that started finishes and
//! its reply is flushed before the connection closes.
//!
//! All sessions share one [`graql_core::Server`]; its internal locks (see
//! `graql_core::server`) let read-only scripts from different
//! connections execute concurrently while DDL/ingest serialize.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graql_core::{ReplRole, Role, Server, Session};
use graql_types::{
    GraqlError, ProfileReport, QueryBudget, QueryGuard, QueryOutcome, QueryProfile, Result,
};

use crate::frame::{read_frame, write_frame, FrameRead, MAX_FRAME};
use crate::proto::{self, diags_to_wire, error_msg, output_frames, Msg, PROTO_VERSION};

/// How often blocked loops (accept, reader waits) wake to poll the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Replication stream: heartbeat cadence on an idle subscription (tells
/// the replica the primary is alive and how far its durable LSN is).
const REPL_HEARTBEAT: Duration = Duration::from_secs(1);

/// Replication snapshot transfer: one file is shipped in chunks of at
/// most this many bytes, so a multi-gigabyte checkpoint never needs a
/// single oversized frame.
const SNAPSHOT_CHUNK: usize = 1 << 20;

/// Tuning for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address; port 0 picks a free port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Hard per-request deadline, folded into the request's
    /// [`QueryGuard`] *at enqueue time* — it covers scheduler queue wait
    /// as well as execution, so a backed-up pool cannot silently extend
    /// the budget. Execution aborts cooperatively at its next checkpoint
    /// with a typed deadline error and the worker is immediately
    /// reusable.
    pub request_timeout: Duration,
    /// Connections idle longer than this are closed (idle = no frames
    /// and nothing in flight).
    pub idle_timeout: Duration,
    /// Hard cap on one frame's payload, both directions.
    pub max_frame: usize,
    /// Server identification sent in `Welcome`.
    pub banner: String,
    /// How many malformed/unexpected messages one connection may send
    /// before the server hangs up on it. Each offence gets an error frame
    /// reply; the connection survives until the budget is spent.
    pub error_budget: u32,
    /// Above this many active connections, new connections are refused
    /// with a retryable overload error while the existing ones drain.
    pub max_connections: u64,
    /// Admission control: at most this many `Submit` requests execute
    /// concurrently across all connections. Excess requests wait up to
    /// [`ServeOptions::queue_wait`] for a slot, then are shed with a
    /// retryable "server busy" error the client's backoff understands.
    pub max_concurrency: u64,
    /// How long an admitted-but-queued request may wait for an execution
    /// slot before being shed.
    pub queue_wait: Duration,
    /// Worker threads executing `Submit`s across all connections.
    /// 0 = one per available core.
    pub workers: usize,
    /// Cap on one connection's submitted-but-unfinished requests; excess
    /// submits are shed immediately with a retryable busy error, keeping
    /// per-connection queue depth (and reply latency) bounded.
    pub max_inflight_per_conn: usize,
    /// When set, serve the engine + wire metrics as Prometheus exposition
    /// text over HTTP on this address (port 0 picks a free port, see
    /// [`NetServer::metrics_addr`]).
    pub metrics_addr: Option<String>,
    /// When set, every `Submit` runs with a [`QueryProfile`] armed and
    /// requests slower than this many milliseconds emit one JSON line
    /// (profile attached) to the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Slow-query log destination; `None` writes to stderr.
    pub slow_query_log: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            request_timeout: Duration::from_secs(60),
            idle_timeout: Duration::from_secs(300),
            max_frame: MAX_FRAME,
            banner: "gems-serve/0.1".to_string(),
            error_budget: 8,
            max_connections: 256,
            max_concurrency: 64,
            queue_wait: Duration::from_millis(200),
            workers: 0,
            max_inflight_per_conn: 1024,
            metrics_addr: None,
            slow_query_ms: None,
            slow_query_log: None,
        }
    }
}

/// The structured slow-query log: one JSON line per offending request,
/// with the request's sealed profile attached.
struct SlowLog {
    threshold: Duration,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl SlowLog {
    fn open(opts: &ServeOptions) -> Result<Option<Arc<SlowLog>>> {
        let Some(ms) = opts.slow_query_ms else {
            return Ok(None);
        };
        let sink: Box<dyn Write + Send> = match &opts.slow_query_log {
            Some(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| {
                        GraqlError::net(format!("cannot open slow-query log {path}: {e}"))
                    })?,
            ),
            None => Box::new(std::io::stderr()),
        };
        Ok(Some(Arc::new(SlowLog {
            threshold: Duration::from_millis(ms),
            sink: Mutex::new(sink),
        })))
    }

    /// Appends one line; log I/O failures never fail the request.
    fn note(&self, user: &str, micros: u64, outcome: &str, report: &ProfileReport) {
        let line = format!(
            "{{\"slow_query\":{{\"user\":\"{user}\",\"micros\":{micros},\
             \"outcome\":\"{outcome}\",\"profile\":{}}}}}",
            report.to_json()
        );
        if let Ok(mut sink) = self.sink.lock() {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }
}

/// The admission gate: a counting semaphore with a bounded queue wait and
/// **per-connection fairness**. Total concurrent executions are capped at
/// `max`; when several connections hold slots simultaneously, each is
/// further capped at its fair share `max(1, max / holders)` so one
/// pipelining client cannot monopolize the pool — while a *lone*
/// connection may still use every slot (the single-client throughput
/// case). Requests that get no admissible slot within the queue wait are
/// shed, which keeps queue depth — and therefore tail latency — bounded.
#[derive(Debug)]
struct ExecGate {
    inner: Mutex<GateInner>,
    freed: Condvar,
    max: u64,
}

#[derive(Debug, Default)]
struct GateInner {
    total: u64,
    /// Slots held per connection id; entries exist only while > 0.
    per_conn: HashMap<u64, u64>,
}

impl ExecGate {
    fn new(max: u64) -> ExecGate {
        ExecGate {
            inner: Mutex::new(GateInner::default()),
            freed: Condvar::new(),
            max: max.max(1),
        }
    }

    /// Acquires an execution slot for connection `conn`, waiting at most
    /// `queue_wait`. Returns false when the request must be shed.
    fn admit(&self, conn: u64, queue_wait: Duration) -> bool {
        let deadline = Instant::now() + queue_wait;
        let mut inner = self.inner.lock().expect("gate poisoned");
        loop {
            let mine = inner.per_conn.get(&conn).copied().unwrap_or(0);
            let holders = inner.per_conn.len() as u64 + u64::from(mine == 0);
            let fair = (self.max / holders.max(1)).max(1);
            if inner.total < self.max && mine < fair {
                inner.total += 1;
                *inner.per_conn.entry(conn).or_insert(0) += 1;
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .freed
                .wait_timeout(inner, deadline - now)
                .expect("gate poisoned");
            inner = guard;
        }
    }

    fn release(&self, conn: u64) {
        let mut inner = self.inner.lock().expect("gate poisoned");
        inner.total = inner.total.saturating_sub(1);
        if let Some(n) = inner.per_conn.get_mut(&conn) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inner.per_conn.remove(&conn);
            }
        }
        drop(inner);
        // Fairness thresholds shift when holder counts change, so every
        // waiter re-evaluates.
        self.freed.notify_all();
    }
}

/// Aggregate wire counters across all connections, updated lock-free and
/// folded into the `describe` service's report.
#[derive(Debug, Default)]
pub struct NetStats {
    pub connections_total: AtomicU64,
    pub connections_active: AtomicU64,
    /// Connections refused at accept time (overload shedding).
    pub connections_refused: AtomicU64,
    pub msgs_in: AtomicU64,
    pub msgs_out: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub requests: AtomicU64,
    pub request_micros_total: AtomicU64,
    pub request_micros_max: AtomicU64,
    /// Governance: requests shed at the admission gate (no free slot
    /// within the queue wait) or at the per-connection in-flight cap.
    pub queries_shed: AtomicU64,
    /// Governance: requests killed by a wire `Cancel` (or the client
    /// vanishing mid-request).
    pub queries_cancelled: AtomicU64,
    /// Governance: requests killed by the per-request deadline.
    pub queries_deadline_killed: AtomicU64,
    /// Governance: requests killed by a row/byte budget.
    pub queries_budget_killed: AtomicU64,
    /// Governance: largest byte footprint (RSS proxy) any single query
    /// accounted, successful or not.
    pub query_peak_bytes: AtomicU64,
    /// Client-side resilience: requests re-sent after a retryable error.
    /// Counted by [`crate::RemoteSession`] when it shares this registry
    /// (the replica tailer does), so a node's own outbound retries show
    /// up in its metrics.
    pub retries: AtomicU64,
    /// Client-side resilience: connections re-established (same or
    /// different endpoint).
    pub reconnects: AtomicU64,
    /// Client-side resilience: reconnects that landed on a *different*
    /// endpoint than the previous one (read failover / write redirect).
    pub failovers: AtomicU64,
    /// Replication source: replicas currently subscribed to this node.
    pub repl_replicas_connected: AtomicU64,
    /// Replication source: fsynced WAL batches shipped to replicas.
    pub repl_batches_shipped: AtomicU64,
    /// Replication source: WAL records shipped (sum of batch LSN spans).
    pub repl_records_shipped: AtomicU64,
    /// Replication source: snapshot chunks sent during initial sync.
    pub repl_snapshot_chunks: AtomicU64,
    /// Replication source: acks received from replicas.
    pub repl_acks: AtomicU64,
    /// Replication source: heartbeats sent on idle streams.
    pub repl_heartbeats: AtomicU64,
    /// Per-replica lag (primary durable LSN minus the replica's last
    /// acked LSN), keyed by peer address. Entries vanish when the
    /// subscription drops.
    pub repl_lag: Mutex<BTreeMap<String, u64>>,
}

impl NetStats {
    fn note_request(&self, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.request_micros_total
            .fetch_add(micros, Ordering::Relaxed);
        self.request_micros_max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Updates one replica's lag entry (primary side, on each ack).
    pub fn note_repl_lag(&self, peer: &str, lag: u64) {
        if let Ok(mut lags) = self.repl_lag.lock() {
            lags.insert(peer.to_string(), lag);
        }
    }

    /// Drops one replica's lag entry (subscription ended).
    pub fn forget_repl_lag(&self, peer: &str) {
        if let Ok(mut lags) = self.repl_lag.lock() {
            lags.remove(peer);
        }
    }

    /// The largest per-replica lag, and the lag table itself.
    fn repl_lag_snapshot(&self) -> (u64, Vec<(String, u64)>) {
        let lags: Vec<(String, u64)> = self
            .repl_lag
            .lock()
            .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default();
        let max = lags.iter().map(|(_, v)| *v).max().unwrap_or(0);
        (max, lags)
    }

    /// Renders the `net:` section appended to `describe` output.
    pub fn render(&self) -> String {
        let requests = self.requests.load(Ordering::Relaxed);
        let total = self.request_micros_total.load(Ordering::Relaxed);
        let mean = total.checked_div(requests).unwrap_or(0);
        let mut out = format!(
            "net:\n  connections: {} active, {} total, {} refused\n  messages: {} in, {} out\n  bytes: {} in, {} out\n  requests: {} (mean {} us, max {} us)\n  governance: {} shed, {} cancelled, {} deadline-killed, {} budget-killed, peak query bytes {}\n  resilience: {} retries, {} reconnects, {} failovers\n",
            self.connections_active.load(Ordering::Relaxed),
            self.connections_total.load(Ordering::Relaxed),
            self.connections_refused.load(Ordering::Relaxed),
            self.msgs_in.load(Ordering::Relaxed),
            self.msgs_out.load(Ordering::Relaxed),
            self.bytes_in.load(Ordering::Relaxed),
            self.bytes_out.load(Ordering::Relaxed),
            requests,
            mean,
            self.request_micros_max.load(Ordering::Relaxed),
            self.queries_shed.load(Ordering::Relaxed),
            self.queries_cancelled.load(Ordering::Relaxed),
            self.queries_deadline_killed.load(Ordering::Relaxed),
            self.queries_budget_killed.load(Ordering::Relaxed),
            self.query_peak_bytes.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
        );
        use std::fmt::Write as _;
        let (_, lags) = self.repl_lag_snapshot();
        let _ = writeln!(
            out,
            "repl:\n  replicas: {} connected\n  shipped: {} batches, {} records, {} snapshot chunks\n  acks: {}, heartbeats: {}",
            self.repl_replicas_connected.load(Ordering::Relaxed),
            self.repl_batches_shipped.load(Ordering::Relaxed),
            self.repl_records_shipped.load(Ordering::Relaxed),
            self.repl_snapshot_chunks.load(Ordering::Relaxed),
            self.repl_acks.load(Ordering::Relaxed),
            self.repl_heartbeats.load(Ordering::Relaxed),
        );
        for (peer, lag) in lags {
            let _ = writeln!(out, "  lag {peer}: {lag} records");
        }
        out
    }

    /// Renders the wire counters as Prometheus exposition lines, appended
    /// to the engine registry's rendering by [`metrics_text`].
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_net_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_net_{name} counter");
            let _ = writeln!(out, "graql_net_{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_net_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_net_{name} gauge");
            let _ = writeln!(out, "graql_net_{name} {v}");
        };
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        gauge(
            &mut out,
            "connections_active",
            "Currently open client connections.",
            c(&self.connections_active),
        );
        counter(
            &mut out,
            "connections_total",
            "Client connections accepted since start.",
            c(&self.connections_total),
        );
        counter(
            &mut out,
            "connections_refused_total",
            "Connections refused at accept time (overload).",
            c(&self.connections_refused),
        );
        counter(
            &mut out,
            "messages_in_total",
            "Wire messages received.",
            c(&self.msgs_in),
        );
        counter(
            &mut out,
            "messages_out_total",
            "Wire messages sent.",
            c(&self.msgs_out),
        );
        counter(
            &mut out,
            "bytes_in_total",
            "Payload bytes received (including frame headers).",
            c(&self.bytes_in),
        );
        counter(
            &mut out,
            "bytes_out_total",
            "Payload bytes sent (including frame headers).",
            c(&self.bytes_out),
        );
        counter(
            &mut out,
            "requests_total",
            "Requests served across all connections.",
            c(&self.requests),
        );
        counter(
            &mut out,
            "queries_shed_total",
            "Requests shed at the admission gate.",
            c(&self.queries_shed),
        );
        counter(
            &mut out,
            "queries_cancelled_total",
            "Requests killed by a wire Cancel or a vanished client.",
            c(&self.queries_cancelled),
        );
        counter(
            &mut out,
            "queries_deadline_killed_total",
            "Requests killed by the per-request deadline.",
            c(&self.queries_deadline_killed),
        );
        counter(
            &mut out,
            "queries_budget_killed_total",
            "Requests killed by a row/byte budget.",
            c(&self.queries_budget_killed),
        );
        gauge(
            &mut out,
            "query_peak_bytes",
            "Largest byte footprint any single query accounted.",
            c(&self.query_peak_bytes),
        );
        counter(
            &mut out,
            "retries_total",
            "Outbound requests re-sent after a retryable error.",
            c(&self.retries),
        );
        counter(
            &mut out,
            "reconnects_total",
            "Outbound connections re-established.",
            c(&self.reconnects),
        );
        counter(
            &mut out,
            "failovers_total",
            "Outbound reconnects that switched endpoints.",
            c(&self.failovers),
        );
        let repl_counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_repl_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_repl_{name} counter");
            let _ = writeln!(out, "graql_repl_{name} {v}");
        };
        let repl_gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_repl_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_repl_{name} gauge");
            let _ = writeln!(out, "graql_repl_{name} {v}");
        };
        repl_gauge(
            &mut out,
            "replicas_connected",
            "Replicas currently subscribed to this node's WAL stream.",
            c(&self.repl_replicas_connected),
        );
        repl_counter(
            &mut out,
            "batches_shipped_total",
            "Fsynced WAL batches shipped to replicas.",
            c(&self.repl_batches_shipped),
        );
        repl_counter(
            &mut out,
            "records_shipped_total",
            "WAL records shipped to replicas.",
            c(&self.repl_records_shipped),
        );
        repl_counter(
            &mut out,
            "snapshot_chunks_total",
            "Snapshot chunks sent during replica initial sync.",
            c(&self.repl_snapshot_chunks),
        );
        repl_counter(
            &mut out,
            "acks_total",
            "Replication acks received from replicas.",
            c(&self.repl_acks),
        );
        repl_counter(
            &mut out,
            "heartbeats_total",
            "Replication heartbeats sent on idle streams.",
            c(&self.repl_heartbeats),
        );
        let (max_lag, _) = self.repl_lag_snapshot();
        repl_gauge(
            &mut out,
            "max_lag_records",
            "Largest per-replica lag in WAL records.",
            max_lag,
        );
        out
    }
}

/// The full Prometheus exposition body: the engine registry first (query
/// outcomes, latency histograms, plan-cache series), then the wire
/// counters. The same text backs the HTTP endpoint and the
/// [`Msg::Metrics`] wire request, so both views always agree.
pub fn metrics_text(server: &Server, stats: &NetStats) -> String {
    let mut out = server.metrics().render_prometheus();
    out.push_str(&stats.render_prometheus());
    out
}

/// Handle to a running server: address, counters, graceful shutdown.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    accept_handle: Option<JoinHandle<()>>,
    metrics_handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics HTTP address, when
    /// [`ServeOptions::metrics_addr`] was set (resolves port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish and flush its reply, then join readers and workers.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `opts.addr` and serves `server` until [`NetServer::shutdown`].
pub fn serve(server: Server, opts: ServeOptions) -> Result<NetServer> {
    let addr = opts
        .addr
        .to_socket_addrs()
        .map_err(|e| GraqlError::net(format!("cannot resolve {}: {e}", opts.addr)))?
        .next()
        .ok_or_else(|| GraqlError::net(format!("{} resolves to no address", opts.addr)))?;
    let listener =
        TcpListener::bind(addr).map_err(|e| GraqlError::net(format!("cannot bind {addr}: {e}")))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| GraqlError::net(format!("no local address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| GraqlError::net(format!("cannot set nonblocking: {e}")))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(NetStats::default());
    let gate = Arc::new(ExecGate::new(opts.max_concurrency));
    let slow = SlowLog::open(&opts)?;

    let (metrics_addr, metrics_handle) = match &opts.metrics_addr {
        Some(addr) => {
            let (addr, handle) = serve_metrics(
                addr,
                server.clone(),
                Arc::clone(&stats),
                Arc::clone(&shutdown),
            )?;
            (Some(addr), Some(handle))
        }
        None => (None, None),
    };

    let accept_handle = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || accept_loop(listener, server, opts, shutdown, stats, gate, slow))
    };

    Ok(NetServer {
        local_addr,
        metrics_addr,
        shutdown,
        stats,
        accept_handle: Some(accept_handle),
        metrics_handle,
    })
}

/// Binds and serves the Prometheus HTTP endpoint: a deliberately minimal
/// HTTP/1.1 responder (every request gets the full exposition and
/// `Connection: close`) so a stock Prometheus scraper or `curl` works
/// without pulling an HTTP stack into the build.
fn serve_metrics(
    addr: &str,
    server: Server,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
) -> Result<(SocketAddr, JoinHandle<()>)> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| GraqlError::net(format!("cannot resolve metrics address {addr}: {e}")))?
        .next()
        .ok_or_else(|| GraqlError::net(format!("{addr} resolves to no address")))?;
    let listener = TcpListener::bind(addr)
        .map_err(|e| GraqlError::net(format!("cannot bind metrics address {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| GraqlError::net(format!("no local metrics address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| GraqlError::net(format!("cannot set metrics listener nonblocking: {e}")))?;
    let handle = std::thread::spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => serve_one_scrape(stream, &server, &stats),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
        }
    });
    Ok((local, handle))
}

/// Answers one HTTP scrape: drain the request line(s), send the
/// exposition, close. Scrape errors are never server-fatal.
fn serve_one_scrape(mut stream: TcpStream, server: &Server, stats: &NetStats) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Read until the blank line ending the request head (or timeout —
    // scrapers that pipeline more than 4 KiB of headers get cut off).
    let mut head = [0u8; 4096];
    let mut n = 0;
    while n < head.len() {
        match std::io::Read::read(&mut stream, &mut head[n..]) {
            Ok(0) => break,
            Ok(m) => {
                n += m;
                if head[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = metrics_text(server, stats);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

// -- the scheduler: per-connection demux queues + a fairness ring ------------

/// One queued `Submit`. The guard was minted (and registered in the
/// connection's in-flight table) by the reader at enqueue time, so its
/// deadline covers queue wait and a `Cancel` can trip it before a worker
/// ever picks it up.
struct Job {
    conn: Arc<Conn>,
    id: u64,
    ir: Vec<u8>,
    guard: Arc<QueryGuard>,
    received: Instant,
}

#[derive(Default)]
struct SchedInner {
    /// Round-robin ring of connections with queued work. Each connection
    /// appears at most once (`in_ring`).
    ring: VecDeque<u64>,
    in_ring: HashSet<u64>,
    queues: HashMap<u64, VecDeque<Job>>,
    stopped: bool,
}

/// The worker pool's feed: per-connection FIFO queues drained round-robin.
/// A worker takes ONE job per turn and immediately re-appends the
/// connection if more of its work is queued — so (a) connections share
/// the pool fairly and (b) one connection's pipelined requests can still
/// run on several workers at once.
struct Scheduler {
    inner: Mutex<SchedInner>,
    ready: Condvar,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            inner: Mutex::new(SchedInner::default()),
            ready: Condvar::new(),
        }
    }

    /// Queue depth for one connection (the per-connection in-flight cap
    /// is enforced against the in-flight table, not this, but tests peek).
    fn enqueue(&self, job: Job) {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        let cid = job.conn.id;
        inner.queues.entry(cid).or_default().push_back(job);
        if inner.in_ring.insert(cid) {
            inner.ring.push_back(cid);
        }
        drop(inner);
        self.ready.notify_one();
    }

    /// The next job, blocking until one is available. `None` only after
    /// [`Scheduler::stop`] AND every queue is drained — shutdown drains.
    fn next(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("scheduler poisoned");
        loop {
            if let Some(cid) = inner.ring.pop_front() {
                inner.in_ring.remove(&cid);
                let (job, more) = match inner.queues.get_mut(&cid) {
                    Some(q) => (q.pop_front(), !q.is_empty()),
                    None => (None, false),
                };
                if more {
                    inner.ring.push_back(cid);
                    inner.in_ring.insert(cid);
                    // Another worker can take the connection's next job
                    // while we execute this one.
                    self.ready.notify_one();
                } else {
                    inner.queues.remove(&cid);
                }
                match job {
                    Some(j) => return Some(j),
                    None => continue, // stale ring entry (connection drained)
                }
            }
            if inner.stopped {
                return None;
            }
            inner = self
                .ready
                .wait_timeout(inner, POLL)
                .expect("scheduler poisoned")
                .0;
        }
    }

    fn stop(&self) {
        self.inner.lock().expect("scheduler poisoned").stopped = true;
        self.ready.notify_all();
    }
}

// -- per-connection shared state ---------------------------------------------

/// Shared per-connection state: the socket (reader reads, workers write
/// under `write`), the authenticated user, and the in-flight request
/// table the reader cancels into.
struct Conn {
    id: u64,
    stream: TcpStream,
    user: String,
    /// Serializes reply frames from concurrent workers (and the reader's
    /// inline control replies). One request's frames are written by one
    /// worker in order; frames of different requests may interleave —
    /// that is what the request id tag is for.
    write: Mutex<()>,
    max_frame: usize,
    stats: Arc<NetStats>,
    /// Set when the client vanished or the connection is being torn
    /// down; workers skip their replies.
    closed: AtomicBool,
    /// Request id → its governance guard, for the whole life of the
    /// request (queued through replied). The reader trips these on
    /// `Cancel` frames and on client disappearance.
    inflight: Mutex<HashMap<u64, Arc<QueryGuard>>>,
}

impl Conn {
    fn send_payload(&self, payload: &[u8]) -> Result<()> {
        if self.closed.load(Ordering::Relaxed) {
            return Err(GraqlError::net("connection closed"));
        }
        let _w = self.write.lock().expect("conn write lock poisoned");
        let mut w = &self.stream;
        write_frame(&mut w, payload, self.max_frame)?;
        self.stats.msgs_out.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_out
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        Ok(())
    }

    fn send(&self, request_id: u64, msg: &Msg) -> Result<()> {
        self.send_payload(&proto::encode_tagged(request_id, msg))
    }

    /// Marks the connection dead and unblocks the reader (shutting the
    /// socket down makes its next read return immediately).
    fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Trips one in-flight request's guard (or all of them for id 0 —
    /// the legacy whole-connection cancel).
    fn cancel(&self, request_id: u64) {
        let inflight = self.inflight.lock().expect("inflight poisoned");
        if request_id == 0 {
            for g in inflight.values() {
                g.cancel();
            }
        } else if let Some(g) = inflight.get(&request_id) {
            g.cancel();
        }
    }

    fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("inflight poisoned").len()
    }
}

fn accept_loop(
    listener: TcpListener,
    server: Server,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    gate: Arc<ExecGate>,
    slow: Option<Arc<SlowLog>>,
) {
    // The bounded worker pool, shared by every connection. The floor
    // matters on small machines: workers spend much of their time parked
    // on the admission gate or socket writes, and with a single worker
    // one slow query would monopolize job pickup — requests behind it
    // could not even reach the gate to be shed.
    let n_workers = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8)
            .max(4)
    } else {
        opts.workers
    };
    let sched = Arc::new(Scheduler::new());
    let pool: Vec<JoinHandle<()>> = (0..n_workers)
        .map(|_| {
            let sched = Arc::clone(&sched);
            let server = server.clone();
            let opts = opts.clone();
            let stats = Arc::clone(&stats);
            let gate = Arc::clone(&gate);
            let slow = slow.clone();
            std::thread::spawn(move || {
                while let Some(job) = sched.next() {
                    execute_job(&job, &server, &opts, &stats, &gate, slow.as_deref());
                    job.conn
                        .inflight
                        .lock()
                        .expect("inflight poisoned")
                        .remove(&job.id);
                }
            })
        })
        .collect();

    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn_id: u64 = 1;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Drain-on-overload: past the connection cap (or with the
                // accept-refuse failpoint armed) the new connection gets a
                // retryable overload error and is closed, while existing
                // connections keep draining.
                let active = stats.connections_active.load(Ordering::Relaxed);
                let refuse_armed = {
                    #[cfg(feature = "failpoints")]
                    {
                        matches!(
                            graql_types::failpoints::hit("net/server/accept-refuse"),
                            Some(graql_types::failpoints::Action::Refuse)
                        )
                    }
                    #[cfg(not(feature = "failpoints"))]
                    {
                        false
                    }
                };
                if active >= opts.max_connections || refuse_armed {
                    refuse_connection(stream, active, &opts, &stats);
                    continue;
                }
                let conn_id = next_conn_id;
                next_conn_id += 1;
                let server = server.clone();
                let opts = opts.clone();
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                let sched = Arc::clone(&sched);
                readers.push(std::thread::spawn(move || {
                    stats.connections_total.fetch_add(1, Ordering::Relaxed);
                    stats.connections_active.fetch_add(1, Ordering::Relaxed);
                    // Reader errors are connection-fatal but never
                    // server-fatal.
                    let _ = handle_connection(
                        stream, conn_id, &server, &opts, &shutdown, &stats, &sched,
                    );
                    stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                }));
                readers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Drain: readers notice the flag once their in-flight table is empty
    // (workers keep executing meanwhile), then the pool spins down.
    for h in readers {
        let _ = h.join();
    }
    sched.stop();
    for h in pool {
        let _ = h.join();
    }
}

/// Sheds one connection at accept time: best-effort retryable error
/// frame, then close. The client's retry loop backs off and reconnects.
fn refuse_connection(stream: TcpStream, active: u64, opts: &ServeOptions, stats: &NetStats) {
    stats.connections_refused.fetch_add(1, Ordering::Relaxed);
    // The accepted socket may inherit the listener's nonblocking mode on
    // some platforms; the refusal write should block (briefly).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(POLL));
    let payload = proto::encode_tagged(
        0,
        &error_msg(&GraqlError::net_retryable(format!(
            "server overloaded ({active} active connections), try again later"
        ))),
    );
    let mut w = &stream;
    let _ = write_frame(&mut w, &payload, opts.max_frame);
}

/// A connection's framed transport with counters — used by the paths a
/// single thread owns (handshake, replication streaming). Concurrent
/// senders go through [`Conn`] instead.
struct Wire<'a> {
    stream: &'a TcpStream,
    stats: &'a NetStats,
    max_frame: usize,
}

impl Wire<'_> {
    fn send(&self, request_id: u64, msg: &Msg) -> Result<()> {
        let payload = proto::encode_tagged(request_id, msg);
        let mut w = self.stream;
        write_frame(&mut w, &payload, self.max_frame)?;
        self.stats.msgs_out.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_out
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> Result<FrameRead> {
        let mut r = self.stream;
        let got = read_frame(&mut r, self.max_frame)?;
        if let FrameRead::Frame(p) = &got {
            self.stats.msgs_in.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_in
                .fetch_add(p.len() as u64 + 4, Ordering::Relaxed);
        }
        Ok(got)
    }
}

/// The per-connection reader: handshake, then the demux loop — control
/// traffic answered inline, `Submit`s enqueued on the shared scheduler,
/// `Cancel`s tripped into the in-flight table.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    conn_id: u64,
    server: &Server,
    opts: &ServeOptions,
    shutdown: &AtomicBool,
    stats: &Arc<NetStats>,
    sched: &Scheduler,
) -> Result<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| GraqlError::net(format!("nodelay: {e}")))?;
    // Short read timeout: the reader wakes at frame boundaries to poll
    // the shutdown flag and account idle time.
    stream
        .set_read_timeout(Some(POLL))
        .map_err(|e| GraqlError::net(format!("read timeout: {e}")))?;
    stream
        .set_write_timeout(Some(opts.request_timeout))
        .map_err(|e| GraqlError::net(format!("write timeout: {e}")))?;

    let wire = Wire {
        stream: &stream,
        stats,
        max_frame: opts.max_frame,
    };

    let mut session = match handshake(&wire, server, opts, shutdown)? {
        Some(s) => s,
        None => return Ok(()), // rejected or closed; error frame already sent
    };

    let conn = Arc::new(Conn {
        id: conn_id,
        stream: stream
            .try_clone()
            .map_err(|e| GraqlError::net(format!("cannot clone stream: {e}")))?,
        user: session.user().to_string(),
        write: Mutex::new(()),
        max_frame: opts.max_frame,
        stats: Arc::clone(stats),
        closed: AtomicBool::new(false),
        inflight: Mutex::new(HashMap::new()),
    });

    // Graceful degradation: a connection sending garbage gets error-frame
    // replies until its budget is spent, then a hangup. Frame-level
    // desync (unreadable framing) still closes immediately below.
    let mut error_budget = opts.error_budget;
    let mut idle = Duration::ZERO;
    loop {
        // Shutdown drains: leave only when nothing of ours is queued or
        // executing (workers still need the socket for their replies).
        if shutdown.load(Ordering::SeqCst) && conn.inflight_len() == 0 {
            return Ok(());
        }
        let frame = match wire.recv() {
            Ok(FrameRead::TimedOut) => {
                if conn.inflight_len() > 0 {
                    idle = Duration::ZERO; // busy, not idle
                    continue;
                }
                idle += POLL;
                if idle >= opts.idle_timeout {
                    // Retryable: a fresh connection fixes an idle hangup.
                    let _ = conn.send(
                        0,
                        &Msg::Error {
                            status: GraqlError::net_retryable("").wire_status(),
                            code: graql_types::codes::NET_OTHER.to_string(),
                            message: format!("idle for {}s, closing", idle.as_secs()),
                        },
                    );
                    return Ok(());
                }
                continue;
            }
            Ok(FrameRead::Closed) => {
                // The client vanished. Queued-but-unstarted requests are
                // skipped (workers check `closed` before executing), but
                // anything already executing runs to completion — a lost
                // client is indistinguishable from a lost reply, and
                // killing its writes would make "did my DDL land?"
                // nondeterministic. The per-request deadline still
                // bounds the zombie work.
                conn.closed.store(true, Ordering::Relaxed);
                return Ok(());
            }
            Ok(FrameRead::Frame(p)) => p,
            Err(e) => {
                conn.closed.store(true, Ordering::Relaxed);
                return Err(e);
            }
        };
        let (request_id, msg) = match proto::decode_tagged(&frame) {
            Ok(x) => x,
            Err(e) => {
                // Unparseable frame (well-delimited, bad contents —
                // e.g. corrupted in transit): report it as retryable
                // so the client re-sends, and consume budget. Echo the
                // id prefix when it survived.
                let rid = frame
                    .get(..8)
                    .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                    .unwrap_or(0);
                let _ = conn.send(
                    rid,
                    &error_msg(&GraqlError::net_retryable(format!(
                        "could not decode request: {e}"
                    ))),
                );
                error_budget = error_budget.saturating_sub(1);
                if error_budget == 0 {
                    return Err(e);
                }
                continue;
            }
        };
        idle = Duration::ZERO;

        let started = Instant::now();
        match msg {
            Msg::Submit { ir } => {
                // Per-connection backpressure: a bounded in-flight table
                // (the scheduler queue is its mirror) sheds excess
                // submits with the same retryable busy error the gate
                // uses, so a runaway pipeline degrades loudly.
                let guard = {
                    let mut inflight = conn.inflight.lock().expect("inflight poisoned");
                    if inflight.len() >= opts.max_inflight_per_conn {
                        None
                    } else {
                        let mut budget: QueryBudget = server.query_budget();
                        budget.deadline = Some(match budget.deadline {
                            Some(d) => d.min(opts.request_timeout),
                            None => opts.request_timeout,
                        });
                        let guard = Arc::new(QueryGuard::new(budget));
                        inflight.insert(request_id, Arc::clone(&guard));
                        Some(guard)
                    }
                };
                match guard {
                    Some(guard) => sched.enqueue(Job {
                        conn: Arc::clone(&conn),
                        id: request_id,
                        ir,
                        guard,
                        received: started,
                    }),
                    None => {
                        stats.queries_shed.fetch_add(1, Ordering::Relaxed);
                        server.metrics().note_outcome(QueryOutcome::Shed);
                        conn.send(
                            request_id,
                            &error_msg(&GraqlError::net_retryable(format!(
                                "connection has {} requests in flight, try again later",
                                opts.max_inflight_per_conn
                            ))),
                        )?;
                    }
                }
            }
            Msg::Cancel => {
                // Targets the tagged request id; 0 cancels everything in
                // flight. A Cancel racing a reply that already went out
                // finds no entry and is harmless.
                conn.cancel(request_id);
            }
            Msg::Check { text } => {
                let diags = session.check_script(&text);
                stats.note_request(started.elapsed().as_micros() as u64);
                conn.send(
                    request_id,
                    &Msg::CheckReport {
                        diags: diags_to_wire(&diags),
                    },
                )?;
            }
            Msg::Describe => {
                let result = session.describe();
                stats.note_request(started.elapsed().as_micros() as u64);
                match result {
                    Ok(mut text) => {
                        text.push('\n');
                        text.push_str(&stats.render());
                        conn.send(request_id, &Msg::DescribeReport { text })?;
                    }
                    Err(e) => conn.send(request_id, &error_msg(&e))?,
                }
            }
            Msg::Metrics => {
                stats.note_request(started.elapsed().as_micros() as u64);
                conn.send(
                    request_id,
                    &Msg::MetricsReport {
                        text: metrics_text(server, stats),
                    },
                )?;
            }
            Msg::Ping => conn.send(request_id, &Msg::Pong)?,
            Msg::Promote => {
                if session.role() != Role::Admin {
                    conn.send(
                        request_id,
                        &error_msg(&GraqlError::exec(format!(
                            "user '{}' (analyst) may not promote this server",
                            session.user()
                        ))),
                    )?;
                    continue;
                }
                let was = server.promote();
                if let ReplRole::Replica { primary } = &was {
                    eprintln!("gems-serve: promoted to primary (was replica of {primary})");
                }
                stats.note_request(started.elapsed().as_micros() as u64);
                conn.send(
                    request_id,
                    &Msg::Done {
                        stmts: 0,
                        micros: started.elapsed().as_micros() as u64,
                    },
                )?;
            }
            Msg::ReplSubscribe { from_lsn } => {
                if session.role() != Role::Admin {
                    conn.send(
                        request_id,
                        &error_msg(&GraqlError::exec(format!(
                            "user '{}' (analyst) may not subscribe to the WAL stream",
                            session.user()
                        ))),
                    )?;
                    continue;
                }
                if !server.is_durable() {
                    conn.send(
                        request_id,
                        &error_msg(&GraqlError::net(
                            "replication requires a durable server (start with --durable)",
                        )),
                    )?;
                    continue;
                }
                // The connection becomes a one-way WAL stream (plus acks
                // coming back), every frame tagged with the subscribe
                // request's id; it never returns to request dispatch.
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "unknown".to_string());
                return serve_replication(
                    &wire, request_id, server, stats, shutdown, from_lsn, &peer,
                );
            }
            Msg::Goodbye => {
                // Same contract as a vanished client: queued work is
                // skipped, running work completes (replies to a
                // said-goodbye client just fail to write).
                conn.closed.store(true, Ordering::Relaxed);
                return Ok(());
            }
            other => {
                conn.send(
                    request_id,
                    &error_msg(&GraqlError::net(format!(
                        "unexpected message {other:?} (session already established)"
                    ))),
                )?;
                error_budget = error_budget.saturating_sub(1);
                if error_budget == 0 {
                    return Err(GraqlError::net("per-connection error budget exhausted"));
                }
            }
        }
    }
}

/// Worker-side execution of one queued `Submit`: admission control, the
/// query itself (on this worker thread — cancellation arrives via the
/// guard the reader holds), then the tagged reply frames.
fn execute_job(
    job: &Job,
    server: &Server,
    opts: &ServeOptions,
    stats: &NetStats,
    gate: &ExecGate,
    slow: Option<&SlowLog>,
) {
    let conn = &*job.conn;
    if conn.closed.load(Ordering::Relaxed) {
        return; // client already gone; nothing to execute or reply to
    }
    // Admission control: acquire an execution slot or shed.
    let shed_armed = {
        #[cfg(feature = "failpoints")]
        {
            matches!(
                graql_types::failpoints::hit("net/server/shed"),
                Some(graql_types::failpoints::Action::Refuse)
            )
        }
        #[cfg(not(feature = "failpoints"))]
        {
            false
        }
    };
    // The queue-wait budget is anchored at enqueue, so time spent in the
    // scheduler waiting for a worker counts against it: a request stuck
    // behind a saturated pool sheds as soon as a worker sees it instead
    // of waiting the full budget again. A free slot still admits.
    let queue_budget = (job.received + opts.queue_wait).saturating_duration_since(Instant::now());
    if shed_armed || !gate.admit(conn.id, queue_budget) {
        stats.queries_shed.fetch_add(1, Ordering::Relaxed);
        server.metrics().note_outcome(QueryOutcome::Shed);
        let _ = conn.send(
            job.id,
            &error_msg(&GraqlError::net_retryable(format!(
                "server busy ({} queries executing), try again later",
                opts.max_concurrency
            ))),
        );
        return;
    }
    run_submit(job, server, stats, slow);
    gate.release(conn.id);
}

/// Executes one admitted `Submit` and writes its reply. The guard's
/// deadline was anchored when the request arrived, so queue wait counts
/// against it; a runaway query aborts cooperatively (typed
/// deadline/budget error) and the worker is immediately reusable.
fn run_submit(job: &Job, server: &Server, stats: &NetStats, slow: Option<&SlowLog>) {
    let conn = &*job.conn;
    // Delay-only site: simulates a slow query under the request deadline
    // without wall-clock-sized sleeps in tests.
    graql_types::failpoint!("net/server/exec-delay");

    let guard = &*job.guard;
    // Slow-query logging needs the stage breakdown, so the whole request
    // runs with a profile armed; without a slow log the obs stays `None`
    // and execution keeps the zero-overhead path.
    let profile = slow.map(|_| QueryProfile::new());
    let obs = profile.as_ref();

    // Sessions are cheap (an `Arc` + user + role): minting one per
    // request lets any number of a connection's requests execute
    // concurrently on different workers.
    let result = match server.connect(&conn.user) {
        Ok(mut session) => session.execute_ir_observed(&job.ir, guard, obs),
        Err(e) => Err(e),
    };

    let elapsed = job.received.elapsed();
    stats.note_request(elapsed.as_micros() as u64);
    stats
        .query_peak_bytes
        .fetch_max(guard.bytes(), Ordering::Relaxed);
    match &result {
        Err(GraqlError::Deadline(_)) => {
            stats
                .queries_deadline_killed
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(GraqlError::Cancelled(_)) => {
            stats.queries_cancelled.fetch_add(1, Ordering::Relaxed);
        }
        Err(GraqlError::Budget(_)) => {
            stats.queries_budget_killed.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    if let (Some(slow), Some(profile)) = (slow, profile.as_ref()) {
        if elapsed >= slow.threshold {
            let outcome = match &result {
                Ok(_) => QueryOutcome::Ok,
                Err(e) => QueryOutcome::from_error(e),
            };
            // The IR deliberately drops source text, so the statement
            // field names the transport rather than echoing the script.
            let report = ProfileReport::seal(
                "<submit>".to_string(),
                String::new(),
                profile,
                guard.rows(),
                guard.bytes(),
            );
            server.metrics().slow_queries.inc();
            slow.note(
                &conn.user,
                elapsed.as_micros() as u64,
                outcome.name(),
                &report,
            );
        }
    }
    #[cfg(feature = "failpoints")]
    if graql_types::failpoints::hit("net/server/drop-before-reply").is_some() {
        // The request executed but its reply is lost — the "server died
        // before replying" fault. Closing the socket unblocks the reader.
        conn.close();
        return;
    }
    // Reply; write failures mean the client is gone — mark the
    // connection closed so the reader and other workers stop too.
    let replied = (|| -> Result<()> {
        match result {
            Ok(outputs) => {
                let stmts = outputs.len() as u32;
                for out in &outputs {
                    for frame in output_frames(job.id, out) {
                        conn.send_payload(&frame)?;
                    }
                }
                conn.send(
                    job.id,
                    &Msg::Done {
                        stmts,
                        micros: elapsed.as_micros() as u64,
                    },
                )?;
            }
            Err(e) => conn.send(job.id, &error_msg(&e))?,
        }
        Ok(())
    })();
    if replied.is_err() && !conn.closed.load(Ordering::Relaxed) {
        conn.close();
    }
}

/// Serves one replica's WAL subscription until the connection drops, the
/// replica says `Goodbye`, or the server shuts down. Every stream frame
/// is tagged with the subscribe request's id.
///
/// Ordering is the crux: the commit-feed subscription is registered
/// *before* the bootstrap view is taken, so no batch can fall between
/// "what the bootstrap saw" and "what the channel delivers" — overlap is
/// possible (a batch both in the bootstrap backlog and the channel) and
/// resolved by LSN (`last_sent`), a gap is not. The replica applies
/// idempotently by LSN as a second line of defense.
fn serve_replication(
    wire: &Wire<'_>,
    sub_id: u64,
    server: &Server,
    stats: &NetStats,
    shutdown: &AtomicBool,
    from_lsn: u64,
    peer: &str,
) -> Result<()> {
    let rx = server.subscribe_commits()?;
    let boot = server.repl_bootstrap(from_lsn)?;
    stats
        .repl_replicas_connected
        .fetch_add(1, Ordering::Relaxed);
    let result = stream_to_replica(
        wire, sub_id, server, stats, shutdown, from_lsn, peer, rx, boot,
    );
    stats
        .repl_replicas_connected
        .fetch_sub(1, Ordering::Relaxed);
    stats.forget_repl_lag(peer);
    result
}

#[allow(clippy::too_many_arguments)]
fn stream_to_replica(
    wire: &Wire<'_>,
    sub_id: u64,
    server: &Server,
    stats: &NetStats,
    shutdown: &AtomicBool,
    from_lsn: u64,
    peer: &str,
    rx: std::sync::mpsc::Receiver<graql_core::ShippedBatch>,
    boot: graql_core::ReplBootstrap,
) -> Result<()> {
    let mut last_sent = from_lsn.saturating_sub(1);
    // Initial sync: the replica is behind the last checkpoint, so the log
    // alone cannot catch it up — ship the snapshot files first. `last` is
    // set on the final chunk of the final file; the replica loads the
    // directory and re-bases its log at the watermark when it sees it.
    if let Some((watermark, files)) = &boot.snapshot {
        last_sent = last_sent.max(watermark.saturating_sub(1));
        let n_files = files.len();
        for (fi, (name, data)) in files.iter().enumerate() {
            let chunks: Vec<&[u8]> = if data.is_empty() {
                vec![&[]]
            } else {
                data.chunks(SNAPSHOT_CHUNK).collect()
            };
            let n_chunks = chunks.len();
            for (ci, chunk) in chunks.into_iter().enumerate() {
                wire.send(
                    sub_id,
                    &Msg::ReplSnapshot {
                        watermark: *watermark,
                        name: name.clone(),
                        data: chunk.to_vec(),
                        last: fi + 1 == n_files && ci + 1 == n_chunks,
                    },
                )?;
                stats.repl_snapshot_chunks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut backlog = boot.backlog;
    let mut last_heartbeat = Instant::now();
    loop {
        // Everything sendable right now: the bootstrap backlog first,
        // then whatever the commit thread shipped since.
        while let Ok(batch) = rx.try_recv() {
            backlog.push(batch);
        }
        for batch in backlog.drain(..) {
            if batch.last_lsn <= last_sent {
                continue; // overlap between bootstrap view and live feed
            }
            graql_types::failpoint!("net/repl/stream", GraqlError::net);
            let span = batch.last_lsn - batch.first_lsn + 1;
            wire.send(
                sub_id,
                &Msg::ReplBatch {
                    first_lsn: batch.first_lsn,
                    last_lsn: batch.last_lsn,
                    frames: batch.frames,
                },
            )?;
            stats.repl_batches_shipped.fetch_add(1, Ordering::Relaxed);
            stats
                .repl_records_shipped
                .fetch_add(span, Ordering::Relaxed);
            last_sent = batch.last_lsn;
            last_heartbeat = Instant::now();
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if last_heartbeat.elapsed() >= REPL_HEARTBEAT {
            wire.send(
                sub_id,
                &Msg::ReplHeartbeat {
                    durable_lsn: server.wal_durable_lsn(),
                },
            )?;
            stats.repl_heartbeats.fetch_add(1, Ordering::Relaxed);
            last_heartbeat = Instant::now();
        }
        // Wait for acks (or anything else) with the standard short read
        // timeout — this is also the stream's pacing delay: new batches
        // are drained at most POLL after their fsync.
        match wire.recv()? {
            FrameRead::TimedOut => {}
            FrameRead::Closed => return Ok(()),
            FrameRead::Frame(p) => match proto::decode_tagged(&p) {
                Ok((_, Msg::ReplAck { lsn })) => {
                    stats.repl_acks.fetch_add(1, Ordering::Relaxed);
                    stats.note_repl_lag(peer, server.wal_durable_lsn().saturating_sub(lsn));
                }
                Ok((_, Msg::Goodbye)) => return Ok(()),
                Ok((_, other)) => {
                    return Err(GraqlError::net(format!(
                        "unexpected message {other:?} on a replication stream"
                    )))
                }
                Err(e) => return Err(e),
            },
        }
    }
}

/// Runs the server side of version negotiation and authentication.
/// Returns `None` when the connection was rejected (error frame sent) or
/// closed before a `Hello`. The reply echoes the `Hello` frame's id.
fn handshake(
    wire: &Wire<'_>,
    server: &Server,
    opts: &ServeOptions,
    shutdown: &AtomicBool,
) -> Result<Option<Session>> {
    let mut idle = Duration::ZERO;
    let (hello_id, msg) = loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match wire.recv()? {
            FrameRead::TimedOut => {
                idle += POLL;
                if idle >= opts.idle_timeout {
                    return Ok(None);
                }
            }
            FrameRead::Closed => return Ok(None),
            FrameRead::Frame(p) => match proto::decode_tagged(&p) {
                Ok(m) => break m,
                Err(e) => {
                    // A garbled Hello is transport corruption, not a bad
                    // client: re-handshaking on a fresh connection is
                    // always safe, so tell the client to retry.
                    let _ = wire.send(
                        0,
                        &error_msg(&GraqlError::net_retryable(format!(
                            "could not decode handshake: {e}"
                        ))),
                    );
                    return Ok(None);
                }
            },
        }
    };
    let (proto_version, user) = match msg {
        Msg::Hello { proto, user } => (proto, user),
        other => {
            wire.send(
                hello_id,
                &error_msg(&GraqlError::net(format!("expected Hello, got {other:?}"))),
            )?;
            return Ok(None);
        }
    };
    if proto_version != PROTO_VERSION {
        wire.send(
            hello_id,
            &error_msg(&GraqlError::net(format!(
                "protocol version mismatch: client speaks v{proto_version}, server speaks v{PROTO_VERSION}"
            ))),
        )?;
        return Ok(None);
    }
    match server.connect(&user) {
        Ok(session) => {
            wire.send(
                hello_id,
                &Msg::Welcome {
                    proto: PROTO_VERSION,
                    role: session.role().wire_tag(),
                    server: opts.banner.clone(),
                },
            )?;
            Ok(Some(session))
        }
        Err(e) => {
            wire.send(hello_id, &error_msg(&e))?;
            Ok(None)
        }
    }
}

/// Convenience for binaries: log that we are up in a greppable, flushed
/// line so process supervisors (CI) can wait for readiness.
pub fn announce(out: &mut impl Write, addr: SocketAddr) {
    let _ = writeln!(out, "gems-serve listening on {addr}");
    let _ = out.flush();
}
