//! The networked GEMS front-end server.
//!
//! Thread-per-connection over `std::net`: one nonblocking accept loop
//! polling a shutdown flag, one worker thread per client. Workers read
//! with a short socket timeout so they notice shutdown at frame
//! boundaries while never interrupting an in-flight request — graceful
//! shutdown therefore *drains*: every request that started finishes and
//! its reply is flushed before the connection closes.
//!
//! All sessions share one [`graql_core::Server`]; its internal locks (see
//! `graql_core::server`) let read-only scripts from different
//! connections execute concurrently while DDL/ingest serialize.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graql_core::{ReplRole, Role, Server, Session};
use graql_types::{
    GraqlError, ProfileReport, QueryBudget, QueryGuard, QueryOutcome, QueryProfile, Result,
};

use crate::frame::{read_frame, write_frame, FrameRead, MAX_FRAME};
use crate::proto::{self, diags_to_wire, error_msg, output_msgs, Msg, PROTO_VERSION};

/// How often blocked loops (accept, worker reads) wake to poll the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Replication stream: heartbeat cadence on an idle subscription (tells
/// the replica the primary is alive and how far its durable LSN is).
const REPL_HEARTBEAT: Duration = Duration::from_secs(1);

/// Replication snapshot transfer: one file is shipped in chunks of at
/// most this many bytes, so a multi-gigabyte checkpoint never needs a
/// single oversized frame.
const SNAPSHOT_CHUNK: usize = 1 << 20;

/// Tuning for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address; port 0 picks a free port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Hard per-request deadline, folded into the request's
    /// [`QueryGuard`]: execution aborts cooperatively at its next
    /// checkpoint with a typed deadline error and the worker thread is
    /// immediately reusable.
    pub request_timeout: Duration,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// Hard cap on one frame's payload, both directions.
    pub max_frame: usize,
    /// Server identification sent in `Welcome`.
    pub banner: String,
    /// How many malformed/unexpected messages one connection may send
    /// before the server hangs up on it. Each offence gets an error frame
    /// reply; the connection survives until the budget is spent.
    pub error_budget: u32,
    /// Above this many active connections, new connections are refused
    /// with a retryable overload error while the existing ones drain.
    pub max_connections: u64,
    /// Admission control: at most this many `Submit` requests execute
    /// concurrently across all connections. Excess requests wait up to
    /// [`ServeOptions::queue_wait`] for a slot, then are shed with a
    /// retryable "server busy" error the client's backoff understands.
    pub max_concurrency: u64,
    /// How long an admitted-but-queued request may wait for an execution
    /// slot before being shed.
    pub queue_wait: Duration,
    /// When set, serve the engine + wire metrics as Prometheus exposition
    /// text over HTTP on this address (port 0 picks a free port, see
    /// [`NetServer::metrics_addr`]).
    pub metrics_addr: Option<String>,
    /// When set, every `Submit` runs with a [`QueryProfile`] armed and
    /// requests slower than this many milliseconds emit one JSON line
    /// (profile attached) to the slow-query log.
    pub slow_query_ms: Option<u64>,
    /// Slow-query log destination; `None` writes to stderr.
    pub slow_query_log: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            request_timeout: Duration::from_secs(60),
            idle_timeout: Duration::from_secs(300),
            max_frame: MAX_FRAME,
            banner: "gems-serve/0.1".to_string(),
            error_budget: 8,
            max_connections: 256,
            max_concurrency: 64,
            queue_wait: Duration::from_millis(200),
            metrics_addr: None,
            slow_query_ms: None,
            slow_query_log: None,
        }
    }
}

/// The structured slow-query log: one JSON line per offending request,
/// with the request's sealed profile attached.
struct SlowLog {
    threshold: Duration,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl SlowLog {
    fn open(opts: &ServeOptions) -> Result<Option<Arc<SlowLog>>> {
        let Some(ms) = opts.slow_query_ms else {
            return Ok(None);
        };
        let sink: Box<dyn Write + Send> = match &opts.slow_query_log {
            Some(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| {
                        GraqlError::net(format!("cannot open slow-query log {path}: {e}"))
                    })?,
            ),
            None => Box::new(std::io::stderr()),
        };
        Ok(Some(Arc::new(SlowLog {
            threshold: Duration::from_millis(ms),
            sink: Mutex::new(sink),
        })))
    }

    /// Appends one line; log I/O failures never fail the request.
    fn note(&self, user: &str, micros: u64, outcome: &str, report: &ProfileReport) {
        let line = format!(
            "{{\"slow_query\":{{\"user\":\"{user}\",\"micros\":{micros},\
             \"outcome\":\"{outcome}\",\"profile\":{}}}}}",
            report.to_json()
        );
        if let Ok(mut sink) = self.sink.lock() {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }
}

/// The admission gate: a counting semaphore with a bounded queue wait.
/// Requests past `max` concurrent executions block on the condvar; if no
/// slot frees within the queue wait they are shed (load shedding), which
/// keeps queue depth — and therefore tail latency — bounded.
#[derive(Debug)]
struct ExecGate {
    active: Mutex<u64>,
    freed: Condvar,
    max: u64,
}

impl ExecGate {
    fn new(max: u64) -> ExecGate {
        ExecGate {
            active: Mutex::new(0),
            freed: Condvar::new(),
            max: max.max(1),
        }
    }

    /// Acquires an execution slot, waiting at most `queue_wait`. Returns
    /// false when the request must be shed.
    fn admit(&self, queue_wait: Duration) -> bool {
        let deadline = Instant::now() + queue_wait;
        let mut active = self.active.lock().expect("gate poisoned");
        loop {
            if *active < self.max {
                *active += 1;
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .freed
                .wait_timeout(active, deadline - now)
                .expect("gate poisoned");
            active = guard;
        }
    }

    fn release(&self) {
        let mut active = self.active.lock().expect("gate poisoned");
        *active = active.saturating_sub(1);
        drop(active);
        self.freed.notify_one();
    }
}

/// Aggregate wire counters across all connections, updated lock-free and
/// folded into the `describe` service's report.
#[derive(Debug, Default)]
pub struct NetStats {
    pub connections_total: AtomicU64,
    pub connections_active: AtomicU64,
    /// Connections refused at accept time (overload shedding).
    pub connections_refused: AtomicU64,
    pub msgs_in: AtomicU64,
    pub msgs_out: AtomicU64,
    pub bytes_in: AtomicU64,
    pub bytes_out: AtomicU64,
    pub requests: AtomicU64,
    pub request_micros_total: AtomicU64,
    pub request_micros_max: AtomicU64,
    /// Governance: requests shed at the admission gate (no free slot
    /// within the queue wait).
    pub queries_shed: AtomicU64,
    /// Governance: requests killed by a wire `Cancel` (or the client
    /// vanishing mid-request).
    pub queries_cancelled: AtomicU64,
    /// Governance: requests killed by the per-request deadline.
    pub queries_deadline_killed: AtomicU64,
    /// Governance: requests killed by a row/byte budget.
    pub queries_budget_killed: AtomicU64,
    /// Governance: largest byte footprint (RSS proxy) any single query
    /// accounted, successful or not.
    pub query_peak_bytes: AtomicU64,
    /// Client-side resilience: requests re-sent after a retryable error.
    /// Counted by [`crate::RemoteSession`] when it shares this registry
    /// (the replica tailer does), so a node's own outbound retries show
    /// up in its metrics.
    pub retries: AtomicU64,
    /// Client-side resilience: connections re-established (same or
    /// different endpoint).
    pub reconnects: AtomicU64,
    /// Client-side resilience: reconnects that landed on a *different*
    /// endpoint than the previous one (read failover / write redirect).
    pub failovers: AtomicU64,
    /// Replication source: replicas currently subscribed to this node.
    pub repl_replicas_connected: AtomicU64,
    /// Replication source: fsynced WAL batches shipped to replicas.
    pub repl_batches_shipped: AtomicU64,
    /// Replication source: WAL records shipped (sum of batch LSN spans).
    pub repl_records_shipped: AtomicU64,
    /// Replication source: snapshot chunks sent during initial sync.
    pub repl_snapshot_chunks: AtomicU64,
    /// Replication source: acks received from replicas.
    pub repl_acks: AtomicU64,
    /// Replication source: heartbeats sent on idle streams.
    pub repl_heartbeats: AtomicU64,
    /// Per-replica lag (primary durable LSN minus the replica's last
    /// acked LSN), keyed by peer address. Entries vanish when the
    /// subscription drops.
    pub repl_lag: Mutex<BTreeMap<String, u64>>,
}

impl NetStats {
    fn note_request(&self, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.request_micros_total
            .fetch_add(micros, Ordering::Relaxed);
        self.request_micros_max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Updates one replica's lag entry (primary side, on each ack).
    pub fn note_repl_lag(&self, peer: &str, lag: u64) {
        if let Ok(mut lags) = self.repl_lag.lock() {
            lags.insert(peer.to_string(), lag);
        }
    }

    /// Drops one replica's lag entry (subscription ended).
    pub fn forget_repl_lag(&self, peer: &str) {
        if let Ok(mut lags) = self.repl_lag.lock() {
            lags.remove(peer);
        }
    }

    /// The largest per-replica lag, and the lag table itself.
    fn repl_lag_snapshot(&self) -> (u64, Vec<(String, u64)>) {
        let lags: Vec<(String, u64)> = self
            .repl_lag
            .lock()
            .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default();
        let max = lags.iter().map(|(_, v)| *v).max().unwrap_or(0);
        (max, lags)
    }

    /// Renders the `net:` section appended to `describe` output.
    pub fn render(&self) -> String {
        let requests = self.requests.load(Ordering::Relaxed);
        let total = self.request_micros_total.load(Ordering::Relaxed);
        let mean = total.checked_div(requests).unwrap_or(0);
        let mut out = format!(
            "net:\n  connections: {} active, {} total, {} refused\n  messages: {} in, {} out\n  bytes: {} in, {} out\n  requests: {} (mean {} us, max {} us)\n  governance: {} shed, {} cancelled, {} deadline-killed, {} budget-killed, peak query bytes {}\n  resilience: {} retries, {} reconnects, {} failovers\n",
            self.connections_active.load(Ordering::Relaxed),
            self.connections_total.load(Ordering::Relaxed),
            self.connections_refused.load(Ordering::Relaxed),
            self.msgs_in.load(Ordering::Relaxed),
            self.msgs_out.load(Ordering::Relaxed),
            self.bytes_in.load(Ordering::Relaxed),
            self.bytes_out.load(Ordering::Relaxed),
            requests,
            mean,
            self.request_micros_max.load(Ordering::Relaxed),
            self.queries_shed.load(Ordering::Relaxed),
            self.queries_cancelled.load(Ordering::Relaxed),
            self.queries_deadline_killed.load(Ordering::Relaxed),
            self.queries_budget_killed.load(Ordering::Relaxed),
            self.query_peak_bytes.load(Ordering::Relaxed),
            self.retries.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
        );
        use std::fmt::Write as _;
        let (_, lags) = self.repl_lag_snapshot();
        let _ = writeln!(
            out,
            "repl:\n  replicas: {} connected\n  shipped: {} batches, {} records, {} snapshot chunks\n  acks: {}, heartbeats: {}",
            self.repl_replicas_connected.load(Ordering::Relaxed),
            self.repl_batches_shipped.load(Ordering::Relaxed),
            self.repl_records_shipped.load(Ordering::Relaxed),
            self.repl_snapshot_chunks.load(Ordering::Relaxed),
            self.repl_acks.load(Ordering::Relaxed),
            self.repl_heartbeats.load(Ordering::Relaxed),
        );
        for (peer, lag) in lags {
            let _ = writeln!(out, "  lag {peer}: {lag} records");
        }
        out
    }

    /// Renders the wire counters as Prometheus exposition lines, appended
    /// to the engine registry's rendering by [`metrics_text`].
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_net_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_net_{name} counter");
            let _ = writeln!(out, "graql_net_{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_net_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_net_{name} gauge");
            let _ = writeln!(out, "graql_net_{name} {v}");
        };
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        gauge(
            &mut out,
            "connections_active",
            "Currently open client connections.",
            c(&self.connections_active),
        );
        counter(
            &mut out,
            "connections_total",
            "Client connections accepted since start.",
            c(&self.connections_total),
        );
        counter(
            &mut out,
            "connections_refused_total",
            "Connections refused at accept time (overload).",
            c(&self.connections_refused),
        );
        counter(
            &mut out,
            "messages_in_total",
            "Wire messages received.",
            c(&self.msgs_in),
        );
        counter(
            &mut out,
            "messages_out_total",
            "Wire messages sent.",
            c(&self.msgs_out),
        );
        counter(
            &mut out,
            "bytes_in_total",
            "Payload bytes received (including frame headers).",
            c(&self.bytes_in),
        );
        counter(
            &mut out,
            "bytes_out_total",
            "Payload bytes sent (including frame headers).",
            c(&self.bytes_out),
        );
        counter(
            &mut out,
            "requests_total",
            "Requests served across all connections.",
            c(&self.requests),
        );
        counter(
            &mut out,
            "queries_shed_total",
            "Requests shed at the admission gate.",
            c(&self.queries_shed),
        );
        counter(
            &mut out,
            "queries_cancelled_total",
            "Requests killed by a wire Cancel or a vanished client.",
            c(&self.queries_cancelled),
        );
        counter(
            &mut out,
            "queries_deadline_killed_total",
            "Requests killed by the per-request deadline.",
            c(&self.queries_deadline_killed),
        );
        counter(
            &mut out,
            "queries_budget_killed_total",
            "Requests killed by a row/byte budget.",
            c(&self.queries_budget_killed),
        );
        gauge(
            &mut out,
            "query_peak_bytes",
            "Largest byte footprint any single query accounted.",
            c(&self.query_peak_bytes),
        );
        counter(
            &mut out,
            "retries_total",
            "Outbound requests re-sent after a retryable error.",
            c(&self.retries),
        );
        counter(
            &mut out,
            "reconnects_total",
            "Outbound connections re-established.",
            c(&self.reconnects),
        );
        counter(
            &mut out,
            "failovers_total",
            "Outbound reconnects that switched endpoints.",
            c(&self.failovers),
        );
        let repl_counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_repl_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_repl_{name} counter");
            let _ = writeln!(out, "graql_repl_{name} {v}");
        };
        let repl_gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP graql_repl_{name} {help}");
            let _ = writeln!(out, "# TYPE graql_repl_{name} gauge");
            let _ = writeln!(out, "graql_repl_{name} {v}");
        };
        repl_gauge(
            &mut out,
            "replicas_connected",
            "Replicas currently subscribed to this node's WAL stream.",
            c(&self.repl_replicas_connected),
        );
        repl_counter(
            &mut out,
            "batches_shipped_total",
            "Fsynced WAL batches shipped to replicas.",
            c(&self.repl_batches_shipped),
        );
        repl_counter(
            &mut out,
            "records_shipped_total",
            "WAL records shipped to replicas.",
            c(&self.repl_records_shipped),
        );
        repl_counter(
            &mut out,
            "snapshot_chunks_total",
            "Snapshot chunks sent during replica initial sync.",
            c(&self.repl_snapshot_chunks),
        );
        repl_counter(
            &mut out,
            "acks_total",
            "Replication acks received from replicas.",
            c(&self.repl_acks),
        );
        repl_counter(
            &mut out,
            "heartbeats_total",
            "Replication heartbeats sent on idle streams.",
            c(&self.repl_heartbeats),
        );
        let (max_lag, _) = self.repl_lag_snapshot();
        repl_gauge(
            &mut out,
            "max_lag_records",
            "Largest per-replica lag in WAL records.",
            max_lag,
        );
        out
    }
}

/// The full Prometheus exposition body: the engine registry first (query
/// outcomes, latency histograms), then the wire counters. The same text
/// backs the HTTP endpoint and the [`Msg::Metrics`] wire request, so both
/// views always agree.
pub fn metrics_text(server: &Server, stats: &NetStats) -> String {
    let mut out = server.metrics().render_prometheus();
    out.push_str(&stats.render_prometheus());
    out
}

/// Handle to a running server: address, counters, graceful shutdown.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    accept_handle: Option<JoinHandle<()>>,
    metrics_handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics HTTP address, when
    /// [`ServeOptions::metrics_addr`] was set (resolves port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish and flush its reply, then join all workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `opts.addr` and serves `server` until [`NetServer::shutdown`].
pub fn serve(server: Server, opts: ServeOptions) -> Result<NetServer> {
    let addr = opts
        .addr
        .to_socket_addrs()
        .map_err(|e| GraqlError::net(format!("cannot resolve {}: {e}", opts.addr)))?
        .next()
        .ok_or_else(|| GraqlError::net(format!("{} resolves to no address", opts.addr)))?;
    let listener =
        TcpListener::bind(addr).map_err(|e| GraqlError::net(format!("cannot bind {addr}: {e}")))?;
    let local_addr = listener
        .local_addr()
        .map_err(|e| GraqlError::net(format!("no local address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| GraqlError::net(format!("cannot set nonblocking: {e}")))?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(NetStats::default());
    let gate = Arc::new(ExecGate::new(opts.max_concurrency));
    let slow = SlowLog::open(&opts)?;

    let (metrics_addr, metrics_handle) = match &opts.metrics_addr {
        Some(addr) => {
            let (addr, handle) = serve_metrics(
                addr,
                server.clone(),
                Arc::clone(&stats),
                Arc::clone(&shutdown),
            )?;
            (Some(addr), Some(handle))
        }
        None => (None, None),
    };

    let accept_handle = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::spawn(move || accept_loop(listener, server, opts, shutdown, stats, gate, slow))
    };

    Ok(NetServer {
        local_addr,
        metrics_addr,
        shutdown,
        stats,
        accept_handle: Some(accept_handle),
        metrics_handle,
    })
}

/// Binds and serves the Prometheus HTTP endpoint: a deliberately minimal
/// HTTP/1.1 responder (every request gets the full exposition and
/// `Connection: close`) so a stock Prometheus scraper or `curl` works
/// without pulling an HTTP stack into the build.
fn serve_metrics(
    addr: &str,
    server: Server,
    stats: Arc<NetStats>,
    shutdown: Arc<AtomicBool>,
) -> Result<(SocketAddr, JoinHandle<()>)> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| GraqlError::net(format!("cannot resolve metrics address {addr}: {e}")))?
        .next()
        .ok_or_else(|| GraqlError::net(format!("{addr} resolves to no address")))?;
    let listener = TcpListener::bind(addr)
        .map_err(|e| GraqlError::net(format!("cannot bind metrics address {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| GraqlError::net(format!("no local metrics address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| GraqlError::net(format!("cannot set metrics listener nonblocking: {e}")))?;
    let handle = std::thread::spawn(move || {
        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => serve_one_scrape(stream, &server, &stats),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
        }
    });
    Ok((local, handle))
}

/// Answers one HTTP scrape: drain the request line(s), send the
/// exposition, close. Scrape errors are never server-fatal.
fn serve_one_scrape(mut stream: TcpStream, server: &Server, stats: &NetStats) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Read until the blank line ending the request head (or timeout —
    // scrapers that pipeline more than 4 KiB of headers get cut off).
    let mut head = [0u8; 4096];
    let mut n = 0;
    while n < head.len() {
        match std::io::Read::read(&mut stream, &mut head[n..]) {
            Ok(0) => break,
            Ok(m) => {
                n += m;
                if head[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = metrics_text(server, stats);
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn accept_loop(
    listener: TcpListener,
    server: Server,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    gate: Arc<ExecGate>,
    slow: Option<Arc<SlowLog>>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Drain-on-overload: past the connection cap (or with the
                // accept-refuse failpoint armed) the new connection gets a
                // retryable overload error and is closed, while existing
                // connections keep draining.
                let active = stats.connections_active.load(Ordering::Relaxed);
                let refuse_armed = {
                    #[cfg(feature = "failpoints")]
                    {
                        matches!(
                            graql_types::failpoints::hit("net/server/accept-refuse"),
                            Some(graql_types::failpoints::Action::Refuse)
                        )
                    }
                    #[cfg(not(feature = "failpoints"))]
                    {
                        false
                    }
                };
                if active >= opts.max_connections || refuse_armed {
                    refuse_connection(stream, active, &opts, &stats);
                    continue;
                }
                let server = server.clone();
                let opts = opts.clone();
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                let gate = Arc::clone(&gate);
                let slow = slow.clone();
                workers.push(std::thread::spawn(move || {
                    stats.connections_total.fetch_add(1, Ordering::Relaxed);
                    stats.connections_active.fetch_add(1, Ordering::Relaxed);
                    // Worker errors are connection-fatal but never
                    // server-fatal.
                    let _ = handle_connection(
                        stream,
                        &server,
                        &opts,
                        &shutdown,
                        &stats,
                        &gate,
                        slow.as_deref(),
                    );
                    stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                }));
                workers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // Drain: workers notice the flag at their next frame boundary and
    // finish any request already in flight first.
    for h in workers {
        let _ = h.join();
    }
}

/// Sheds one connection at accept time: best-effort retryable error
/// frame, then close. The client's retry loop backs off and reconnects.
fn refuse_connection(stream: TcpStream, active: u64, opts: &ServeOptions, stats: &NetStats) {
    stats.connections_refused.fetch_add(1, Ordering::Relaxed);
    // The accepted socket may inherit the listener's nonblocking mode on
    // some platforms; the refusal write should block (briefly).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(POLL));
    let payload = proto::encode(&error_msg(&GraqlError::net_retryable(format!(
        "server overloaded ({active} active connections), try again later"
    ))));
    let mut w = &stream;
    let _ = write_frame(&mut w, &payload, opts.max_frame);
}

/// A connection's framed transport with counters.
struct Wire<'a> {
    stream: &'a TcpStream,
    stats: &'a NetStats,
    max_frame: usize,
}

impl Wire<'_> {
    fn send(&self, msg: &Msg) -> Result<()> {
        let payload = proto::encode(msg);
        let mut w = self.stream;
        write_frame(&mut w, &payload, self.max_frame)?;
        self.stats.msgs_out.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_out
            .fetch_add(payload.len() as u64 + 4, Ordering::Relaxed);
        Ok(())
    }

    fn recv(&self) -> Result<FrameRead> {
        let mut r = self.stream;
        let got = read_frame(&mut r, self.max_frame)?;
        if let FrameRead::Frame(p) = &got {
            self.stats.msgs_in.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_in
                .fetch_add(p.len() as u64 + 4, Ordering::Relaxed);
        }
        Ok(got)
    }
}

fn handle_connection(
    stream: TcpStream,
    server: &Server,
    opts: &ServeOptions,
    shutdown: &AtomicBool,
    stats: &NetStats,
    gate: &ExecGate,
    slow: Option<&SlowLog>,
) -> Result<()> {
    stream
        .set_nodelay(true)
        .map_err(|e| GraqlError::net(format!("nodelay: {e}")))?;
    // Short read timeout: the worker wakes at frame boundaries to poll
    // the shutdown flag and account idle time.
    stream
        .set_read_timeout(Some(POLL))
        .map_err(|e| GraqlError::net(format!("read timeout: {e}")))?;
    stream
        .set_write_timeout(Some(opts.request_timeout))
        .map_err(|e| GraqlError::net(format!("write timeout: {e}")))?;

    let wire = Wire {
        stream: &stream,
        stats,
        max_frame: opts.max_frame,
    };

    let mut session = match handshake(&wire, server, opts, shutdown)? {
        Some(s) => s,
        None => return Ok(()), // rejected or closed; error frame already sent
    };

    // Graceful degradation: a connection sending garbage gets error-frame
    // replies until its budget is spent, then a hangup. Frame-level
    // desync (unreadable framing) still closes immediately below.
    let mut error_budget = opts.error_budget;
    let mut idle = Duration::ZERO;
    // Frames that arrived while a Submit was executing (the connection
    // thread keeps reading so a wire Cancel can land); they are processed
    // in order once the request finishes.
    let mut pending: VecDeque<Vec<u8>> = VecDeque::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(()); // at a frame boundary: nothing in flight
        }
        let frame = match pending.pop_front() {
            Some(p) => p,
            None => match wire.recv()? {
                FrameRead::TimedOut => {
                    idle += POLL;
                    if idle >= opts.idle_timeout {
                        // Retryable: a fresh connection fixes an idle hangup.
                        let _ = wire.send(&Msg::Error {
                            status: GraqlError::net_retryable("").wire_status(),
                            code: graql_types::codes::NET_OTHER.to_string(),
                            message: format!("idle for {}s, closing", idle.as_secs()),
                        });
                        return Ok(());
                    }
                    continue;
                }
                FrameRead::Closed => return Ok(()),
                FrameRead::Frame(p) => p,
            },
        };
        let msg = match proto::decode(&frame) {
            Ok(m) => m,
            Err(e) => {
                // Unparseable frame (well-delimited, bad contents —
                // e.g. corrupted in transit): report it as retryable
                // so the client re-sends, and consume budget.
                let _ = wire.send(&error_msg(&GraqlError::net_retryable(format!(
                    "could not decode request: {e}"
                ))));
                error_budget = error_budget.saturating_sub(1);
                if error_budget == 0 {
                    return Err(e);
                }
                continue;
            }
        };
        idle = Duration::ZERO;

        let started = Instant::now();
        match msg {
            Msg::Submit { ir } => {
                // Admission control: acquire an execution slot or shed.
                let shed_armed = {
                    #[cfg(feature = "failpoints")]
                    {
                        matches!(
                            graql_types::failpoints::hit("net/server/shed"),
                            Some(graql_types::failpoints::Action::Refuse)
                        )
                    }
                    #[cfg(not(feature = "failpoints"))]
                    {
                        false
                    }
                };
                if shed_armed || !gate.admit(opts.queue_wait) {
                    stats.queries_shed.fetch_add(1, Ordering::Relaxed);
                    server.metrics().note_outcome(QueryOutcome::Shed);
                    wire.send(&error_msg(&GraqlError::net_retryable(format!(
                        "server busy ({} queries executing), try again later",
                        opts.max_concurrency
                    ))))?;
                    continue;
                }
                let submit = run_submit(
                    &mut session,
                    &ir,
                    &wire,
                    server,
                    opts,
                    stats,
                    slow,
                    &mut pending,
                );
                gate.release();
                let conn_err = submit?;
                #[cfg(feature = "failpoints")]
                if graql_types::failpoints::hit("net/server/drop-before-reply").is_some() {
                    // The request executed but its reply is lost — the
                    // "server died before replying" fault.
                    return Err(GraqlError::net(
                        "failpoint 'net/server/drop-before-reply': dropping connection",
                    ));
                }
                if let Some(e) = conn_err {
                    // The client vanished mid-request; the query was
                    // cancelled and drained, nothing left to reply to.
                    return Err(e);
                }
            }
            Msg::Cancel => {
                // Nothing in flight on this connection (a Cancel racing a
                // reply that already went out): harmless, ignore.
            }
            Msg::Check { text } => {
                let diags = session.check_script(&text);
                stats.note_request(started.elapsed().as_micros() as u64);
                wire.send(&Msg::CheckReport {
                    diags: diags_to_wire(&diags),
                })?;
            }
            Msg::Describe => {
                let result = session.describe();
                stats.note_request(started.elapsed().as_micros() as u64);
                match result {
                    Ok(mut text) => {
                        text.push('\n');
                        text.push_str(&stats.render());
                        wire.send(&Msg::DescribeReport { text })?;
                    }
                    Err(e) => wire.send(&error_msg(&e))?,
                }
            }
            Msg::Metrics => {
                stats.note_request(started.elapsed().as_micros() as u64);
                wire.send(&Msg::MetricsReport {
                    text: metrics_text(server, stats),
                })?;
            }
            Msg::Ping => wire.send(&Msg::Pong)?,
            Msg::Promote => {
                if session.role() != Role::Admin {
                    wire.send(&error_msg(&GraqlError::exec(format!(
                        "user '{}' (analyst) may not promote this server",
                        session.user()
                    ))))?;
                    continue;
                }
                let was = server.promote();
                if let ReplRole::Replica { primary } = &was {
                    eprintln!("gems-serve: promoted to primary (was replica of {primary})");
                }
                stats.note_request(started.elapsed().as_micros() as u64);
                wire.send(&Msg::Done {
                    stmts: 0,
                    micros: started.elapsed().as_micros() as u64,
                })?;
            }
            Msg::ReplSubscribe { from_lsn } => {
                if session.role() != Role::Admin {
                    wire.send(&error_msg(&GraqlError::exec(format!(
                        "user '{}' (analyst) may not subscribe to the WAL stream",
                        session.user()
                    ))))?;
                    continue;
                }
                if !server.is_durable() {
                    wire.send(&error_msg(&GraqlError::net(
                        "replication requires a durable server (start with --durable)",
                    )))?;
                    continue;
                }
                // The connection becomes a one-way WAL stream (plus acks
                // coming back); it never returns to request dispatch.
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "unknown".to_string());
                return serve_replication(&wire, server, stats, shutdown, from_lsn, &peer);
            }
            Msg::Goodbye => return Ok(()),
            other => {
                wire.send(&error_msg(&GraqlError::net(format!(
                    "unexpected message {other:?} (session already established)"
                ))))?;
                error_budget = error_budget.saturating_sub(1);
                if error_budget == 0 {
                    return Err(GraqlError::net("per-connection error budget exhausted"));
                }
            }
        }
    }
}

/// Executes one `Submit` under a per-request [`QueryGuard`], with the
/// connection thread polling the socket for an out-of-band [`Msg::Cancel`]
/// while an executor thread runs the query.
///
/// The guard's deadline is the server's request timeout folded with the
/// database's configured budget, so a runaway query aborts cooperatively
/// (typed deadline/budget error) and the executor thread — a scoped
/// thread, joined before this returns — is immediately reusable.
///
/// Returns `Ok(Some(err))` when the client vanished mid-request: the
/// query was cancelled and drained, but there is no one left to reply to,
/// so the caller should close the connection with `err`. The outer
/// `Err` means the reply could not be written (connection-fatal).
#[allow(clippy::too_many_arguments)]
fn run_submit(
    session: &mut Session,
    ir: &[u8],
    wire: &Wire<'_>,
    server: &Server,
    opts: &ServeOptions,
    stats: &NetStats,
    slow: Option<&SlowLog>,
    pending: &mut VecDeque<Vec<u8>>,
) -> Result<Option<GraqlError>> {
    // Delay-only site: simulates a slow query under the request deadline
    // without wall-clock-sized sleeps in tests.
    graql_types::failpoint!("net/server/exec-delay");

    let mut budget: QueryBudget = server.query_budget();
    budget.deadline = Some(match budget.deadline {
        Some(d) => d.min(opts.request_timeout),
        None => opts.request_timeout,
    });
    let guard = QueryGuard::new(budget);
    // Slow-query logging needs the stage breakdown, so the whole request
    // runs with a profile armed; without a slow log the obs stays `None`
    // and execution keeps the zero-overhead path.
    let profile = slow.map(|_| QueryProfile::new());
    let obs = profile.as_ref();

    let started = Instant::now();
    let (result, conn_err) = std::thread::scope(|s| {
        let exec = s.spawn(|| session.execute_ir_observed(ir, &guard, obs));
        let mut conn_err: Option<GraqlError> = None;
        while !exec.is_finished() {
            // Fast queries finish within the first poll window; don't pay
            // a blocking socket read (up to POLL) for them.
            if started.elapsed() < POLL {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            match wire.recv() {
                Ok(FrameRead::TimedOut) => {}
                Ok(FrameRead::Closed) => {
                    // The client vanished: kill its query, reclaim the
                    // executor at the next checkpoint.
                    guard.cancel();
                    conn_err = Some(GraqlError::net("client closed the connection mid-request"));
                    break;
                }
                Ok(FrameRead::Frame(p)) => {
                    if matches!(proto::decode(&p), Ok(Msg::Cancel)) {
                        guard.cancel();
                    } else {
                        // Not ours to handle mid-request; process in order
                        // after the reply goes out.
                        pending.push_back(p);
                    }
                }
                Err(e) => {
                    guard.cancel();
                    conn_err = Some(e);
                    break;
                }
            }
        }
        let result = exec
            .join()
            .unwrap_or_else(|_| Err(GraqlError::exec("executor thread panicked")));
        (result, conn_err)
    });

    let elapsed = started.elapsed();
    stats.note_request(elapsed.as_micros() as u64);
    stats
        .query_peak_bytes
        .fetch_max(guard.bytes(), Ordering::Relaxed);
    match &result {
        Err(GraqlError::Deadline(_)) => {
            stats
                .queries_deadline_killed
                .fetch_add(1, Ordering::Relaxed);
        }
        Err(GraqlError::Cancelled(_)) => {
            stats.queries_cancelled.fetch_add(1, Ordering::Relaxed);
        }
        Err(GraqlError::Budget(_)) => {
            stats.queries_budget_killed.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    if let (Some(slow), Some(profile)) = (slow, profile.as_ref()) {
        if elapsed >= slow.threshold {
            let outcome = match &result {
                Ok(_) => QueryOutcome::Ok,
                Err(e) => QueryOutcome::from_error(e),
            };
            // The IR deliberately drops source text, so the statement
            // field names the transport rather than echoing the script.
            let report = ProfileReport::seal(
                "<submit>".to_string(),
                String::new(),
                profile,
                guard.rows(),
                guard.bytes(),
            );
            server.metrics().slow_queries.inc();
            slow.note(
                session.user(),
                elapsed.as_micros() as u64,
                outcome.name(),
                &report,
            );
        }
    }
    if conn_err.is_some() {
        return Ok(conn_err);
    }
    match result {
        Ok(outputs) => {
            let stmts = outputs.len() as u32;
            for out in &outputs {
                for m in output_msgs(out) {
                    wire.send(&m)?;
                }
            }
            wire.send(&Msg::Done {
                stmts,
                micros: elapsed.as_micros() as u64,
            })?;
        }
        Err(e) => wire.send(&error_msg(&e))?,
    }
    Ok(None)
}

/// Serves one replica's WAL subscription until the connection drops, the
/// replica says `Goodbye`, or the server shuts down.
///
/// Ordering is the crux: the commit-feed subscription is registered
/// *before* the bootstrap view is taken, so no batch can fall between
/// "what the bootstrap saw" and "what the channel delivers" — overlap is
/// possible (a batch both in the bootstrap backlog and the channel) and
/// resolved by LSN (`last_sent`), a gap is not. The replica applies
/// idempotently by LSN as a second line of defense.
fn serve_replication(
    wire: &Wire<'_>,
    server: &Server,
    stats: &NetStats,
    shutdown: &AtomicBool,
    from_lsn: u64,
    peer: &str,
) -> Result<()> {
    let rx = server.subscribe_commits()?;
    let boot = server.repl_bootstrap(from_lsn)?;
    stats
        .repl_replicas_connected
        .fetch_add(1, Ordering::Relaxed);
    let result = stream_to_replica(wire, server, stats, shutdown, from_lsn, peer, rx, boot);
    stats
        .repl_replicas_connected
        .fetch_sub(1, Ordering::Relaxed);
    stats.forget_repl_lag(peer);
    result
}

#[allow(clippy::too_many_arguments)]
fn stream_to_replica(
    wire: &Wire<'_>,
    server: &Server,
    stats: &NetStats,
    shutdown: &AtomicBool,
    from_lsn: u64,
    peer: &str,
    rx: std::sync::mpsc::Receiver<graql_core::ShippedBatch>,
    boot: graql_core::ReplBootstrap,
) -> Result<()> {
    let mut last_sent = from_lsn.saturating_sub(1);
    // Initial sync: the replica is behind the last checkpoint, so the log
    // alone cannot catch it up — ship the snapshot files first. `last` is
    // set on the final chunk of the final file; the replica loads the
    // directory and re-bases its log at the watermark when it sees it.
    if let Some((watermark, files)) = &boot.snapshot {
        last_sent = last_sent.max(watermark.saturating_sub(1));
        let n_files = files.len();
        for (fi, (name, data)) in files.iter().enumerate() {
            let chunks: Vec<&[u8]> = if data.is_empty() {
                vec![&[]]
            } else {
                data.chunks(SNAPSHOT_CHUNK).collect()
            };
            let n_chunks = chunks.len();
            for (ci, chunk) in chunks.into_iter().enumerate() {
                wire.send(&Msg::ReplSnapshot {
                    watermark: *watermark,
                    name: name.clone(),
                    data: chunk.to_vec(),
                    last: fi + 1 == n_files && ci + 1 == n_chunks,
                })?;
                stats.repl_snapshot_chunks.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut backlog = boot.backlog;
    let mut last_heartbeat = Instant::now();
    loop {
        // Everything sendable right now: the bootstrap backlog first,
        // then whatever the commit thread shipped since.
        while let Ok(batch) = rx.try_recv() {
            backlog.push(batch);
        }
        for batch in backlog.drain(..) {
            if batch.last_lsn <= last_sent {
                continue; // overlap between bootstrap view and live feed
            }
            graql_types::failpoint!("net/repl/stream", GraqlError::net);
            let span = batch.last_lsn - batch.first_lsn + 1;
            wire.send(&Msg::ReplBatch {
                first_lsn: batch.first_lsn,
                last_lsn: batch.last_lsn,
                frames: batch.frames,
            })?;
            stats.repl_batches_shipped.fetch_add(1, Ordering::Relaxed);
            stats
                .repl_records_shipped
                .fetch_add(span, Ordering::Relaxed);
            last_sent = batch.last_lsn;
            last_heartbeat = Instant::now();
        }
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        if last_heartbeat.elapsed() >= REPL_HEARTBEAT {
            wire.send(&Msg::ReplHeartbeat {
                durable_lsn: server.wal_durable_lsn(),
            })?;
            stats.repl_heartbeats.fetch_add(1, Ordering::Relaxed);
            last_heartbeat = Instant::now();
        }
        // Wait for acks (or anything else) with the standard short read
        // timeout — this is also the stream's pacing delay: new batches
        // are drained at most POLL after their fsync.
        match wire.recv()? {
            FrameRead::TimedOut => {}
            FrameRead::Closed => return Ok(()),
            FrameRead::Frame(p) => match proto::decode(&p) {
                Ok(Msg::ReplAck { lsn }) => {
                    stats.repl_acks.fetch_add(1, Ordering::Relaxed);
                    stats.note_repl_lag(peer, server.wal_durable_lsn().saturating_sub(lsn));
                }
                Ok(Msg::Goodbye) => return Ok(()),
                Ok(other) => {
                    return Err(GraqlError::net(format!(
                        "unexpected message {other:?} on a replication stream"
                    )))
                }
                Err(e) => return Err(e),
            },
        }
    }
}

/// Runs the server side of version negotiation and authentication.
/// Returns `None` when the connection was rejected (error frame sent) or
/// closed before a `Hello`.
fn handshake(
    wire: &Wire<'_>,
    server: &Server,
    opts: &ServeOptions,
    shutdown: &AtomicBool,
) -> Result<Option<Session>> {
    let mut idle = Duration::ZERO;
    let msg = loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match wire.recv()? {
            FrameRead::TimedOut => {
                idle += POLL;
                if idle >= opts.idle_timeout {
                    return Ok(None);
                }
            }
            FrameRead::Closed => return Ok(None),
            FrameRead::Frame(p) => match proto::decode(&p) {
                Ok(m) => break m,
                Err(e) => {
                    // A garbled Hello is transport corruption, not a bad
                    // client: re-handshaking on a fresh connection is
                    // always safe, so tell the client to retry.
                    let _ = wire.send(&error_msg(&GraqlError::net_retryable(format!(
                        "could not decode handshake: {e}"
                    ))));
                    return Ok(None);
                }
            },
        }
    };
    let (proto_version, user) = match msg {
        Msg::Hello { proto, user } => (proto, user),
        other => {
            wire.send(&error_msg(&GraqlError::net(format!(
                "expected Hello, got {other:?}"
            ))))?;
            return Ok(None);
        }
    };
    if proto_version != PROTO_VERSION {
        wire.send(&error_msg(&GraqlError::net(format!(
            "protocol version mismatch: client speaks v{proto_version}, server speaks v{PROTO_VERSION}"
        ))))?;
        return Ok(None);
    }
    match server.connect(&user) {
        Ok(session) => {
            wire.send(&Msg::Welcome {
                proto: PROTO_VERSION,
                role: session.role().wire_tag(),
                server: opts.banner.clone(),
            })?;
            Ok(Some(session))
        }
        Err(e) => {
            wire.send(&error_msg(&e))?;
            Ok(None)
        }
    }
}

/// Convenience for binaries: log that we are up in a greppable, flushed
/// line so process supervisors (CI) can wait for readiness.
pub fn announce(out: &mut impl Write, addr: SocketAddr) {
    let _ = writeln!(out, "gems-serve listening on {addr}");
    let _ = out.flush();
}
