//! In-process loopback tests: a real `NetServer` on 127.0.0.1 driven by
//! real `RemoteSession`s, covering the full request surface, concurrent
//! sessions, timeouts and fault behaviour.

use std::net::TcpListener;
use std::time::Duration;

use graql_core::{Database, Role, Server, SessionOutput};
use graql_net::{serve, ConnectOptions, GemsSession, RemoteSession, ServeOptions};
use graql_types::{GraqlError, Value};

/// The paper's Fig. 4 schema (tables + many-to-one country vertices +
/// the `export` edge).
const FIG4_DDL: &str = "create table Producers(id integer, country varchar(4))
create table Vendors(id integer, country varchar(4))
create table Products(id integer, producer integer)
create table Offers(id integer, product integer, vendor integer)
create vertex ProducerCountry(country) from table Producers
create vertex VendorCountry(country) from table Vendors
create edge export with vertices (ProducerCountry as PC, VendorCountry as VC)
    from table Products, Offers
    where Products.producer = PC.id
      and Offers.product = Products.id
      and Offers.vendor = VC.id";

/// Loads the paper's exact Fig. 5 rows.
fn load_fig5(server: &Server) {
    let mut db = server.database_mut();
    db.ingest_str("Producers", "1,US\n2,IT\n3,FR\n4,US\n")
        .unwrap();
    db.ingest_str("Vendors", "1,CA\n2,CN\n3,CA\n4,CA\n")
        .unwrap();
    db.ingest_str("Products", "1,1\n2,4\n3,2\n4,2\n").unwrap();
    db.ingest_str("Offers", "1,1,1\n2,2,4\n3,3,2\n4,4,2\n")
        .unwrap();
}

fn boot(server: Server) -> graql_net::NetServer {
    serve(server, ServeOptions::default()).expect("serve")
}

#[test]
fn remote_session_full_surface() {
    let server = Server::new(Database::new());
    server.create_user("ada", Role::Analyst).unwrap();
    let net = &mut boot(server.clone());

    let mut admin = RemoteSession::connect(net.local_addr(), ConnectOptions::new("admin")).unwrap();
    assert_eq!(admin.user(), "admin");
    assert_eq!(admin.role(), Role::Admin);
    assert!(!admin.server_banner().is_empty());
    admin.ping().unwrap();

    // DDL over the wire.
    let outputs = admin.execute_script(FIG4_DDL).unwrap();
    assert_eq!(outputs.len(), 7);
    assert!(matches!(&outputs[0], SessionOutput::Created(n) if n == "Producers"));
    load_fig5(&server);

    // File-based ingest over the wire (the only ingest the language has).
    let dir = std::env::temp_dir().join(format!("graql_net_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("more_producers.csv"), "5,JP\n").unwrap();
    server.database_mut().set_data_dir(&dir);
    let outputs = admin
        .execute_script("ingest table Producers 'more_producers.csv'")
        .unwrap();
    assert!(
        matches!(&outputs[..], [SessionOutput::Ingested { table, rows: 1 }] if table == "Producers"),
        "{outputs:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // A table result streams back and reassembles identically.
    let outputs = admin
        .execute_script("select id, country from table Producers order by id")
        .unwrap();
    let [SessionOutput::Table(t)] = &outputs[..] else {
        panic!("expected one table, got {outputs:?}");
    };
    assert_eq!(t.n_rows(), 5);
    assert_eq!(t.get(0, 0), Value::Int(1));
    assert_eq!(t.get(0, 1), Value::str("US"));

    // A graph query with a subgraph result (Fig. 5: two export edges).
    let outputs = admin
        .execute_script(
            "select * from graph def PC: ProducerCountry() --export--> \
             def VC: VendorCountry() into subgraph flows",
        )
        .unwrap();
    let [SessionOutput::Subgraph {
        n_edges, summary, ..
    }] = &outputs[..]
    else {
        panic!("expected one subgraph, got {outputs:?}");
    };
    assert_eq!(*n_edges, 2, "Fig. 5: exactly two export edges");
    assert!(!summary.is_empty());

    // The analyst shares the same database but not DDL rights.
    let mut ada = RemoteSession::connect(net.local_addr(), ConnectOptions::new("ada")).unwrap();
    assert_eq!(ada.role(), Role::Analyst);
    let outputs = ada
        .execute_script("select country from table Vendors order by country")
        .unwrap();
    let [SessionOutput::Table(t)] = &outputs[..] else {
        panic!("expected one table");
    };
    assert_eq!(t.n_rows(), 4);
    let err = ada
        .execute_script("create table Evil(x integer)")
        .unwrap_err();
    assert!(err.to_string().contains("analyst"), "{err}");

    // check_script round-trips diagnostics with codes and severities.
    let diags = ada
        .check_script("select nope from table Producers")
        .unwrap();
    assert!(diags.has_errors());
    assert!(diags.iter().any(|d| d.code.starts_with("E01")), "{diags:?}");

    // describe includes catalog objects and the net: counters section.
    let text = admin.describe().unwrap();
    assert!(text.contains("Producers"), "{text}");
    assert!(text.contains("net:"), "{text}");
    assert!(text.contains("connections:"), "{text}");

    // An unknown user is rejected with a typed error at connect time.
    let err = RemoteSession::connect(net.local_addr(), ConnectOptions::new("nobody"))
        .expect_err("unknown user must not connect");
    assert!(err.to_string().contains("nobody"), "{err}");

    net.shutdown();
}

#[test]
fn concurrent_sessions_interleave() {
    let server = Server::new(Database::new());
    for u in ["a1", "a2", "a3"] {
        server.create_user(u, Role::Analyst).unwrap();
    }
    let mut net = boot(server.clone());
    let addr = net.local_addr();

    // Admin sets up the schema over the wire; data loads in-process.
    let mut admin = RemoteSession::connect(addr, ConnectOptions::new("admin")).unwrap();
    admin.execute_script(FIG4_DDL).unwrap();
    load_fig5(&server);

    // Four clients (one admin doing DDL, three analysts querying) run
    // interleaved from their own threads.
    let mut handles = Vec::new();
    for user in ["a1", "a2", "a3"] {
        handles.push(std::thread::spawn(move || {
            let mut s = RemoteSession::connect(addr, ConnectOptions::new(user)).unwrap();
            for _ in 0..8 {
                let outputs = s
                    .execute_script("select id from table Producers order by id")
                    .unwrap();
                let [SessionOutput::Table(t)] = &outputs[..] else {
                    panic!("expected a table");
                };
                assert_eq!(t.n_rows(), 4);
            }
        }));
    }
    for i in 0..4 {
        admin
            .execute_script(&format!("create table Extra{i}(x integer)"))
            .unwrap();
    }
    for h in handles {
        h.join().unwrap();
    }

    let text = admin.describe().unwrap();
    assert!(text.contains("Extra3"), "{text}");
    net.shutdown();
}

#[test]
fn shutdown_drains_then_refuses() {
    let server = Server::new(Database::new());
    let mut net = boot(server);
    let addr = net.local_addr();

    let mut s = RemoteSession::connect(addr, ConnectOptions::new("admin")).unwrap();
    s.execute_script("create table V(id integer)").unwrap();

    net.shutdown();

    // After shutdown the port no longer accepts (or the session errors
    // cleanly) — either way a typed error, not a hang or panic.
    let err = s
        .execute_script("select id from table V")
        .expect_err("server is gone");
    assert!(matches!(err, GraqlError::Net(_)), "{err:?}");

    let err = RemoteSession::connect(
        addr,
        ConnectOptions {
            connect_timeout: Duration::from_millis(500),
            timeout: Duration::from_millis(500),
            ..ConnectOptions::new("admin")
        },
    )
    .expect_err("no server behind the port anymore");
    assert!(matches!(err, GraqlError::Net(_)), "{err:?}");
}

#[test]
fn silent_server_trips_client_deadline() {
    // A listener that accepts and then never says anything: the client's
    // reply deadline must fire with a typed error — no hang. The mute
    // thread blocks on a channel (not a fixed sleep), so the test never
    // races real time against the client's deadline; retry is disabled
    // because the *deadline* is under test, not recovery.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let hold = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let _ = done_rx.recv(); // hold the socket until the client gave up
        drop(stream);
    });

    let err = RemoteSession::connect(
        addr,
        ConnectOptions::new("admin")
            .with_timeout(Duration::from_millis(300))
            .with_retries(0),
    )
    .expect_err("handshake against a mute server must time out");
    assert!(matches!(err, GraqlError::Net(_)), "{err:?}");
    assert!(err.to_string().contains("deadline"), "{err}");
    done_tx.send(()).unwrap();
    hold.join().unwrap();
}

#[test]
fn mid_stream_disconnect_is_typed_error() {
    // A server that answers the handshake, then dies mid-conversation.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        use graql_net::frame::{read_frame, write_frame, FrameRead, MAX_FRAME};
        use graql_net::proto::{self, Msg};
        let (stream, _) = listener.accept().unwrap();
        let mut r = &stream;
        let FrameRead::Frame(_hello) = read_frame(&mut r, MAX_FRAME).unwrap() else {
            return;
        };
        let welcome = proto::encode_tagged(
            1,
            &Msg::Welcome {
                proto: graql_net::PROTO_VERSION,
                role: 0,
                server: "fake".to_string(),
            },
        );
        let mut w = &stream;
        write_frame(&mut w, &welcome, MAX_FRAME).unwrap();
        // Wait for the Submit, then vanish without replying.
        let mut r = &stream;
        let _ = read_frame(&mut r, MAX_FRAME);
        drop(stream);
    });

    let mut s = RemoteSession::connect(
        addr,
        ConnectOptions::new("admin").with_timeout(Duration::from_secs(5)),
    )
    .unwrap();
    let err = s
        .execute_script("select x from table T")
        .expect_err("server died mid-query");
    assert!(matches!(err, GraqlError::Net(_)), "{err:?}");
    fake.join().unwrap();
}
