//! Wire-protocol robustness properties.
//!
//! The decoder is the server's attack surface: it must never panic, hang
//! or over-allocate on arbitrary, truncated or oversized byte streams,
//! and a protocol-version mismatch must fail the handshake with a clean
//! typed error — not silence.

use std::io::Cursor;

use graql_net::frame::{read_frame, write_frame, FrameRead, MAX_FRAME};
use graql_net::proto::{self, Msg, PROTO_VERSION};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes through the frame reader: parses, errors, or
    /// reports a clean close — never a panic, and never an allocation
    /// above the frame cap.
    #[test]
    fn frame_reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = Cursor::new(bytes);
        loop {
            match read_frame(&mut r, 1024) {
                Ok(FrameRead::Frame(p)) => prop_assert!(p.len() <= 1024),
                Ok(FrameRead::Closed) => break,
                Ok(FrameRead::TimedOut) => break, // not possible on Cursor, but fine
                Err(_) => break,
            }
        }
    }

    /// Arbitrary payloads through the message decoder never panic.
    #[test]
    fn msg_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = proto::decode(&bytes);
    }

    /// Arbitrary payloads through the v5 tagged-frame decoder (request
    /// id prefix + message) never panic either.
    #[test]
    fn tagged_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = proto::decode_tagged(&bytes);
    }

    /// Tag-led payloads (valid first byte, arbitrary rest) never panic —
    /// denser coverage of each variant's field decoding.
    #[test]
    fn tagged_garbage_never_panics(
        tag in prop_oneof![0u8..6, 16u8..29],
        rest in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&rest);
        let _ = proto::decode(&bytes);
    }

    /// Every truncation of every valid encoding errors instead of
    /// producing a message or panicking.
    #[test]
    fn truncated_valid_messages_error(
        user in "[a-z]{0,12}",
        ir in proptest::collection::vec(any::<u8>(), 0..40),
        cut_frac in 0.0f64..1.0,
    ) {
        for msg in [
            Msg::Hello { proto: PROTO_VERSION, user: user.clone() },
            Msg::Submit { ir: ir.clone() },
            Msg::Check { text: user.clone() },
        ] {
            let blob = proto::encode(&msg);
            let cut = ((blob.len() as f64) * cut_frac) as usize;
            if cut < blob.len() {
                prop_assert!(proto::decode(&blob[..cut]).is_err());
            }
        }
    }

    /// A declared frame length over the cap is rejected before any
    /// payload is read (or allocated), whatever the length bytes say.
    #[test]
    fn oversized_declared_lengths_rejected(len in 1025u32..u32::MAX) {
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        let err = read_frame(&mut Cursor::new(buf), 1024).unwrap_err();
        prop_assert!(err.to_string().contains("exceeds"));
    }

    /// encode → frame → unframe → decode is the identity for handshake
    /// messages with arbitrary field content.
    #[test]
    fn hello_round_trips_through_framing(proto_v in any::<u16>(), user in "[ -~]{0,40}") {
        let msg = Msg::Hello { proto: proto_v, user };
        let mut buf = Vec::new();
        write_frame(&mut buf, &proto::encode(&msg), MAX_FRAME).unwrap();
        let FrameRead::Frame(p) = read_frame(&mut Cursor::new(buf), MAX_FRAME).unwrap() else {
            panic!("expected a frame");
        };
        prop_assert_eq!(proto::decode(&p).unwrap(), msg);
    }
}

/// A client speaking a different protocol version gets a typed error
/// frame and a closed connection — no hang, no silent close. Exercised
/// against a real socket server.
#[test]
fn version_mismatch_rejected_cleanly() {
    use graql_core::Server;
    use graql_net::{serve, ServeOptions};
    use std::net::TcpStream;
    use std::time::Duration;

    let mut net = serve(
        Server::new(graql_core::Database::new()),
        ServeOptions::default(),
    )
    .unwrap();
    let stream = TcpStream::connect(net.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    let hello = proto::encode_tagged(
        7,
        &Msg::Hello {
            proto: PROTO_VERSION + 1,
            user: "admin".to_string(),
        },
    );
    let mut w = &stream;
    write_frame(&mut w, &hello, MAX_FRAME).unwrap();

    let mut r = &stream;
    let FrameRead::Frame(p) = read_frame(&mut r, MAX_FRAME).unwrap() else {
        panic!("expected an error frame, not silence");
    };
    match proto::decode_tagged(&p).unwrap() {
        (id, Msg::Error { message, .. }) => {
            assert_eq!(id, 7, "the rejection echoes the Hello's request id");
            assert!(message.contains("version mismatch"), "{message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // The server closes after rejecting; the next read sees EOF, not a hang.
    let mut r = &stream;
    assert!(matches!(
        read_frame(&mut r, MAX_FRAME),
        Ok(FrameRead::Closed) | Err(_)
    ));
    net.shutdown();
}

/// Junk that is not even a Hello (wrong magic) is rejected with an error
/// frame too.
#[test]
fn non_graql_client_rejected() {
    use graql_core::Server;
    use graql_net::{serve, ServeOptions};
    use std::net::TcpStream;
    use std::time::Duration;

    let mut net = serve(
        Server::new(graql_core::Database::new()),
        ServeOptions::default(),
    )
    .unwrap();
    let stream = TcpStream::connect(net.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    // A frame with a request-id prefix whose payload opens with tag 0
    // but the wrong magic.
    let mut w = &stream;
    write_frame(
        &mut w,
        b"\x01\x00\x00\x00\x00\x00\x00\x00\x00XXXX\x01\x00",
        MAX_FRAME,
    )
    .unwrap();

    // The connection errors out server-side; we observe close or error,
    // never a hang (read timeout above bounds the wait).
    let mut r = &stream;
    match read_frame(&mut r, MAX_FRAME) {
        Ok(FrameRead::Frame(_)) | Ok(FrameRead::Closed) | Err(_) => {}
        Ok(FrameRead::TimedOut) => panic!("server hung on a bad handshake"),
    }
    net.shutdown();
}
