//! Parser robustness: no input may panic the front end, and every parse
//! failure must carry a source position.

use graql_parser::{parse_script, parse_statement};
use graql_types::GraqlError;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable input never panics — it parses or errors.
    #[test]
    fn arbitrary_text_never_panics(s in "[ -~\\n\\t]{0,200}") {
        let _ = parse_script(&s);
    }

    /// Arbitrary bytes assembled from GraQL-ish tokens never panic either
    /// (denser coverage of the parser's branch space).
    #[test]
    fn token_soup_never_panics(parts in proptest::collection::vec(
        prop_oneof![
            Just("select".to_string()), Just("from".to_string()), Just("graph".to_string()),
            Just("table".to_string()), Just("create".to_string()), Just("vertex".to_string()),
            Just("edge".to_string()), Just("where".to_string()), Just("def".to_string()),
            Just("foreach".to_string()), Just("into".to_string()), Just("and".to_string()),
            Just("or".to_string()), Just("--".to_string()), Just("-->".to_string()),
            Just("<--".to_string()), Just("(".to_string()), Just(")".to_string()),
            Just("[".to_string()), Just("]".to_string()), Just("{".to_string()),
            Just("}".to_string()), Just("*".to_string()), Just("+".to_string()),
            Just(",".to_string()), Just(".".to_string()), Just(":".to_string()),
            Just("=".to_string()), Just("x".to_string()), Just("V".to_string()),
            Just("1".to_string()), Just("'s'".to_string()), Just("%p%".to_string()),
        ],
        0..30,
    )) {
        let src = parts.join(" ");
        let _ = parse_script(&src);
    }

    /// Valid-ish identifiers round-trip through a simple statement.
    #[test]
    fn identifier_round_trip(name in "[A-Za-z_][A-Za-z0-9_]{0,20}") {
        // Skip the contextual keywords that open other statement forms.
        prop_assume!(!["select", "create", "ingest"].contains(&name.to_ascii_lowercase().as_str()));
        let src = format!("select a from table {name}");
        let stmt = parse_statement(&src).unwrap();
        let printed = stmt.to_string();
        prop_assert_eq!(parse_statement(&printed).unwrap(), stmt);
    }
}

#[test]
fn parse_errors_carry_positions() {
    for src in [
        "select",
        "select a from",
        "select a from table",
        "create vertex V(",
        "create edge e with vertices (A",
        "select * from graph V() --",
        "select * from graph V() --e--> ",
        "select * from graph V() { }+",
        "select * from graph V() { --e--> W }",
        "ingest table",
        "select a from table T order by",
        "%",
        "'unterminated",
    ] {
        match parse_statement(src) {
            Err(GraqlError::Parse { line, col, .. }) => {
                assert!(line >= 1 && col >= 1, "bad position for {src:?}");
            }
            Err(other) => panic!("{src:?}: expected a parse error, got {other:?}"),
            Ok(ast) => panic!("{src:?}: unexpectedly parsed as {ast:?}"),
        }
    }
}

#[test]
fn deeply_nested_conditions_parse() {
    // 64 levels of parentheses must not overflow anything.
    let mut cond = String::from("a = 1");
    for _ in 0..64 {
        cond = format!("({cond})");
    }
    let src = format!("select x from table T where {cond}");
    parse_statement(&src).unwrap();
}

#[test]
fn long_paths_parse() {
    let mut path = String::from("V0()");
    for i in 1..100 {
        path.push_str(&format!(" --e{i}--> V{i}()"));
    }
    let src = format!("select * from graph {path} into subgraph g");
    let stmt = parse_statement(&src).unwrap();
    let printed = stmt.to_string();
    assert_eq!(parse_statement(&printed).unwrap(), stmt);
}
