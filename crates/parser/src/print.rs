//! Pretty-printer: renders the AST back to valid GraQL.
//!
//! The invariant `parse(print(ast)) == ast` is property-tested in the
//! parser tests and gives the IR layer (graql-core) a human-readable dump
//! of compiled queries.

use std::fmt;

use crate::ast::*;

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.statements.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::CreateTable(t) => write!(f, "{t}"),
            Stmt::CreateVertex(v) => write!(f, "{v}"),
            Stmt::CreateEdge(e) => write!(f, "{e}"),
            Stmt::Ingest(i) => write!(f, "{i}"),
            Stmt::Select(s) => write!(f, "{s}"),
            Stmt::Profile(s) => write!(f, "profile {s}"),
        }
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeName::Integer => write!(f, "integer"),
            TypeName::Float => write!(f, "float"),
            TypeName::Varchar(n) => write!(f, "varchar({n})"),
            TypeName::Date => write!(f, "date"),
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "create table {}(", self.name)?;
        for (i, (n, t)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} {t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for CreateVertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "create vertex {}({}) from table {}",
            self.name,
            self.key.join(", "),
            self.from_table
        )?;
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for EdgeEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vertex_type)?;
        if let Some(a) = &self.alias {
            write!(f, " as {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for CreateEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "create edge {} with vertices ({}, {})",
            self.name, self.source, self.target
        )?;
        if !self.from_tables.is_empty() {
            write!(f, " from table {}", self.from_tables.join(", "))?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Ingest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingest table {} '{}'",
            self.table,
            self.path.replace('\'', "''")
        )
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::And(parts) => join_bool(f, parts, "and"),
            Expr::Or(parts) => join_bool(f, parts, "or"),
            Expr::Not(x) => write!(f, "not ({x})"),
            Expr::Cmp { op, lhs, rhs, .. } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

fn join_bool(f: &mut fmt::Formatter<'_>, parts: &[Expr], word: &str) -> fmt::Result {
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            write!(f, " {word} ")?;
        }
        // Parenthesize nested boolean structure to preserve shape.
        match p {
            Expr::And(_) | Expr::Or(_) => write!(f, "({p})")?,
            _ => write!(f, "{p}")?,
        }
    }
    Ok(())
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            Operand::Attr {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            Operand::Lit(l) => write!(f, "{l}"),
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Int(i) => write!(f, "{i}"),
            Lit::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Lit::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Lit::Date(d) => write!(f, "date '{d}'"),
            Lit::Param(p) => write!(f, "%{p}%"),
        }
    }
}

impl fmt::Display for LabelDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LabelKind::Set => write!(f, "def {}: ", self.name),
            LabelKind::Each => write!(f, "foreach {}: ", self.name),
        }
    }
}

impl fmt::Display for StepName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepName::Named(n) => write!(f, "{n}"),
            StepName::Any => write!(f, "[]"),
        }
    }
}

impl fmt::Display for VertexStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = &self.label_def {
            write!(f, "{l}")?;
        }
        if let Some(s) = &self.seed {
            write!(f, "{s}.")?;
        }
        write!(f, "{}", self.name)?;
        if let Some(c) = &self.cond {
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

impl fmt::Display for EdgeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Direction arrows are printed by the segment, not here.
        if let Some(l) = &self.label_def {
            write!(f, "{l}")?;
        }
        write!(f, "{}", self.name)?;
        if let Some(c) = &self.cond {
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

fn write_hop(f: &mut fmt::Formatter<'_>, edge: &EdgeStep, vertex: &VertexStep) -> fmt::Result {
    match edge.dir {
        Dir::Out => write!(f, " --{edge}--> {vertex}"),
        Dir::In => write!(f, " <--{edge}-- {vertex}"),
    }
}

impl fmt::Display for Quant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quant::Star => write!(f, "*"),
            Quant::Plus => write!(f, "+"),
            Quant::Range(a, b) if a == b => write!(f, "{{{a}}}"),
            Quant::Range(a, b) => write!(f, "{{{a},{b}}}"),
        }
    }
}

impl fmt::Display for PathQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        for seg in &self.segments {
            match seg {
                Segment::Hop { edge, vertex } => write_hop(f, edge, vertex)?,
                Segment::Group {
                    hops, quant, exit, ..
                } => {
                    write!(f, " {{")?;
                    for (e, v) in hops {
                        write_hop(f, e, v)?;
                    }
                    write!(f, " }}{quant}")?;
                    if let Some(v) = exit {
                        write!(f, " --> {v}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for PathComposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathComposition::Single(p) => write!(f, "{p}"),
            PathComposition::And(parts) => join_paths(f, parts, "and"),
            PathComposition::Or(parts) => join_paths(f, parts, "or"),
        }
    }
}

fn join_paths(f: &mut fmt::Formatter<'_>, parts: &[PathComposition], word: &str) -> fmt::Result {
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            write!(f, " {word} ")?;
        }
        match p {
            PathComposition::Single(_) => write!(f, "({p})")?,
            _ => write!(f, "({p})")?,
        }
    }
    Ok(())
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggCall::CountStar => write!(f, "count(*)"),
            AggCall::Count(c) => write!(f, "count({c})"),
            AggCall::Sum(c) => write!(f, "sum({c})"),
            AggCall::Avg(c) => write!(f, "avg({c})"),
            AggCall::Min(c) => write!(f, "min({c})"),
            AggCall::Max(c) => write!(f, "max({c})"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.expr {
            SelectExpr::Col(c) => write!(f, "{c}")?,
            SelectExpr::Agg(a) => write!(f, "{a}")?,
        }
        if let Some(a) = &self.alias {
            write!(f, " as {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select")?;
        if let Some(n) = self.top {
            write!(f, " top {n}")?;
        }
        if self.distinct {
            write!(f, " distinct")?;
        }
        match &self.targets {
            SelectTargets::Star => write!(f, " *")?,
            SelectTargets::Items(items) => {
                for (i, it) in items.iter().enumerate() {
                    write!(f, "{}{it}", if i == 0 { " " } else { ", " })?;
                }
            }
        }
        match &self.source {
            SelectSource::Graph(p) => write!(f, " from graph {p}")?,
            SelectSource::Table(t) => write!(f, " from table {t}")?,
        }
        if let Some(w) = &self.where_clause {
            write!(f, " where {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                write!(f, "{}{c}", if i == 0 { "" } else { ", " })?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " order by ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                write!(
                    f,
                    "{}{}{}",
                    if i == 0 { "" } else { ", " },
                    k.col,
                    if k.desc { " desc" } else { " asc" }
                )?;
            }
        }
        match &self.into {
            Some(IntoClause::Table(n)) => write!(f, " into table {n}")?,
            Some(IntoClause::Subgraph(n)) => write!(f, " into subgraph {n}")?,
            None => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_script, parse_statement};

    /// Statements that exercise every printable construct.
    fn corpus() -> Vec<&'static str> {
        vec![
            "create table Products(id varchar(10), producer varchar(10), propertyNumeric_1 integer, price float, date date)",
            "create vertex ProductVtx(id) from table Products",
            "create vertex ProducerCountry(country) from table Producers where country != 'XX'",
            "create edge subclass with vertices (TypeVtx as A, TypeVtx as B) where A.subclassOf = B.id",
            "create edge type with vertices (ProductVtx, TypeVtx) from table ProductTypes where ProductTypes.product = ProductVtx.id and ProductTypes.type = TypeVtx.id",
            "ingest table Products 'products.csv'",
            "select y.id from graph ProductVtx(id = %Product1%) --feature--> FeatureVtx <--feature-- def y: ProductVtx(id != %Product1%) into table T1",
            "select top 10 id, count(*) as groupCount from table T1 group by id order by groupCount desc",
            "select TypeVtx.id from graph (PersonVtx(country = %Country2%) <--reviewer-- ReviewVtx --reviewFor--> foreach y: ProductVtx --producer--> ProducerVtx(country = %Country1%)) and (y --type--> TypeVtx) into table T2",
            "select * from graph ProductVtx(id = 'p1') <--[]-- [] into subgraph resultsG",
            "select V0, Vn from graph V0() --e--> V1 --f--> Vn into subgraph resultsBE",
            "select * from graph VertexA(a = 1) { --[]--> [] }+ --> VertexB(b = 2.5) into subgraph r",
            "select * from graph A() { --x--> B <--y-- C }{2,5}",
            "select * from graph def X: [] --[]--> X",
            "select * from graph resQ1.Vn(c = date '2008-01-01') --e--> W",
            "select distinct a, max(b) as m from table T where a > -3 and (b = 1 or not c = 'q''s') group by a order by m asc, a desc into table Out",
        ]
    }

    #[test]
    fn print_parse_round_trip_is_identity() {
        for src in corpus() {
            let ast1 = parse_statement(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let printed = ast1.to_string();
            let ast2 = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
            assert_eq!(
                ast1, ast2,
                "round trip changed AST for:\n  {src}\n  {printed}"
            );
        }
    }

    #[test]
    fn script_print_round_trip() {
        let src = corpus().join("\n");
        let s1 = parse_script(&src).unwrap();
        let s2 = parse_script(&s1.to_string()).unwrap();
        assert_eq!(s1, s2);
    }
}
