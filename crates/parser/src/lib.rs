//! # graql-parser
//!
//! Lexer, abstract syntax tree, recursive-descent parser and pretty-printer
//! for the GraQL language as specified in the paper:
//!
//! * data definition: `create table`, `create vertex`, `create edge`
//!   (Figs. 2–4, Appendix A);
//! * data ingest: `ingest table T file.csv` (§II-A2);
//! * queries: `select … from graph <path composition> into table|subgraph`
//!   (Figs. 6–13) and the relational `select … from table` statements with
//!   the Table-1 operations;
//! * path syntax: `--edge-->` / `<--edge--` steps, `def X:` / `foreach x:`
//!   labels, `[ ]` variant steps, `{ … }+` path regular expressions, `and` /
//!   `or` multi-path composition, and `result.Vertex` seeding.
//!
//! Keywords are case-insensitive and contextual; identifiers are
//! case-sensitive. `%Name%` parameters (as in the Berlin queries) are
//! substituted at execution time.
//!
//! ```
//! use graql_parser::{ast, parse_statement};
//!
//! let stmt = parse_statement(
//!     "select y.id from graph ProductVtx(id = %Product1%) \
//!      --feature--> FeatureVtx() <--feature-- def y: ProductVtx() into table T1",
//! ).unwrap();
//! let ast::Stmt::Select(sel) = &stmt else { unreachable!() };
//! assert!(matches!(sel.source, ast::SelectSource::Graph(_)));
//! // The pretty-printer round-trips the AST.
//! assert_eq!(parse_statement(&stmt.to_string()).unwrap(), stmt);
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod token;

pub use ast::*;
pub use parser::{parse_expr, parse_script, parse_statement};

/// Parses a full GraQL script (sequence of statements).
pub fn parse(input: &str) -> graql_types::Result<ast::Script> {
    parse_script(input)
}
