//! The GraQL lexer.
//!
//! Hand-rolled single-pass scanner with longest-match punctuation
//! (`-->` before `--` before `-`; `<--` before `<=` before `<`). Line
//! comments start with `//` (as used in the paper's Appendix A).

use graql_types::{GraqlError, Result};

use crate::token::{Token, TokenKind};

/// Tokenizes `input`, appending a single [`TokenKind::Eof`] sentinel.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            _src: src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.tokens.push(Token { kind, line, col });
    }

    fn err(&self, msg: impl Into<String>) -> GraqlError {
        GraqlError::parse(msg, self.line, self.col)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            s.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident(s), line, col);
                }
                c if c.is_ascii_digit() => {
                    self.lex_number(line, col)?;
                }
                '\'' | '"' => {
                    let quote = c;
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated string literal")),
                            Some(c) if c == quote => {
                                // Doubled quote is an escaped quote.
                                if self.peek() == Some(quote) {
                                    self.bump();
                                    s.push(quote);
                                } else {
                                    break;
                                }
                            }
                            Some(c) => s.push(c),
                        }
                    }
                    self.push(TokenKind::Str(s), line, col);
                }
                '%' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            None => return Err(self.err("unterminated %parameter%")),
                            Some('%') => break,
                            Some(c) if c.is_ascii_alphanumeric() || c == '_' => s.push(c),
                            Some(c) => {
                                return Err(
                                    self.err(format!("invalid character {c:?} in parameter"))
                                )
                            }
                        }
                    }
                    if s.is_empty() {
                        return Err(self.err("empty %parameter% name"));
                    }
                    self.push(TokenKind::Param(s), line, col);
                }
                '-' => {
                    if self.peek_at(1) == Some('-') && self.peek_at(2) == Some('>') {
                        self.bump();
                        self.bump();
                        self.bump();
                        self.push(TokenKind::Arrow, line, col);
                    } else if self.peek_at(1) == Some('-') {
                        self.bump();
                        self.bump();
                        self.push(TokenKind::DashDash, line, col);
                    } else {
                        self.bump();
                        self.push(TokenKind::Minus, line, col);
                    }
                }
                '<' => {
                    if self.peek_at(1) == Some('-') && self.peek_at(2) == Some('-') {
                        self.bump();
                        self.bump();
                        self.bump();
                        self.push(TokenKind::LArrow, line, col);
                    } else if self.peek_at(1) == Some('=') {
                        self.bump();
                        self.bump();
                        self.push(TokenKind::Le, line, col);
                    } else if self.peek_at(1) == Some('>') {
                        self.bump();
                        self.bump();
                        self.push(TokenKind::Ne, line, col);
                    } else {
                        self.bump();
                        self.push(TokenKind::Lt, line, col);
                    }
                }
                '>' => {
                    if self.peek_at(1) == Some('=') {
                        self.bump();
                        self.bump();
                        self.push(TokenKind::Ge, line, col);
                    } else {
                        self.bump();
                        self.push(TokenKind::Gt, line, col);
                    }
                }
                '!' => {
                    if self.peek_at(1) == Some('=') {
                        self.bump();
                        self.bump();
                        self.push(TokenKind::Ne, line, col);
                    } else {
                        return Err(self.err("expected != after !"));
                    }
                }
                '=' => {
                    self.bump();
                    self.push(TokenKind::Eq, line, col);
                }
                _ => {
                    let kind = match c {
                        '(' => TokenKind::LParen,
                        ')' => TokenKind::RParen,
                        '{' => TokenKind::LBrace,
                        '}' => TokenKind::RBrace,
                        '[' => TokenKind::LBracket,
                        ']' => TokenKind::RBracket,
                        ',' => TokenKind::Comma,
                        '.' => TokenKind::Dot,
                        ':' => TokenKind::Colon,
                        ';' => TokenKind::Semi,
                        '*' => TokenKind::Star,
                        '+' => TokenKind::Plus,
                        other => return Err(self.err(format!("unexpected character {other:?}"))),
                    };
                    self.bump();
                    self.push(kind, line, col);
                }
            }
        }
        let (line, col) = (self.line, self.col);
        self.push(TokenKind::Eof, line, col);
        Ok(self.tokens)
    }

    fn lex_number(&mut self, line: u32, col: u32) -> Result<()> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let mut is_float = false;
        // A '.' starts a fraction only when followed by a digit, so that
        // `resQ1.Vn`-style qualified names lex as ident DOT ident.
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            s.push('.');
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(), Some('e' | 'E'))
            && self
                .peek_at(1)
                .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-')
        {
            is_float = true;
            s.push('e');
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                s.push(self.bump().unwrap());
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    s.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let kind = if is_float {
            TokenKind::Float(
                s.parse()
                    .map_err(|_| self.err(format!("bad float literal {s}")))?,
            )
        } else {
            TokenKind::Int(
                s.parse()
                    .map_err(|_| self.err(format!("bad integer literal {s}")))?,
            )
        };
        self.push(kind, line, col);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        let mut v: Vec<TokenKind> = lex(s).unwrap().into_iter().map(|t| t.kind).collect();
        assert_eq!(v.pop(), Some(Eof));
        v
    }

    #[test]
    fn idents_and_numbers() {
        assert_eq!(
            kinds("foo Bar_9 42 1.5 2e3"),
            vec![
                Ident("foo".into()),
                Ident("Bar_9".into()),
                Int(42),
                Float(1.5),
                Float(2000.0)
            ]
        );
    }

    #[test]
    fn path_arrows_longest_match() {
        assert_eq!(
            kinds("--producer--> <--reviewer--"),
            vec![
                DashDash,
                Ident("producer".into()),
                Arrow,
                LArrow,
                Ident("reviewer".into()),
                DashDash,
            ]
        );
    }

    #[test]
    fn qualified_name_is_not_a_float() {
        assert_eq!(
            kinds("resQ1.Vn"),
            vec![Ident("resQ1".into()), Dot, Ident("Vn".into())]
        );
        // After an identifier, `.` is a qualifier dot, never a fraction.
        assert_eq!(kinds("x1.5"), vec![Ident("x1".into()), Dot, Int(5)]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(kinds("= != <> < <= > >="), vec![Eq, Ne, Ne, Lt, Le, Gt, Ge]);
    }

    #[test]
    fn lt_is_not_swallowed_by_larrow() {
        assert_eq!(
            kinds("a <- b"),
            vec![Ident("a".into()), Lt, Minus, Ident("b".into())]
        );
        assert_eq!(
            kinds("a <-- b"),
            vec![Ident("a".into()), LArrow, Ident("b".into())]
        );
    }

    #[test]
    fn strings_and_params() {
        assert_eq!(
            kinds("'US' \"it's\" %Product1%"),
            vec![
                Str("US".into()),
                Str("it's".into()),
                Param("Product1".into())
            ]
        );
        // doubled-quote escape in single quotes
        assert_eq!(kinds("'a''b'"), vec![Str("a'b".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // rest of line\nb"),
            vec![Ident("a".into()), Ident("b".into())]
        );
    }

    #[test]
    fn punctuation_and_regex_tokens() {
        assert_eq!(
            kinds("( ) { }+ [ ] , . : ; * {3}"),
            vec![
                LParen,
                RParen,
                LBrace,
                RBrace,
                Plus,
                LBracket,
                RBracket,
                Comma,
                Dot,
                Colon,
                Semi,
                Star,
                LBrace,
                Int(3),
                RBrace
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn errors_carry_positions() {
        let e = lex("a\n  @").unwrap_err();
        match e {
            GraqlError::Parse { line, col, .. } => {
                assert_eq!((line, col), (2, 3));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(lex("'abc").is_err());
        assert!(lex("%abc").is_err());
        assert!(lex("%a b%").is_err());
    }
}
