//! Recursive-descent parser for GraQL.
//!
//! Keywords are matched case-insensitively against identifier tokens, so
//! none of them are reserved — the Berlin schema's `date` column keeps
//! working even though `date` also introduces date literals and the `date`
//! type name.

use graql_types::{CmpOp, GraqlError, Result};

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses a complete script.
pub fn parse_script(input: &str) -> Result<Script> {
    let mut p = Parser::new(input)?;
    let mut statements = Vec::new();
    while !p.at_eof() {
        statements.push(p.statement()?);
        while p.eat(&TokenKind::Semi) {}
    }
    Ok(Script { statements })
}

/// Parses exactly one statement (must consume all input).
pub fn parse_statement(input: &str) -> Result<Stmt> {
    let mut p = Parser::new(input)?;
    let s = p.statement()?;
    while p.eat(&TokenKind::Semi) {}
    p.expect_eof()?;
    Ok(s)
}

/// Parses a standalone condition expression (used by tests and the DDL
/// builders).
pub fn parse_expr(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        &self.tokens[(self.pos + off).min(self.tokens.len() - 1)].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    /// Span of the current token (length is the token's display width).
    fn span_here(&self) -> Span {
        let t = &self.tokens[self.pos];
        let len = match &t.kind {
            TokenKind::Ident(s) => s.len(),
            TokenKind::Str(s) => s.len() + 2,
            TokenKind::Param(p) => p.len() + 2,
            TokenKind::Int(i) => i.to_string().len(),
            TokenKind::Float(x) => x.to_string().len(),
            _ => 1,
        };
        Span::with_len(t.line, t.col, len as u32)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn err(&self, msg: impl Into<String>) -> GraqlError {
        let (line, col) = self.here();
        GraqlError::parse(format!("{} (found {})", msg.into(), self.peek()), line, col)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}")))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err("expected end of input"))
        }
    }

    /// Case-insensitive keyword test.
    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_kw(kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Stmt> {
        if self.at_kw("create") {
            self.bump();
            if self.eat_kw("table") {
                return Ok(Stmt::CreateTable(self.create_table()?));
            }
            if self.eat_kw("vertex") {
                return Ok(Stmt::CreateVertex(self.create_vertex()?));
            }
            if self.eat_kw("edge") {
                return Ok(Stmt::CreateEdge(self.create_edge()?));
            }
            return Err(self.err("expected 'table', 'vertex' or 'edge' after 'create'"));
        }
        if self.at_kw("ingest") {
            self.bump();
            return Ok(Stmt::Ingest(self.ingest()?));
        }
        if self.at_kw("select") {
            let span = self.span_here();
            self.bump();
            let mut sel = self.select()?;
            sel.span = span;
            return Ok(Stmt::Select(sel));
        }
        if self.at_kw("profile") {
            let span = self.span_here();
            self.bump();
            self.expect_kw("select")?;
            let mut sel = self.select()?;
            sel.span = span;
            if sel.into.is_some() {
                return Err(
                    self.err("'profile' does not capture results: remove the 'into' clause")
                );
            }
            return Ok(Stmt::Profile(sel));
        }
        Err(self.err("expected a statement ('create', 'ingest', 'select' or 'profile')"))
    }

    fn create_table(&mut self) -> Result<CreateTable> {
        let span = self.span_here();
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.type_name()?;
            columns.push((col, ty));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(CreateTable {
            name,
            columns,
            span,
        })
    }

    fn type_name(&mut self) -> Result<TypeName> {
        if self.eat_kw("integer") {
            return Ok(TypeName::Integer);
        }
        if self.eat_kw("float") {
            return Ok(TypeName::Float);
        }
        if self.eat_kw("date") {
            return Ok(TypeName::Date);
        }
        if self.eat_kw("varchar") {
            self.expect(&TokenKind::LParen)?;
            let n = match self.bump() {
                TokenKind::Int(n) if n > 0 => n as u32,
                _ => return Err(self.err("expected varchar length")),
            };
            self.expect(&TokenKind::RParen)?;
            return Ok(TypeName::Varchar(n));
        }
        Err(self.err("expected a type (integer, float, varchar(n), date)"))
    }

    fn create_vertex(&mut self) -> Result<CreateVertex> {
        let span = self.span_here();
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut key = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            key.push(self.ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        self.expect_kw("from")?;
        self.expect_kw("table")?;
        let from_table = self.ident()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(CreateVertex {
            name,
            key,
            from_table,
            where_clause,
            span,
        })
    }

    fn create_edge(&mut self) -> Result<CreateEdge> {
        let span = self.span_here();
        let name = self.ident()?;
        self.expect_kw("with")?;
        self.expect_kw("vertices")?;
        self.expect(&TokenKind::LParen)?;
        let source = self.edge_endpoint()?;
        self.expect(&TokenKind::Comma)?;
        let target = self.edge_endpoint()?;
        self.expect(&TokenKind::RParen)?;
        let mut from_tables = Vec::new();
        if self.eat_kw("from") {
            self.expect_kw("table")?;
            from_tables.push(self.ident()?);
            while self.eat(&TokenKind::Comma) {
                from_tables.push(self.ident()?);
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(CreateEdge {
            name,
            source,
            target,
            from_tables,
            where_clause,
            span,
        })
    }

    fn edge_endpoint(&mut self) -> Result<EdgeEndpoint> {
        let vertex_type = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(EdgeEndpoint { vertex_type, alias })
    }

    fn ingest(&mut self) -> Result<Ingest> {
        self.expect_kw("table")?;
        let span = self.span_here();
        let table = self.ident()?;
        // Filename: quoted string, or bare dotted name (`products.csv`).
        let path = match self.peek().clone() {
            TokenKind::Str(s) => {
                self.bump();
                s
            }
            TokenKind::Ident(_) => {
                let mut s = self.ident()?;
                while self.eat(&TokenKind::Dot) {
                    s.push('.');
                    s.push_str(&self.ident()?);
                }
                s
            }
            _ => return Err(self.err("expected a file name")),
        };
        Ok(Ingest { table, path, span })
    }

    // -- select -------------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt> {
        let mut top = None;
        let mut distinct = false;
        loop {
            if self.at_kw("top") && matches!(self.peek_at(1), TokenKind::Int(_)) {
                self.bump();
                if let TokenKind::Int(n) = self.bump() {
                    top = Some(n as u64);
                }
            } else if self.at_kw("distinct") {
                self.bump();
                distinct = true;
            } else {
                break;
            }
        }
        let targets = self.select_targets()?;
        self.expect_kw("from")?;
        let source = if self.eat_kw("graph") {
            SelectSource::Graph(self.path_composition()?)
        } else if self.eat_kw("table") {
            SelectSource::Table(self.ident()?)
        } else {
            return Err(self.err("expected 'graph' or 'table' after 'from'"));
        };
        let mut where_clause = None;
        let mut group_by = Vec::new();
        let mut order_by = Vec::new();
        let mut into = None;
        loop {
            if self.eat_kw("where") {
                where_clause = Some(self.expr()?);
            } else if self.at_kw("group") {
                self.bump();
                self.expect_kw("by")?;
                group_by.push(self.col_ref()?);
                while self.eat(&TokenKind::Comma) {
                    group_by.push(self.col_ref()?);
                }
            } else if self.at_kw("order") {
                self.bump();
                self.expect_kw("by")?;
                loop {
                    let col = self.col_ref()?;
                    let desc = if self.eat_kw("desc") {
                        true
                    } else {
                        self.eat_kw("asc");
                        false
                    };
                    order_by.push(OrderKey { col, desc });
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            } else if self.at_kw("into") {
                self.bump();
                if self.eat_kw("table") {
                    into = Some(IntoClause::Table(self.ident()?));
                } else if self.eat_kw("subgraph") {
                    into = Some(IntoClause::Subgraph(self.ident()?));
                } else {
                    return Err(self.err("expected 'table' or 'subgraph' after 'into'"));
                }
            } else {
                break;
            }
        }
        Ok(SelectStmt {
            distinct,
            top,
            targets,
            source,
            where_clause,
            group_by,
            order_by,
            into,
            span: Span::default(),
        })
    }

    fn select_targets(&mut self) -> Result<SelectTargets> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectTargets::Star);
        }
        let mut items = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        Ok(SelectTargets::Items(items))
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = if let Some(agg) = self.try_agg_call()? {
            SelectExpr::Agg(agg)
        } else {
            SelectExpr::Col(self.col_ref()?)
        };
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn try_agg_call(&mut self) -> Result<Option<AggCall>> {
        let func = match self.peek() {
            TokenKind::Ident(s) => s.to_ascii_lowercase(),
            _ => return Ok(None),
        };
        if !matches!(func.as_str(), "count" | "sum" | "avg" | "min" | "max")
            || self.peek_at(1) != &TokenKind::LParen
        {
            return Ok(None);
        }
        self.bump();
        self.expect(&TokenKind::LParen)?;
        let call = if func == "count" && self.eat(&TokenKind::Star) {
            AggCall::CountStar
        } else {
            let col = self.col_ref()?;
            match func.as_str() {
                "count" => AggCall::Count(col),
                "sum" => AggCall::Sum(col),
                "avg" => AggCall::Avg(col),
                "min" => AggCall::Min(col),
                "max" => AggCall::Max(col),
                _ => unreachable!(),
            }
        };
        self.expect(&TokenKind::RParen)?;
        Ok(Some(call))
    }

    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            let name = self.ident()?;
            Ok(ColRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColRef {
                qualifier: None,
                name: first,
            })
        }
    }

    // -- path queries ---------------------------------------------------------

    fn path_composition(&mut self) -> Result<PathComposition> {
        // or binds loosest.
        let mut parts = vec![self.path_and()?];
        while self.eat_kw("or") {
            parts.push(self.path_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            PathComposition::Or(parts)
        })
    }

    fn path_and(&mut self) -> Result<PathComposition> {
        let mut parts = vec![self.path_primary()?];
        while self.at_kw("and") {
            self.bump();
            parts.push(self.path_primary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            PathComposition::And(parts)
        })
    }

    fn path_primary(&mut self) -> Result<PathComposition> {
        if self.eat(&TokenKind::LParen) {
            let inner = self.path_composition()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(inner);
        }
        Ok(PathComposition::Single(self.path_query()?))
    }

    fn path_query(&mut self) -> Result<PathQuery> {
        let head = self.vertex_step()?;
        let mut segments = Vec::new();
        loop {
            match self.peek() {
                TokenKind::DashDash => {
                    self.bump();
                    let mut edge = self.edge_inner()?;
                    edge.dir = Dir::Out;
                    self.expect(&TokenKind::Arrow)?;
                    let vertex = self.vertex_step()?;
                    segments.push(Segment::Hop { edge, vertex });
                }
                TokenKind::LArrow => {
                    self.bump();
                    let mut edge = self.edge_inner()?;
                    edge.dir = Dir::In;
                    self.expect(&TokenKind::DashDash)?;
                    let vertex = self.vertex_step()?;
                    segments.push(Segment::Hop { edge, vertex });
                }
                // Cosmetic arrow before a regex group (Fig. 10).
                TokenKind::Arrow if self.peek_at(1) == &TokenKind::LBrace => {
                    self.bump();
                    segments.push(self.group_segment()?);
                }
                TokenKind::LBrace => {
                    segments.push(self.group_segment()?);
                }
                _ => break,
            }
        }
        Ok(PathQuery { head, segments })
    }

    fn group_segment(&mut self) -> Result<Segment> {
        let span = self.span_here();
        self.expect(&TokenKind::LBrace)?;
        let mut hops = Vec::new();
        loop {
            match self.peek() {
                TokenKind::DashDash => {
                    self.bump();
                    let mut edge = self.edge_inner()?;
                    edge.dir = Dir::Out;
                    self.expect(&TokenKind::Arrow)?;
                    hops.push((edge, self.vertex_step()?));
                }
                TokenKind::LArrow => {
                    self.bump();
                    let mut edge = self.edge_inner()?;
                    edge.dir = Dir::In;
                    self.expect(&TokenKind::DashDash)?;
                    hops.push((edge, self.vertex_step()?));
                }
                TokenKind::RBrace => break,
                _ => return Err(self.err("expected an edge step or '}' inside a path group")),
            }
        }
        self.expect(&TokenKind::RBrace)?;
        if hops.is_empty() {
            return Err(self.err("a path group must contain at least one step"));
        }
        let quant = self.quantifier()?;
        // Optional exit vertex after `-->` (the VertexB terminator).
        let exit = if self.eat(&TokenKind::Arrow) {
            Some(self.vertex_step()?)
        } else {
            None
        };
        Ok(Segment::Group {
            hops,
            quant,
            exit,
            span,
        })
    }

    fn quantifier(&mut self) -> Result<Quant> {
        match self.peek().clone() {
            TokenKind::Plus => {
                self.bump();
                Ok(Quant::Plus)
            }
            TokenKind::Star => {
                self.bump();
                Ok(Quant::Star)
            }
            TokenKind::LBrace => {
                self.bump();
                let lo = match self.bump() {
                    TokenKind::Int(n) if n >= 0 => n as u32,
                    _ => return Err(self.err("expected repetition count")),
                };
                let hi = if self.eat(&TokenKind::Comma) {
                    match self.bump() {
                        TokenKind::Int(n) if n >= lo as i64 => n as u32,
                        _ => return Err(self.err("expected upper repetition bound >= lower")),
                    }
                } else {
                    lo
                };
                self.expect(&TokenKind::RBrace)?;
                Ok(Quant::Range(lo, hi))
            }
            _ => Err(self.err("expected a quantifier (+, * or {n})")),
        }
    }

    /// Parses a vertex step: `[def X:|foreach x:] [seed.] (name|[ ]) [(cond)]`.
    fn vertex_step(&mut self) -> Result<VertexStep> {
        let span = self.span_here();
        let label_def = self.try_label_def()?;
        // Seed prefix: ident '.' ident.
        let (seed, name) = match self.peek() {
            TokenKind::LBracket => {
                self.bump();
                self.expect(&TokenKind::RBracket)?;
                (None, StepName::Any)
            }
            TokenKind::Ident(_) => {
                let first = self.ident()?;
                if self.eat(&TokenKind::Dot) {
                    (Some(first), StepName::Named(self.ident()?))
                } else {
                    (None, StepName::Named(first))
                }
            }
            _ => return Err(self.err("expected a vertex step")),
        };
        let cond = self.opt_step_condition()?;
        Ok(VertexStep {
            label_def,
            seed,
            name,
            cond,
            span,
        })
    }

    /// The inside of an edge step (between the arrow delimiters); direction
    /// is patched in by the caller.
    fn edge_inner(&mut self) -> Result<EdgeStep> {
        let span = self.span_here();
        let label_def = self.try_label_def()?;
        let name = match self.peek() {
            TokenKind::LBracket => {
                self.bump();
                self.expect(&TokenKind::RBracket)?;
                StepName::Any
            }
            TokenKind::Ident(_) => StepName::Named(self.ident()?),
            _ => return Err(self.err("expected an edge step")),
        };
        let cond = self.opt_step_condition()?;
        Ok(EdgeStep {
            label_def,
            name,
            cond,
            dir: Dir::Out,
            span,
        })
    }

    fn try_label_def(&mut self) -> Result<Option<LabelDef>> {
        let kind = if self.at_kw("def") {
            LabelKind::Set
        } else if self.at_kw("foreach") {
            LabelKind::Each
        } else {
            return Ok(None);
        };
        // Only a label definition if followed by `name :`.
        if matches!(self.peek_at(1), TokenKind::Ident(_)) && self.peek_at(2) == &TokenKind::Colon {
            self.bump();
            let span = self.span_here();
            let name = self.ident()?;
            self.expect(&TokenKind::Colon)?;
            Ok(Some(LabelDef { kind, name, span }))
        } else {
            Ok(None)
        }
    }

    fn opt_step_condition(&mut self) -> Result<Option<Expr>> {
        if !self.eat(&TokenKind::LParen) {
            return Ok(None);
        }
        if self.eat(&TokenKind::RParen) {
            return Ok(None); // `( )` = no filter
        }
        let e = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Some(e))
    }

    // -- conditions -----------------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr> {
        let mut parts = vec![self.and_expr()?];
        while self.at_kw("or") {
            self.bump();
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Expr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut parts = vec![self.not_expr()?];
        while self.at_kw("and") {
            self.bump();
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Expr::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.at_kw("not") {
            self.bump();
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        if self.peek() == &TokenKind::LParen {
            self.bump();
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let span = self.span_here();
        let lhs = self.operand()?;
        let op = match self.bump() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => {
                self.pos -= 1;
                return Err(self.err("expected a comparison operator"));
            }
        };
        let rhs = self.operand()?;
        Ok(Expr::Cmp { op, lhs, rhs, span })
    }

    fn operand(&mut self) -> Result<Operand> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Operand::Lit(Lit::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Operand::Lit(Lit::Float(f)))
            }
            TokenKind::Minus => {
                self.bump();
                match self.bump() {
                    TokenKind::Int(i) => Ok(Operand::Lit(Lit::Int(-i))),
                    TokenKind::Float(f) => Ok(Operand::Lit(Lit::Float(-f))),
                    _ => {
                        self.pos -= 1;
                        Err(self.err("expected a number after unary minus"))
                    }
                }
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Operand::Lit(Lit::Str(s)))
            }
            TokenKind::Param(p) => {
                self.bump();
                Ok(Operand::Lit(Lit::Param(p)))
            }
            // `date '2008-01-01'` literal (but `date = …` is a column ref).
            TokenKind::Ident(s)
                if s.eq_ignore_ascii_case("date")
                    && matches!(self.peek_at(1), TokenKind::Str(_)) =>
            {
                self.bump();
                if let TokenKind::Str(d) = self.bump() {
                    let parsed: graql_types::Date = d.parse().map_err(|e: GraqlError| {
                        let (line, col) = self.here();
                        GraqlError::parse(e.to_string(), line, col)
                    })?;
                    Ok(Operand::Lit(Lit::Date(parsed)))
                } else {
                    unreachable!("peeked a string literal")
                }
            }
            TokenKind::Ident(_) => {
                let c = self.col_ref()?;
                Ok(Operand::Attr {
                    qualifier: c.qualifier,
                    name: c.name,
                })
            }
            _ => Err(self.err("expected an operand (attribute, literal or %param%)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_all_types() {
        let s = parse_statement(
            "create table Offers(id varchar(10), price float, deliveryDays integer, validFrom date)",
        )
        .unwrap();
        let Stmt::CreateTable(t) = s else {
            panic!("wrong statement")
        };
        assert_eq!(t.name, "Offers");
        assert_eq!(t.columns.len(), 4);
        assert_eq!(t.columns[0], ("id".into(), TypeName::Varchar(10)));
        assert_eq!(t.columns[3], ("validFrom".into(), TypeName::Date));
    }

    #[test]
    fn profile_wraps_a_select() {
        let s = parse_statement("profile select y.id from graph def y: ProductVtx ()").unwrap();
        let Stmt::Profile(sel) = &s else {
            panic!("expected profile, got {s:?}")
        };
        assert!(sel.into.is_none());
        assert_eq!(s.as_select().map(|sel| sel.targets.clone()), {
            let Stmt::Profile(sel) = &s else {
                unreachable!()
            };
            Some(sel.targets.clone())
        });
        // Round-trips through the printer.
        let printed = s.to_string();
        assert!(printed.starts_with("profile select "), "{printed}");
        assert_eq!(parse_statement(&printed).unwrap(), s);
    }

    #[test]
    fn profile_rejects_into() {
        let err =
            parse_statement("profile select y.id from graph def y: ProductVtx () into table T1")
                .unwrap_err();
        assert!(
            err.to_string().contains("'profile' does not capture"),
            "{err}"
        );
    }

    #[test]
    fn profile_requires_select() {
        assert!(parse_statement("profile create table T(a integer)").is_err());
    }

    #[test]
    fn create_vertex_fig2() {
        let s = parse_statement("create vertex ProductVtx(id) from table Products").unwrap();
        let Stmt::CreateVertex(v) = s else { panic!() };
        assert_eq!(v.name, "ProductVtx");
        assert_eq!(v.key, vec!["id"]);
        assert_eq!(v.from_table, "Products");
        assert!(v.where_clause.is_none());
    }

    #[test]
    fn create_edge_fig3_subclass_with_aliases() {
        let s = parse_statement(
            "create edge subclass with vertices (TypeVtx as A, TypeVtx as B) where A.subclassOf = B.id",
        )
        .unwrap();
        let Stmt::CreateEdge(e) = s else { panic!() };
        assert_eq!(e.name, "subclass");
        assert_eq!(e.source.alias.as_deref(), Some("A"));
        assert_eq!(e.target.vertex_type, "TypeVtx");
        assert!(e.from_tables.is_empty());
        let Some(Expr::Cmp {
            op: CmpOp::Eq, lhs, ..
        }) = e.where_clause
        else {
            panic!()
        };
        assert_eq!(
            lhs,
            Operand::Attr {
                qualifier: Some("A".into()),
                name: "subclassOf".into()
            }
        );
    }

    #[test]
    fn create_edge_fig3_type_with_assoc_table() {
        let s = parse_statement(
            "create edge type with vertices (ProductVtx, TypeVtx) from table ProductTypes \
             where ProductTypes.product = ProductVtx.id and ProductTypes.type = TypeVtx.id",
        )
        .unwrap();
        let Stmt::CreateEdge(e) = s else { panic!() };
        assert_eq!(e.from_tables, vec!["ProductTypes"]);
        assert!(matches!(e.where_clause, Some(Expr::And(ref xs)) if xs.len() == 2));
    }

    #[test]
    fn ingest_with_bare_and_quoted_paths() {
        let Stmt::Ingest(i) = parse_statement("ingest table Products products.csv").unwrap() else {
            panic!()
        };
        assert_eq!(
            (i.table.as_str(), i.path.as_str()),
            ("Products", "products.csv")
        );
        let Stmt::Ingest(i) =
            parse_statement("ingest table Products '/data/products v2.csv'").unwrap()
        else {
            panic!()
        };
        assert_eq!(i.path, "/data/products v2.csv");
    }

    #[test]
    fn berlin_query_2_figure_6() {
        // First statement of Fig. 6 (graph select into table).
        let s = parse_statement(
            "select y.id from graph \
             ProductVtx (id = %Product1%) --feature--> FeatureVtx \
             <--feature-- def y: ProductVtx (id != %Product1%) \
             into table T1",
        )
        .unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectSource::Graph(PathComposition::Single(path)) = &sel.source else {
            panic!()
        };
        assert_eq!(path.segments.len(), 2);
        let Segment::Hop { edge, vertex } = &path.segments[1] else {
            panic!()
        };
        assert_eq!(edge.dir, Dir::In);
        assert_eq!(
            vertex.label_def,
            Some(LabelDef {
                kind: LabelKind::Set,
                name: "y".into(),
                span: Span::default()
            })
        );
        assert_eq!(sel.into, Some(IntoClause::Table("T1".into())));

        // Second statement of Fig. 6 (relational postprocessing).
        let s2 = parse_statement(
            "select top 10 id, count(*) as groupCount from table T1 \
             group by id order by groupCount desc",
        )
        .unwrap();
        let Stmt::Select(sel2) = s2 else { panic!() };
        assert_eq!(sel2.top, Some(10));
        assert!(sel2.has_aggregates());
        assert_eq!(sel2.group_by.len(), 1);
        assert!(sel2.order_by[0].desc);
    }

    #[test]
    fn berlin_query_1_figure_7_multipath() {
        let s = parse_statement(
            "select TypeVtx.id from graph \
             PersonVtx (country = %Country2%) <--reviewer-- ReviewVtx \
             --reviewFor--> foreach y: ProductVtx \
             --producer--> ProducerVtx (country = %Country1%) \
             and (y --type--> TypeVtx) \
             into table T1",
        )
        .unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectSource::Graph(PathComposition::And(parts)) = &sel.source else {
            panic!("expected and-composition, got {:?}", sel.source)
        };
        assert_eq!(parts.len(), 2);
        let PathComposition::Single(branch) = &parts[1] else {
            panic!()
        };
        assert_eq!(branch.head.name, StepName::Named("y".into()));
    }

    #[test]
    fn variant_steps_figure_9() {
        let s = parse_statement(
            "select * from graph ProductVtx(id = %Product1%) <--[]-- [] into subgraph res",
        )
        .unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectSource::Graph(PathComposition::Single(p)) = &sel.source else {
            panic!()
        };
        let Segment::Hop { edge, vertex } = &p.segments[0] else {
            panic!()
        };
        assert_eq!(edge.name, StepName::Any);
        assert_eq!(vertex.name, StepName::Any);
        assert_eq!(sel.into, Some(IntoClause::Subgraph("res".into())));
    }

    #[test]
    fn regex_path_figure_10() {
        let s = parse_statement(
            "select * from graph VertexA(x = 1) --> { --[]--> [] }+ --> VertexB(y = 2) \
             into subgraph r",
        )
        .unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectSource::Graph(PathComposition::Single(p)) = &sel.source else {
            panic!()
        };
        assert_eq!(p.segments.len(), 1);
        let Segment::Group {
            hops, quant, exit, ..
        } = &p.segments[0]
        else {
            panic!()
        };
        assert_eq!(hops.len(), 1);
        assert_eq!(*quant, Quant::Plus);
        assert!(exit.is_some());
    }

    #[test]
    fn regex_quantifiers() {
        for (src, expected) in [
            ("{ --[]--> [] }*", Quant::Star),
            ("{ --[]--> [] }{10}", Quant::Range(10, 10)),
            ("{ --[]--> [] }{2,5}", Quant::Range(2, 5)),
        ] {
            let q = format!("select * from graph A() {src}");
            let Stmt::Select(sel) = parse_statement(&q).unwrap() else {
                panic!()
            };
            let SelectSource::Graph(PathComposition::Single(p)) = &sel.source else {
                panic!()
            };
            let Segment::Group { quant, .. } = &p.segments[0] else {
                panic!()
            };
            assert_eq!(*quant, expected, "{src}");
        }
    }

    #[test]
    fn structural_query_eq12() {
        // def X : [] --[]--> X
        let s = parse_statement("select * from graph def X: [] --[]--> X").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectSource::Graph(PathComposition::Single(p)) = &sel.source else {
            panic!()
        };
        assert_eq!(p.head.label_def.as_ref().unwrap().name, "X");
        assert_eq!(p.head.name, StepName::Any);
        let Segment::Hop { vertex, .. } = &p.segments[0] else {
            panic!()
        };
        assert_eq!(vertex.name, StepName::Named("X".into()));
    }

    #[test]
    fn seeded_query_figure_12() {
        let s = parse_statement("select * from graph resQ1.Vn(c = 1) --e--> W").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectSource::Graph(PathComposition::Single(p)) = &sel.source else {
            panic!()
        };
        assert_eq!(p.head.seed.as_deref(), Some("resQ1"));
        assert_eq!(p.head.name, StepName::Named("Vn".into()));
    }

    #[test]
    fn empty_parens_mean_no_filter() {
        let s = parse_statement("select * from graph V() --e--> W()").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        let SelectSource::Graph(PathComposition::Single(p)) = &sel.source else {
            panic!()
        };
        assert!(p.head.cond.is_none());
    }

    #[test]
    fn expression_precedence_and_not() {
        let e = parse_expr("a = 1 or b = 2 and not c = 3").unwrap();
        let Expr::Or(parts) = e else { panic!() };
        assert_eq!(parts.len(), 2);
        let Expr::And(rhs) = &parts[1] else { panic!() };
        assert!(matches!(rhs[1], Expr::Not(_)));
    }

    #[test]
    fn date_literals_and_column_named_date() {
        let e = parse_expr("validFrom <= date '2008-06-01' and date = 7").unwrap();
        let Expr::And(parts) = e else { panic!() };
        let Expr::Cmp { rhs, .. } = &parts[0] else {
            panic!()
        };
        assert!(matches!(rhs, Operand::Lit(Lit::Date(_))));
        let Expr::Cmp { lhs, .. } = &parts[1] else {
            panic!()
        };
        assert_eq!(
            lhs,
            &Operand::Attr {
                qualifier: None,
                name: "date".into()
            }
        );
    }

    #[test]
    fn negative_literals() {
        let e = parse_expr("x > -5").unwrap();
        let Expr::Cmp { rhs, .. } = e else { panic!() };
        assert_eq!(rhs, Operand::Lit(Lit::Int(-5)));
    }

    #[test]
    fn script_with_multiple_statements() {
        let script = parse_script(
            "create table T(a integer)\n\
             ingest table T t.csv;\n\
             select a from table T",
        )
        .unwrap();
        assert_eq!(script.statements.len(), 3);
    }

    #[test]
    fn errors_report_positions() {
        let err = parse_statement("create table T(a integer,)").unwrap_err();
        assert!(matches!(err, GraqlError::Parse { .. }), "{err}");
        let err = parse_statement("select from table T").unwrap_err();
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_statement("SELECT a FROM TABLE T").is_ok());
        assert!(parse_statement("Create Table T(a Integer)").is_ok());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("select a from table T xyz()").is_err());
    }
}
