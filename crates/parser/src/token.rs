//! Token kinds produced by the GraQL lexer.

use std::fmt;

/// A lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// The token vocabulary of GraQL.
///
/// There are no reserved words at the lexical level: keywords are
/// identifiers matched case-insensitively by the parser in context, so
/// users may name a column `date` or a vertex type `Graph`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (case-sensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string literal (single or double quotes).
    Str(String),
    /// `%Name%` substitution parameter (Berlin-query style).
    Param(String),

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Dot,
    Colon,
    Semi,
    Star,
    Plus,
    Minus,

    // Comparison operators.
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,

    // Path arrows.
    /// `--` (edge-step delimiter).
    DashDash,
    /// `-->` (out-edge arrowhead).
    Arrow,
    /// `<--` (in-edge arrowhead).
    LArrow,

    /// End of input (single trailing sentinel).
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Param(p) => write!(f, "%{p}%"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::DashDash => write!(f, "--"),
            TokenKind::Arrow => write!(f, "-->"),
            TokenKind::LArrow => write!(f, "<--"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

impl TokenKind {
    /// Case-insensitive keyword check against an identifier token.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}
