//! Abstract syntax tree for GraQL.
//!
//! The shapes follow the paper's grammar fragments: DDL (Figs. 2–4 and
//! Appendix A), ingest (§II-A2), path queries with labels, variant steps
//! and regexes (§II-B), and select statements with graph or table sources
//! and `into table` / `into subgraph` result capture (§II-C).

use graql_types::CmpOp;
pub use graql_types::Span;

/// A full GraQL script: an ordered sequence of statements (§III, Ω).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    pub statements: Vec<Stmt>,
}

/// One GraQL statement.
// AST enums are built once per parse and moved, never stored in bulk;
// boxing the large variants would ripple `Box` through every consumer
// for no measurable gain.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    CreateTable(CreateTable),
    CreateVertex(CreateVertex),
    CreateEdge(CreateEdge),
    Ingest(Ingest),
    Select(SelectStmt),
    /// `profile <select>`: run the select with a span recorder armed and
    /// return the measured stage report instead of the result.
    Profile(SelectStmt),
}

/// Surface type names of Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    Integer,
    Float,
    Varchar(u32),
    Date,
}

impl TypeName {
    pub fn to_data_type(self) -> graql_types::DataType {
        match self {
            TypeName::Integer => graql_types::DataType::Integer,
            TypeName::Float => graql_types::DataType::Float,
            TypeName::Varchar(n) => graql_types::DataType::Varchar(n),
            TypeName::Date => graql_types::DataType::Date,
        }
    }
}

/// `create table T (col type, …)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<(String, TypeName)>,
    pub span: Span,
}

/// `create vertex V(key, …) from table T [where cond]` (Eq. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CreateVertex {
    pub name: String,
    /// Key columns of the vertex type (the unique identifier).
    pub key: Vec<String>,
    pub from_table: String,
    pub where_clause: Option<Expr>,
    pub span: Span,
}

/// One endpoint in a `create edge … with vertices (…)` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeEndpoint {
    /// Vertex type name.
    pub vertex_type: String,
    /// Optional alias (`TypeVtx as A`), needed when both endpoints share a
    /// type (the `subclass` edge of Fig. 3).
    pub alias: Option<String>,
}

/// `create edge E with vertices (S [as A], T [as B]) [from table R,…] where cond`
/// (Eq. 2). Order of the endpoints fixes the edge direction.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateEdge {
    pub name: String,
    pub source: EdgeEndpoint,
    pub target: EdgeEndpoint,
    /// Associated tables. With exactly one, each satisfying row becomes an
    /// edge instance carrying that table's attributes; with zero or
    /// several, edges are the distinct endpoint pairs of the join.
    pub from_tables: Vec<String>,
    pub where_clause: Option<Expr>,
    pub span: Span,
}

/// `ingest table T path.csv`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ingest {
    pub table: String,
    pub path: String,
    pub span: Span,
}

// ---------------------------------------------------------------------------
// Conditions
// ---------------------------------------------------------------------------

/// A boolean condition over attributes, labels and constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    Cmp {
        op: CmpOp,
        lhs: Operand,
        rhs: Operand,
        span: Span,
    },
}

/// A scalar operand of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// `name` (attribute of the current step / sole table) or
    /// `qualifier.name` (endpoint alias, table name, vertex type or label).
    Attr {
        qualifier: Option<String>,
        name: String,
    },
    Lit(Lit),
}

/// Literal constants; `Param` is a `%Name%` placeholder bound at execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    Int(i64),
    Float(f64),
    Str(String),
    /// `date 'YYYY-MM-DD'`.
    Date(graql_types::Date),
    Param(String),
}

// ---------------------------------------------------------------------------
// Path queries
// ---------------------------------------------------------------------------

/// Label kinds (§II-B2): `def X:` (set) vs `foreach x:` (element-wise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelKind {
    Set,
    Each,
}

/// A label definition attached to a step.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelDef {
    pub kind: LabelKind,
    pub name: String,
    pub span: Span,
}

/// Name position of a step: a concrete type / label name, or the `[ ]`
/// variant metavariable (§II-B4).
#[derive(Debug, Clone, PartialEq)]
pub enum StepName {
    Named(String),
    Any,
}

/// A vertex step `def X: resQ1.V(cond)` in all its optional glory.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexStep {
    pub label_def: Option<LabelDef>,
    /// `result.` prefix seeding this step from a named prior result
    /// (Fig. 12).
    pub seed: Option<String>,
    /// Vertex type name, label reference, or `[ ]`. Which of the first two
    /// it is gets resolved during analysis, since labels and types share
    /// the namespace syntax.
    pub name: StepName,
    /// Filter condition; `()` parses as `None`. Variant steps must not
    /// carry conditions (checked in analysis, not in the grammar).
    pub cond: Option<Expr>,
    pub span: Span,
}

/// Direction of an edge traversal in path syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `--edge-->`: follow out-edges (declared direction).
    Out,
    /// `<--edge--`: follow in-edges (reverse direction).
    In,
}

/// An edge step with its traversal direction.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeStep {
    pub label_def: Option<LabelDef>,
    pub name: StepName,
    pub cond: Option<Expr>,
    pub dir: Dir,
    pub span: Span,
}

/// A path continuation following a vertex step.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// `--e--> V` or `<--e-- V`.
    Hop { edge: EdgeStep, vertex: VertexStep },
    /// `{ hop+ }quant [V]`: a path regular expression over variant steps
    /// (Fig. 10). The optional trailing vertex step unifies with the
    /// frontier after repetition (the `VertexB(conditionsB)` terminator).
    Group {
        hops: Vec<(EdgeStep, VertexStep)>,
        quant: Quant,
        exit: Option<VertexStep>,
        span: Span,
    },
}

/// Regular-expression quantifier on a path group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// `*` — zero or more repetitions.
    Star,
    /// `+` — one or more repetitions.
    Plus,
    /// `{n}` / `{n,m}` — bounded repetitions.
    Range(u32, u32),
}

impl Quant {
    pub fn bounds(self, max_cap: u32) -> (u32, u32) {
        match self {
            Quant::Star => (0, max_cap),
            Quant::Plus => (1, max_cap),
            Quant::Range(a, b) => (a, b),
        }
    }
}

/// A simple linear path query: head vertex step + segments (Eq. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct PathQuery {
    pub head: VertexStep,
    pub segments: Vec<Segment>,
}

/// Multi-path composition (§II-B3): `and` requires a shared label, `or`
/// unions results. `or` binds looser than `and`.
// AST enums are built once per parse and moved, never stored in bulk;
// boxing the large variants would ripple `Box` through every consumer
// for no measurable gain.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PathComposition {
    Single(PathQuery),
    And(Vec<PathComposition>),
    Or(Vec<PathComposition>),
}

// ---------------------------------------------------------------------------
// Select statements
// ---------------------------------------------------------------------------

/// A column / attribute reference in a select context.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    pub qualifier: Option<String>,
    pub name: String,
}

/// Aggregate function call in a projection.
#[derive(Debug, Clone, PartialEq)]
pub enum AggCall {
    CountStar,
    Count(ColRef),
    Sum(ColRef),
    Avg(ColRef),
    Min(ColRef),
    Max(ColRef),
}

/// One projected item.
///
/// A bare identifier parses as an unqualified [`ColRef`]; over a graph
/// source, analysis reinterprets it as a step/label reference (`select V0,
/// Vn from graph …`), while over a table source it is a column name.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectExpr {
    /// `step.attr`, bare `attr` (table context) or bare step name (graph
    /// context).
    Col(ColRef),
    Agg(AggCall),
}

/// Projection item with optional `as` alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SelectExpr,
    pub alias: Option<String>,
}

/// The projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectTargets {
    /// `select *`.
    Star,
    Items(Vec<SelectItem>),
}

/// What the select draws from.
// AST enums are built once per parse and moved, never stored in bulk;
// boxing the large variants would ripple `Box` through every consumer
// for no measurable gain.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SelectSource {
    /// `from graph <path composition>`.
    Graph(PathComposition),
    /// `from table T`.
    Table(String),
}

/// Result capture (§II-C).
#[derive(Debug, Clone, PartialEq)]
pub enum IntoClause {
    Table(String),
    Subgraph(String),
}

/// `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub col: ColRef,
    pub desc: bool,
}

/// The unified select statement (graph or table source).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    /// `top n`.
    pub top: Option<u64>,
    pub targets: SelectTargets,
    pub source: SelectSource,
    /// `where` over a table source (graph sources place conditions on
    /// steps instead).
    pub where_clause: Option<Expr>,
    pub group_by: Vec<ColRef>,
    pub order_by: Vec<OrderKey>,
    pub into: Option<IntoClause>,
    pub span: Span,
}

impl Stmt {
    /// Source position of the statement (its leading keyword).
    pub fn span(&self) -> Span {
        match self {
            Stmt::CreateTable(s) => s.span,
            Stmt::CreateVertex(s) => s.span,
            Stmt::CreateEdge(s) => s.span,
            Stmt::Ingest(s) => s.span,
            Stmt::Select(s) => s.span,
            Stmt::Profile(s) => s.span,
        }
    }

    /// The select underneath, for `select` and `profile` alike — the
    /// analyzer and linters treat both as reads of the same shape.
    pub fn as_select(&self) -> Option<&SelectStmt> {
        match self {
            Stmt::Select(s) | Stmt::Profile(s) => Some(s),
            _ => None,
        }
    }
}

impl Expr {
    /// Source position of the leftmost comparison in this expression
    /// (unknown for synthesized trees).
    pub fn span(&self) -> Span {
        match self {
            Expr::And(ps) | Expr::Or(ps) => ps.first().map(Expr::span).unwrap_or_default(),
            Expr::Not(inner) => inner.span(),
            Expr::Cmp { span, .. } => *span,
        }
    }
}

impl SelectStmt {
    /// True if any projection item is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        match &self.targets {
            SelectTargets::Star => false,
            SelectTargets::Items(items) => {
                items.iter().any(|i| matches!(i.expr, SelectExpr::Agg(_)))
            }
        }
    }
}

impl PathQuery {
    /// Iterates all vertex steps (head, hop vertices, group hops and group
    /// exits) in syntactic order.
    pub fn vertex_steps(&self) -> Vec<&VertexStep> {
        let mut out = vec![&self.head];
        for s in &self.segments {
            match s {
                Segment::Hop { vertex, .. } => out.push(vertex),
                Segment::Group { hops, exit, .. } => {
                    out.extend(hops.iter().map(|(_, v)| v));
                    if let Some(v) = exit {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Iterates all edge steps in syntactic order.
    pub fn edge_steps(&self) -> Vec<&EdgeStep> {
        let mut out = Vec::new();
        for s in &self.segments {
            match s {
                Segment::Hop { edge, .. } => out.push(edge),
                Segment::Group { hops, .. } => out.extend(hops.iter().map(|(e, _)| e)),
            }
        }
        out
    }
}

impl PathComposition {
    /// All simple paths in the composition, left to right.
    pub fn paths(&self) -> Vec<&PathQuery> {
        match self {
            PathComposition::Single(p) => vec![p],
            PathComposition::And(cs) | PathComposition::Or(cs) => {
                cs.iter().flat_map(|c| c.paths()).collect()
            }
        }
    }
}
