//! On-disk framing of the write-ahead log.
//!
//! The log is a 5-byte header (`GWAL` magic + format version) followed by
//! length-prefixed, checksummed records:
//!
//! ```text
//! frame   := [u32le payload_len][u64le fnv1a64(payload)][payload]
//! payload := [u64le lsn][u8 kind][body]
//! kind 0  := logged statement; body is the GQIR encoding of a
//!            one-statement script (crate::ir)
//! kind 1  := resolved ingest; body is [u32le table_len][table utf-8]
//!            [csv utf-8 to end] — the CSV text is inlined so replay
//!            never depends on the source file still existing
//! ```
//!
//! [`scan`] walks a log image and stops at the first frame that is
//! incomplete, fails its checksum, or decodes to a malformed payload:
//! everything from that point on is a *torn tail* — bytes a crash left
//! behind mid-write — and is discarded by recovery. A record is only
//! acknowledged to a writer after it (and everything before it) has been
//! fsynced, so a committed record can never sit behind a torn one.

use crate::persist::fnv1a64;

pub(crate) const MAGIC: [u8; 4] = *b"GWAL";
pub(crate) const VERSION: u8 = 1;
/// Byte length of the log header (magic + version).
pub(crate) const HEADER_LEN: u64 = 5;
/// Frame overhead before the payload: length prefix + checksum.
const FRAME_OVERHEAD: usize = 12;
/// Sanity cap on a single payload; anything larger is treated as torn.
const MAX_PAYLOAD: usize = 1 << 30;

const KIND_STMT: u8 = 0;
const KIND_INGEST: u8 = 1;

/// One durable mutation, in its replayable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// A logged statement (DDL create, `into`-capturing select) as the
    /// GQIR encoding of a one-statement script.
    Stmt { ir: Vec<u8> },
    /// A resolved `ingest`: target table plus the CSV text itself.
    Ingest { table: String, csv: String },
}

/// A record decoded from the log by [`scan`].
#[derive(Debug)]
pub(crate) struct ScannedRecord {
    pub lsn: u64,
    pub payload: WalPayload,
}

/// Encodes one record into its on-disk frame.
pub(crate) fn encode_frame(lsn: u64, payload: &WalPayload) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    body.extend_from_slice(&lsn.to_le_bytes());
    match payload {
        WalPayload::Stmt { ir } => {
            body.push(KIND_STMT);
            body.extend_from_slice(ir);
        }
        WalPayload::Ingest { table, csv } => {
            body.push(KIND_INGEST);
            body.extend_from_slice(&(table.len() as u32).to_le_bytes());
            body.extend_from_slice(table.as_bytes());
            body.extend_from_slice(csv.as_bytes());
        }
    }
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn decode_payload(body: &[u8]) -> Option<(u64, WalPayload)> {
    if body.len() < 9 {
        return None;
    }
    let lsn = u64::from_le_bytes(body[..8].try_into().ok()?);
    let kind = body[8];
    let rest = &body[9..];
    let payload = match kind {
        KIND_STMT => WalPayload::Stmt { ir: rest.to_vec() },
        KIND_INGEST => {
            if rest.len() < 4 {
                return None;
            }
            let table_len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
            let rest = &rest[4..];
            if rest.len() < table_len {
                return None;
            }
            let table = std::str::from_utf8(&rest[..table_len]).ok()?.to_string();
            let csv = std::str::from_utf8(&rest[table_len..]).ok()?.to_string();
            WalPayload::Ingest { table, csv }
        }
        _ => return None,
    };
    Some((lsn, payload))
}

/// Walks the record region of a log image (everything after the header),
/// returning the decoded records of the longest well-formed prefix and
/// that prefix's byte length. Bytes past the prefix are the torn tail.
pub(crate) fn scan(data: &[u8]) -> (Vec<ScannedRecord>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &data[off..];
        if rest.len() < FRAME_OVERHEAD {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD || rest.len() < FRAME_OVERHEAD + len {
            break;
        }
        let want = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let body = &rest[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
        if fnv1a64(body) != want {
            break;
        }
        let Some((lsn, payload)) = decode_payload(body) else {
            break;
        };
        records.push(ScannedRecord { lsn, payload });
        off += FRAME_OVERHEAD + len;
    }
    (records, off)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(u64, WalPayload)> {
        vec![
            (1, WalPayload::Stmt { ir: vec![1, 2, 3] }),
            (
                2,
                WalPayload::Ingest {
                    table: "T".into(),
                    csv: "1\n2\n".into(),
                },
            ),
            (3, WalPayload::Stmt { ir: vec![] }),
        ]
    }

    fn image(records: &[(u64, WalPayload)]) -> Vec<u8> {
        records
            .iter()
            .flat_map(|(lsn, p)| encode_frame(*lsn, p))
            .collect()
    }

    #[test]
    fn frames_round_trip() {
        let recs = sample();
        let img = image(&recs);
        let (scanned, valid) = scan(&img);
        assert_eq!(valid, img.len());
        assert_eq!(scanned.len(), 3);
        for (got, (lsn, payload)) in scanned.iter().zip(&recs) {
            assert_eq!(got.lsn, *lsn);
            assert_eq!(&got.payload, payload);
        }
    }

    #[test]
    fn torn_tail_is_cut_at_every_byte_boundary() {
        let recs = sample();
        let img = image(&recs);
        let first_two = image(&recs[..2]).len();
        // Truncate the image anywhere inside the third frame: the first
        // two records survive, the torn third is discarded.
        for cut in first_two..img.len() - 1 {
            let (scanned, valid) = scan(&img[..cut]);
            assert_eq!(scanned.len(), 2, "cut at {cut}");
            assert_eq!(valid, first_two, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_record_stops_the_scan() {
        let recs = sample();
        let mut img = image(&recs);
        let first = image(&recs[..1]).len();
        // Flip one payload byte of the second record: its checksum fails
        // and the scan refuses it and everything after.
        img[first + FRAME_OVERHEAD + 4] ^= 0xff;
        let (scanned, valid) = scan(&img);
        assert_eq!(scanned.len(), 1);
        assert_eq!(valid, first);
    }

    #[test]
    fn absurd_length_prefix_is_torn_not_allocated() {
        let mut img = image(&sample()[..1]);
        let first = img.len();
        img.extend_from_slice(&u32::MAX.to_le_bytes());
        img.extend_from_slice(&[0u8; 64]);
        let (scanned, valid) = scan(&img);
        assert_eq!(scanned.len(), 1);
        assert_eq!(valid, first);
    }

    #[test]
    fn unknown_kind_is_torn() {
        let mut frame = encode_frame(9, &WalPayload::Stmt { ir: vec![7] });
        // Patch the kind byte and re-checksum so only the kind is bad.
        let body_start = FRAME_OVERHEAD;
        frame[body_start + 8] = 0xee;
        let sum = fnv1a64(&frame[body_start..]);
        frame[4..12].copy_from_slice(&sum.to_le_bytes());
        let (scanned, valid) = scan(&frame);
        assert!(scanned.is_empty());
        assert_eq!(valid, 0);
    }
}
