//! The durable storage engine: a per-database write-ahead log with group
//! commit, periodic checkpoints into the snapshot format, and
//! committed-prefix recovery (DESIGN.md storage section).
//!
//! Layout of a durable database directory:
//!
//! ```text
//! <dir>/wal.meta        current snapshot generation + replay watermark
//! <dir>/snapshot.<N>    a persist::save_dir snapshot (generation N)
//! <dir>/wal.log         records committed since that snapshot
//! ```
//!
//! **Commit protocol.** Writers call [`Wal::commit`] with one record per
//! logged statement. The record is queued and a dedicated commit thread
//! drains the queue in batches: it appends every queued frame, issues a
//! single `fsync`, and only then wakes the waiters — group commit. A
//! statement is acknowledged if and only if its record (and every record
//! before it) is on disk, so the set of acknowledged statements is always
//! a prefix of the log. When an append or fsync fails, the file is
//! truncated back to the durable prefix before the error is surfaced:
//! "acknowledged" and "survives a reopen" coincide exactly.
//!
//! **Checkpoint protocol.** [`Wal::checkpoint`] folds the log into a new
//! snapshot generation: save the database under `snapshot.<N+1>` (itself
//! crash-safe, see `persist`), atomically swing `wal.meta` to the new
//! generation with `next_lsn` as the replay watermark, then truncate the
//! log. A crash before the meta swing leaves the old generation + full
//! log (replayed in full); a crash after it leaves the new generation
//! whose watermark excludes every already-folded record. Orphan snapshot
//! directories from interrupted checkpoints are swept on open.
//!
//! **Recovery.** [`Wal::open`] loads the generation named by `wal.meta`,
//! scans the log, truncates the torn tail (incomplete, checksum-failing
//! or undecodable trailing bytes), and replays every committed record at
//! or past the watermark through the normal execution path — which also
//! refreshes the catalog statistics store, so `est ~N rows` hints are
//! replay-consistent without persisting anything extra.

mod record;

pub use record::WalPayload;

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use graql_parser::ast;
use graql_types::{GraqlError, QueryGuard, Result, WalMetrics};

use crate::database::Database;

const META_FILE: &str = "wal.meta";
const LOG_FILE: &str = "wal.log";
const META_MAGIC: &str = "GWALMETA 1";

/// Tuning knobs for a durable database.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// Log records between automatic checkpoints (0 disables automatic
    /// checkpointing; explicit [`Wal::checkpoint`] still works).
    pub checkpoint_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            checkpoint_every: 4096,
        }
    }
}

/// What [`Wal::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// A snapshot generation was loaded (false on first open).
    pub snapshot_loaded: bool,
    /// Committed records replayed from the log.
    pub replayed_records: u64,
    /// Torn-tail bytes discarded from the end of the log.
    pub torn_bytes_discarded: u64,
}

struct PendingRecord {
    lsn: u64,
    frame: Vec<u8>,
}

/// One fsynced group-commit batch as shipped to replication subscribers:
/// the records' raw on-disk frames, byte-identical to `wal.log`, plus the
/// LSN range they cover. Produced by the commit thread *after* the batch's
/// fsync succeeds, so a shipped record is always an acknowledged record.
#[derive(Debug, Clone)]
pub struct ShippedBatch {
    pub first_lsn: u64,
    pub last_lsn: u64,
    /// Concatenated frames (`[len][checksum][lsn][kind][payload]`…).
    pub frames: Vec<u8>,
}

/// A checkpoint's files as `(relative name, bytes)` pairs, in the order
/// they should be written out.
pub type SnapshotFiles = Vec<(String, Vec<u8>)>;

/// What a replica needs to start (or resume) tailing this log from
/// `from_lsn` — see [`Wal::repl_bootstrap`].
#[derive(Debug, Default)]
pub struct ReplBootstrap {
    /// `Some((watermark, files))` when the log has been folded past
    /// `from_lsn`: the latest checkpoint's files, to be loaded before any
    /// frame is applied. The stream resumes at `watermark`.
    pub snapshot: Option<(u64, SnapshotFiles)>,
    /// Already-durable records at or past the resume point, batched as
    /// raw concatenated frames (empty when the replica is caught up).
    pub backlog: Vec<ShippedBatch>,
}

/// State under the queue mutex: the append queue plus every LSN cursor.
/// Lock order is queue → file; nothing waits on a condvar while holding
/// the file lock.
struct QueueState {
    pending: Vec<PendingRecord>,
    next_lsn: u64,
    /// Highest LSN whose record (and all predecessors) is fsynced.
    durable_lsn: u64,
    /// Highest LSN of a failed batch; failed LSNs stay failed forever.
    failed_through: u64,
    failure: Option<String>,
    /// A simulated crash (torn/corrupt injected write) happened: the log
    /// refuses all further work so tests can reopen and check recovery.
    poisoned: Option<String>,
    /// The commit thread is mid-batch (pending already drained).
    in_flight: bool,
    shutdown: bool,
    records_since_checkpoint: u64,
    /// Current snapshot generation (the `<N>` of `snapshot.<N>`).
    generation: u64,
}

struct FileState {
    file: File,
    /// Byte length of the durable (fsynced, acknowledged) prefix.
    durable_len: u64,
}

struct WalInner {
    dir: PathBuf,
    queue: Mutex<QueueState>,
    work: Condvar,
    done: Condvar,
    file: Mutex<FileState>,
    metrics: Arc<WalMetrics>,
    opts: DurabilityOptions,
    /// Replication subscribers: each fsynced batch is forwarded to every
    /// live sender; a hung-up receiver is dropped on the next send.
    /// Locked only briefly and never while `queue` or `file` is held.
    subs: Mutex<Vec<mpsc::Sender<ShippedBatch>>>,
}

/// Handle to one database's write-ahead log. Owns the commit thread;
/// dropping the handle drains the queue and joins it.
pub struct Wal {
    inner: Arc<WalInner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("dir", &self.inner.dir).finish()
    }
}

impl Wal {
    /// Opens (or initializes) the durable database under `dir`: loads the
    /// current snapshot generation, cuts the log's torn tail, replays the
    /// committed records past the watermark, and starts the commit thread.
    pub fn open(
        dir: &Path,
        opts: DurabilityOptions,
        metrics: Arc<WalMetrics>,
    ) -> Result<(Database, Wal, RecoveryReport)> {
        let io = |e: std::io::Error| GraqlError::ingest(format!("wal: {e}"));
        std::fs::create_dir_all(dir).map_err(io)?;
        let (generation, watermark) = read_meta(dir)?;
        sweep_orphans(dir, generation);

        let mut report = RecoveryReport::default();
        let snap = snapshot_dir(dir, generation);
        let mut db = if snap.exists() {
            report.snapshot_loaded = true;
            let mut db = crate::persist::load_dir(&snap)?;
            // The snapshot directory is an implementation detail; ingest
            // paths must not resolve into it.
            db.set_data_dir(PathBuf::new());
            db
        } else {
            Database::new()
        };

        let log_path = dir.join(LOG_FILE);
        let fresh = !log_path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)
            .map_err(io)?;
        let mut next_lsn = watermark;
        if fresh {
            file.write_all(&record::MAGIC).map_err(io)?;
            file.write_all(&[record::VERSION]).map_err(io)?;
            file.sync_all().map_err(io)?;
            crate::persist::sync_dir(dir).map_err(io)?;
        } else {
            let mut bytes = Vec::new();
            file.seek(SeekFrom::Start(0)).map_err(io)?;
            file.read_to_end(&mut bytes).map_err(io)?;
            if bytes.len() < record::HEADER_LEN as usize
                || bytes[..4] != record::MAGIC
                || bytes[4] != record::VERSION
            {
                return Err(GraqlError::ingest(format!(
                    "wal: {} is not a GraQL write-ahead log",
                    log_path.display()
                )));
            }
            let (records, valid) = record::scan(&bytes[record::HEADER_LEN as usize..]);
            let valid_len = record::HEADER_LEN + valid as u64;
            let torn = bytes.len() as u64 - valid_len;
            if torn > 0 {
                file.set_len(valid_len).map_err(io)?;
                file.sync_data().map_err(io)?;
                report.torn_bytes_discarded = torn;
            }
            for rec in &records {
                next_lsn = next_lsn.max(rec.lsn + 1);
                if rec.lsn < watermark {
                    // Already folded into the snapshot by a checkpoint
                    // that died before truncating the log.
                    continue;
                }
                apply_payload(&mut db, &rec.payload).map_err(|e| {
                    GraqlError::ingest(format!("wal: replay of record {} failed: {e}", rec.lsn))
                })?;
                report.replayed_records += 1;
            }
        }
        metrics.replayed_records.add(report.replayed_records);
        metrics
            .torn_bytes_discarded
            .add(report.torn_bytes_discarded);

        let durable_len = file.metadata().map_err(io)?.len();
        let inner = Arc::new(WalInner {
            dir: dir.to_path_buf(),
            queue: Mutex::new(QueueState {
                pending: Vec::new(),
                next_lsn,
                durable_lsn: next_lsn.saturating_sub(1),
                failed_through: 0,
                failure: None,
                poisoned: None,
                in_flight: false,
                shutdown: false,
                records_since_checkpoint: 0,
                generation,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            file: Mutex::new(FileState { file, durable_len }),
            metrics,
            opts,
            subs: Mutex::new(Vec::new()),
        });
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("graql-wal-commit".into())
                .spawn(move || commit_thread(&inner))
                .map_err(io)?
        };
        Ok((
            db,
            Wal {
                inner,
                thread: Some(thread),
            },
            report,
        ))
    }

    /// The log's metrics (the same instance attached to the server's
    /// [`graql_types::MetricsRegistry`]).
    pub fn metrics(&self) -> &Arc<WalMetrics> {
        &self.inner.metrics
    }

    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Encodes one statement as its log payload (a one-statement GQIR
    /// script).
    pub fn stmt_payload(stmt: &ast::Stmt) -> WalPayload {
        let script = ast::Script {
            statements: vec![stmt.clone()],
        };
        WalPayload::Stmt {
            ir: crate::ir::encode(&script).to_vec(),
        }
    }

    /// Appends one record and blocks until it is durable (group-committed
    /// with whatever else is queued). Returns the record's LSN.
    pub fn commit(&self, payload: &WalPayload) -> Result<u64> {
        let mut q = lock(&self.inner.queue);
        if let Some(msg) = &q.poisoned {
            return Err(GraqlError::ingest(format!("wal: log unusable: {msg}")));
        }
        let lsn = q.next_lsn;
        q.next_lsn += 1;
        q.pending.push(PendingRecord {
            lsn,
            frame: record::encode_frame(lsn, payload),
        });
        self.inner.work.notify_one();
        loop {
            // Failure first: a later successful batch may push durable_lsn
            // past a failed LSN, but failed LSNs stay failed.
            if q.failed_through >= lsn {
                let msg = q
                    .failure
                    .clone()
                    .unwrap_or_else(|| "wal: commit failed".to_string());
                return Err(GraqlError::ingest(msg));
            }
            if q.durable_lsn >= lsn {
                return Ok(lsn);
            }
            q = wait(&self.inner.done, q);
        }
    }

    /// Folds the log into a fresh snapshot generation and truncates it.
    /// Callers must serialize checkpoints against writers (the server
    /// holds its write lock), and `db` must reflect every acknowledged
    /// record.
    pub fn checkpoint(&self, db: &Database) -> Result<()> {
        let t0 = Instant::now();
        let mut q = lock(&self.inner.queue);
        while q.in_flight || !q.pending.is_empty() {
            if q.poisoned.is_some() {
                break;
            }
            q = wait(&self.inner.done, q);
        }
        if let Some(msg) = &q.poisoned {
            return Err(GraqlError::ingest(format!("wal: log unusable: {msg}")));
        }
        let generation = q.generation + 1;
        let watermark = q.next_lsn;
        crate::persist::save_dir(db, &snapshot_dir(&self.inner.dir, generation))?;
        // The fault site sits in the checkpoint's only interesting crash
        // window: the new snapshot exists but wal.meta still names the old
        // generation. Recovery must load the old generation, replay the
        // full log, and sweep the orphan.
        graql_types::failpoint!("core/wal/checkpoint", GraqlError::ingest);
        write_meta(&self.inner.dir, generation, watermark)?;
        {
            let mut f = lock(&self.inner.file);
            let io = |e: std::io::Error| GraqlError::ingest(format!("wal: truncate: {e}"));
            f.file.set_len(record::HEADER_LEN).map_err(io)?;
            f.file.sync_data().map_err(io)?;
            f.durable_len = record::HEADER_LEN;
        }
        q.generation = generation;
        q.records_since_checkpoint = 0;
        drop(q);
        sweep_orphans(&self.inner.dir, generation);
        self.inner.metrics.checkpoints.inc();
        self.inner
            .metrics
            .checkpoint_nanos
            .observe(t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Highest LSN whose record (and every predecessor that was ever
    /// durable) is fsynced. 0 before the first commit.
    pub fn durable_lsn(&self) -> u64 {
        lock(&self.inner.queue).durable_lsn
    }

    /// The LSN the next committed record will receive. A replica's
    /// resume point is `durable_lsn() + 1`, not this: failed LSNs consume
    /// numbers without reaching the log.
    pub fn next_lsn(&self) -> u64 {
        lock(&self.inner.queue).next_lsn
    }

    /// Subscribes to the committed-record stream: every batch fsynced
    /// *after* this call is delivered (raw frames + LSN range) in commit
    /// order. Pair with [`Wal::repl_bootstrap`] — subscribe first, then
    /// fetch the backlog, then dedupe the overlap by LSN — so no record
    /// is missed between the two. The subscription ends when the receiver
    /// is dropped.
    pub fn subscribe_commits(&self) -> mpsc::Receiver<ShippedBatch> {
        let (tx, rx) = mpsc::channel();
        lock(&self.inner.subs).push(tx);
        rx
    }

    /// Everything a replica resuming from `from_lsn` needs that is
    /// already on disk: the latest checkpoint (only when the log has been
    /// folded past `from_lsn`) plus the durable log records at or past
    /// the resume point. Serialized against checkpoints via the queue
    /// lock, so snapshot, meta and log are read as one consistent view.
    pub fn repl_bootstrap(&self, from_lsn: u64) -> Result<ReplBootstrap> {
        let q = lock(&self.inner.queue);
        if let Some(msg) = &q.poisoned {
            return Err(GraqlError::ingest(format!("wal: log unusable: {msg}")));
        }
        let (generation, watermark) = read_meta(&self.inner.dir)?;
        let mut out = ReplBootstrap::default();
        let resume = if from_lsn < watermark && generation > 0 {
            let snap = snapshot_dir(&self.inner.dir, generation);
            let io = |e: std::io::Error| GraqlError::ingest(format!("wal: snapshot read: {e}"));
            let mut files = Vec::new();
            let mut names: Vec<String> = std::fs::read_dir(&snap)
                .map_err(io)?
                .filter_map(|e| e.ok())
                .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            for name in names {
                let bytes = std::fs::read(snap.join(&name)).map_err(io)?;
                files.push((name, bytes));
            }
            out.snapshot = Some((watermark, files));
            watermark
        } else {
            from_lsn
        };
        // The durable log prefix, filtered to the resume point. Reading
        // under the file lock pins `durable_len` (the commit thread may
        // extend the file concurrently past it; those batches arrive via
        // the subscription instead).
        let bytes = {
            let mut f = lock(&self.inner.file);
            let mut buf = vec![0u8; f.durable_len as usize];
            let io = |e: std::io::Error| GraqlError::ingest(format!("wal: log read: {e}"));
            f.file.seek(SeekFrom::Start(0)).map_err(io)?;
            f.file.read_exact(&mut buf).map_err(io)?;
            buf
        };
        drop(q);
        let (records, _) = record::scan(&bytes[record::HEADER_LEN as usize..]);
        let mut frames = Vec::new();
        let mut range: Option<(u64, u64)> = None;
        for rec in &records {
            if rec.lsn < resume {
                continue;
            }
            frames.extend_from_slice(&record::encode_frame(rec.lsn, &rec.payload));
            range = Some((range.map_or(rec.lsn, |(f0, _)| f0), rec.lsn));
        }
        if let Some((first_lsn, last_lsn)) = range {
            out.backlog.push(ShippedBatch {
                first_lsn,
                last_lsn,
                frames,
            });
        }
        Ok(out)
    }

    /// Appends a batch of replicated records (primary-assigned LSNs,
    /// re-encoded byte-identically to the primary's log) and blocks until
    /// they are durable on this node. Records at or below the current
    /// `durable_lsn` are skipped, so re-delivered batches after a
    /// reconnect are idempotent. Returns the new durable LSN.
    ///
    /// Unlike [`Wal::commit`], a previously *failed* LSN may be retried:
    /// the replica's log has a single writer (the apply loop), so when
    /// the queue is idle the failure latch is cleared and the re-sent
    /// record gets another append. Poison (a torn on-disk tail) still
    /// refuses all further work.
    pub fn append_replicated(&self, records: &[(u64, WalPayload)]) -> Result<u64> {
        let mut q = lock(&self.inner.queue);
        if let Some(msg) = &q.poisoned {
            return Err(GraqlError::ingest(format!("wal: log unusable: {msg}")));
        }
        if !q.in_flight && q.pending.is_empty() && q.failed_through > q.durable_lsn {
            // Single-writer retry contract (see doc comment).
            q.failed_through = 0;
            q.failure = None;
        }
        let mut last = 0u64;
        for (lsn, payload) in records {
            if *lsn <= q.durable_lsn {
                continue;
            }
            q.pending.push(PendingRecord {
                lsn: *lsn,
                frame: record::encode_frame(*lsn, payload),
            });
            q.next_lsn = q.next_lsn.max(lsn + 1);
            last = *lsn;
        }
        if last == 0 {
            return Ok(q.durable_lsn);
        }
        self.inner.work.notify_one();
        loop {
            if q.failed_through >= last {
                let msg = q
                    .failure
                    .clone()
                    .unwrap_or_else(|| "wal: replicated append failed".to_string());
                return Err(GraqlError::ingest(msg));
            }
            if q.durable_lsn >= last {
                return Ok(q.durable_lsn);
            }
            q = wait(&self.inner.done, q);
        }
    }

    /// Re-bases a replica's log onto a freshly received snapshot: `db`
    /// reflects everything through `watermark - 1`; the local log is
    /// folded into a new generation whose replay watermark is the
    /// primary's, so subsequent replicated records continue at primary
    /// LSNs. Call only from the single apply thread, with no commit in
    /// flight.
    pub fn rebase(&self, db: &Database, watermark: u64) -> Result<()> {
        {
            let mut q = lock(&self.inner.queue);
            while q.in_flight || !q.pending.is_empty() {
                if q.poisoned.is_some() {
                    break;
                }
                q = wait(&self.inner.done, q);
            }
            if let Some(msg) = &q.poisoned {
                return Err(GraqlError::ingest(format!("wal: log unusable: {msg}")));
            }
            q.next_lsn = watermark;
            q.durable_lsn = watermark.saturating_sub(1);
        }
        self.checkpoint(db)
    }

    /// Records committed since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        lock(&self.inner.queue).records_since_checkpoint
    }

    /// True when the automatic-checkpoint threshold has been reached.
    pub fn needs_checkpoint(&self) -> bool {
        self.inner.opts.checkpoint_every > 0
            && self.records_since_checkpoint() >= self.inner.opts.checkpoint_every
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.shutdown = true;
        }
        self.inner.work.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// `Mutex::lock` with poison recovery (a panicking commit thread must not
/// wedge every session).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

fn snapshot_dir(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation}"))
}

/// Reads `wal.meta`: (generation, replay watermark). A missing file is a
/// fresh database: generation 0, every record replayed.
fn read_meta(dir: &Path) -> Result<(u64, u64)> {
    let path = dir.join(META_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, 1)),
        Err(e) => return Err(GraqlError::ingest(format!("wal: {e}"))),
    };
    let mut lines = text.lines();
    if lines.next() != Some(META_MAGIC) {
        return Err(GraqlError::ingest(format!(
            "wal: {} is not a GraQL wal.meta",
            path.display()
        )));
    }
    let mut generation = None;
    let mut watermark = None;
    for line in lines {
        match line.split_once(' ') {
            Some(("generation", v)) => generation = v.trim().parse::<u64>().ok(),
            Some(("next_lsn", v)) => watermark = v.trim().parse::<u64>().ok(),
            _ => {}
        }
    }
    match (generation, watermark) {
        (Some(g), Some(w)) => Ok((g, w)),
        _ => Err(GraqlError::ingest(format!(
            "wal: malformed {}",
            path.display()
        ))),
    }
}

/// Atomically replaces `wal.meta` (write-synced temp + rename + dir sync),
/// so a crash leaves either the old or the new meta, never a torn one.
fn write_meta(dir: &Path, generation: u64, watermark: u64) -> Result<()> {
    let io = |e: std::io::Error| GraqlError::ingest(format!("wal: meta: {e}"));
    let text = format!("{META_MAGIC}\ngeneration {generation}\nnext_lsn {watermark}\n");
    let tmp = dir.join(format!("{META_FILE}.tmp.{}", std::process::id()));
    let mut f = File::create(&tmp).map_err(io)?;
    f.write_all(text.as_bytes()).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    std::fs::rename(&tmp, dir.join(META_FILE)).map_err(io)?;
    crate::persist::sync_dir(dir).map_err(io)
}

/// Removes snapshot generations other than `keep` and stale meta temp
/// files — leftovers of checkpoints interrupted mid-fold. Best-effort.
fn sweep_orphans(dir: &Path, keep: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let keep_name = format!("snapshot.{keep}");
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let stale_snapshot = name.starts_with("snapshot.") && name != keep_name;
        let stale_meta = name.starts_with("wal.meta.tmp.");
        if stale_snapshot {
            let _ = std::fs::remove_dir_all(entry.path());
        } else if stale_meta {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Decodes a buffer of concatenated replication frames back into
/// `(lsn, payload)` records. Strict: the whole buffer must parse — a
/// short or checksum-failing tail is a transport error (the stream ships
/// only fsynced frames), never silently dropped like a local torn tail.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<(u64, WalPayload)>> {
    let (records, valid) = record::scan(bytes);
    if valid != bytes.len() {
        return Err(GraqlError::net(format!(
            "replication batch: {} undecodable trailing bytes",
            bytes.len() - valid
        )));
    }
    Ok(records.into_iter().map(|r| (r.lsn, r.payload)).collect())
}

/// Applies one replicated/replayed record through the normal execution
/// path — public so the replication apply loop reuses exactly the
/// recovery semantics.
pub fn apply_record(db: &mut Database, payload: &WalPayload) -> Result<()> {
    apply_payload(db, payload)
}

/// Replays one committed record through the normal execution path, so
/// every side effect (graph invalidation, catalog statistics refresh)
/// happens exactly as it did when the record was first applied.
fn apply_payload(db: &mut Database, payload: &WalPayload) -> Result<()> {
    match payload {
        WalPayload::Stmt { ir } => {
            let script = crate::ir::decode(ir)?;
            for stmt in &script.statements {
                db.execute_guarded(stmt, QueryGuard::unlimited())?;
            }
            Ok(())
        }
        WalPayload::Ingest { table, csv } => db.ingest_str(table, csv).map(|_| ()),
    }
}

struct WriteFailure {
    msg: String,
    /// The on-disk state no longer matches the durable prefix (simulated
    /// crash, or a rollback that itself failed): refuse all further work.
    poison: bool,
}

/// Truncates un-acknowledged bytes after a failed append/fsync, so failed
/// records never survive a reopen. If even the truncation fails, the log
/// is poisoned.
fn rollback(f: &mut FileState, msg: &str) -> WriteFailure {
    let ok = f.file.set_len(f.durable_len).is_ok() && f.file.sync_data().is_ok();
    WriteFailure {
        msg: msg.to_string(),
        poison: !ok,
    }
}

/// Appends and fsyncs one batch. Returns the fsync's wall time.
fn write_batch(
    inner: &WalInner,
    batch: &[PendingRecord],
) -> std::result::Result<u64, WriteFailure> {
    let mut f = lock(&inner.file);
    let start = f.durable_len;
    if let Err(e) = f.file.seek(SeekFrom::Start(start)) {
        return Err(rollback(&mut f, &format!("wal: seek: {e}")));
    }
    let mut written = 0u64;
    for rec in batch {
        #[cfg(feature = "failpoints")]
        if let Some(action) = graql_types::failpoints::hit("core/wal/append") {
            use graql_types::failpoints::Action;
            match action {
                Action::Delay(d) => std::thread::sleep(d),
                Action::Err | Action::Refuse => {
                    return Err(rollback(&mut f, "core/wal/append: injected error"));
                }
                Action::Truncate => {
                    // Simulated crash mid-record: half the frame reaches
                    // the disk, nothing rolls back, and the log refuses
                    // further work. Recovery must cut this torn tail.
                    let _ = f.file.write_all(&rec.frame[..rec.frame.len() / 2]);
                    let _ = f.file.sync_data();
                    return Err(WriteFailure {
                        msg: "core/wal/append: injected torn write".to_string(),
                        poison: true,
                    });
                }
                Action::Corrupt => {
                    // Simulated bit rot: a full-length frame with one
                    // payload byte flipped. Recovery must fail its
                    // checksum and stop there.
                    let mut bad = rec.frame.clone();
                    let mid = bad.len() / 2;
                    bad[mid] ^= 0xff;
                    let _ = f.file.write_all(&bad);
                    let _ = f.file.sync_data();
                    return Err(WriteFailure {
                        msg: "core/wal/append: injected corrupt write".to_string(),
                        poison: true,
                    });
                }
            }
        }
        if let Err(e) = f.file.write_all(&rec.frame) {
            return Err(rollback(&mut f, &format!("wal: append: {e}")));
        }
        written += rec.frame.len() as u64;
    }
    #[cfg(feature = "failpoints")]
    if let Some(action) = graql_types::failpoints::hit("core/wal/fsync") {
        use graql_types::failpoints::Action;
        match action {
            Action::Delay(d) => std::thread::sleep(d),
            _ => return Err(rollback(&mut f, "core/wal/fsync: injected error")),
        }
    }
    let t0 = Instant::now();
    if let Err(e) = f.file.sync_data() {
        return Err(rollback(&mut f, &format!("wal: fsync: {e}")));
    }
    let nanos = t0.elapsed().as_nanos() as u64;
    f.durable_len += written;
    Ok(nanos)
}

/// The dedicated commit thread: drains the queue in batches (group
/// commit), one fsync per batch, then wakes every waiter at once.
fn commit_thread(inner: &WalInner) {
    loop {
        let batch = {
            let mut q = lock(&inner.queue);
            loop {
                if q.poisoned.is_some() && !q.pending.is_empty() {
                    // Simulated crash: fail everything still queued.
                    let max = q.pending.last().expect("non-empty").lsn;
                    q.pending.clear();
                    q.failed_through = q.failed_through.max(max);
                    q.failure
                        .get_or_insert_with(|| "wal: log unusable".to_string());
                    inner.done.notify_all();
                }
                if !q.pending.is_empty() && q.poisoned.is_none() {
                    break;
                }
                if q.shutdown {
                    return;
                }
                q = wait(&inner.work, q);
            }
            q.in_flight = true;
            std::mem::take(&mut q.pending)
        };
        let max_lsn = batch.last().expect("batches are non-empty").lsn;
        let n = batch.len() as u64;
        let result = write_batch(inner, &batch);
        let shipped = result.is_ok();
        let mut q = lock(&inner.queue);
        q.in_flight = false;
        match result {
            Ok(fsync_nanos) => {
                q.durable_lsn = max_lsn;
                q.records_since_checkpoint += n;
                inner.metrics.note_group_commit(n, fsync_nanos);
            }
            Err(fail) => {
                q.failed_through = q.failed_through.max(max_lsn);
                q.failure = Some(fail.msg.clone());
                if fail.poison {
                    q.poisoned = Some(fail.msg);
                }
            }
        }
        drop(q);
        inner.done.notify_all();
        if shipped {
            ship_batch(inner, &batch);
        }
    }
}

/// Forwards one fsynced batch to every replication subscriber. Runs on
/// the commit thread *after* waiters were woken — shipping never delays
/// an acknowledgement — and never blocks: senders are unbounded, and a
/// hung-up receiver is pruned here.
fn ship_batch(inner: &WalInner, batch: &[PendingRecord]) {
    let mut subs = lock(&inner.subs);
    if subs.is_empty() {
        return;
    }
    let shipped = ShippedBatch {
        first_lsn: batch.first().expect("non-empty").lsn,
        last_lsn: batch.last().expect("non-empty").lsn,
        frames: batch.iter().flat_map(|r| r.frame.iter().copied()).collect(),
    };
    subs.retain(|tx| tx.send(shipped.clone()).is_ok());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("graql_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn stmt_of(text: &str) -> ast::Stmt {
        graql_parser::parse_statement(text).unwrap()
    }

    #[test]
    fn fresh_open_commit_reopen_replays() {
        let dir = tmpdir("basic");
        {
            let (mut db, wal, report) =
                Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
            assert!(!report.snapshot_loaded);
            assert_eq!(report.replayed_records, 0);
            let create = stmt_of("create table T(a integer)");
            db.execute(&create).unwrap();
            wal.commit(&Wal::stmt_payload(&create)).unwrap();
            db.ingest_str("T", "1\n2\n").unwrap();
            wal.commit(&WalPayload::Ingest {
                table: "T".into(),
                csv: "1\n2\n".into(),
            })
            .unwrap();
        }
        let (db, _wal, report) =
            Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
        assert_eq!(report.replayed_records, 2);
        assert_eq!(db.table("T").unwrap().n_rows(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_and_reopen_skips_folded_records() {
        let dir = tmpdir("ckpt");
        {
            let (mut db, wal, _) =
                Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
            let create = stmt_of("create table T(a integer)");
            db.execute(&create).unwrap();
            wal.commit(&Wal::stmt_payload(&create)).unwrap();
            wal.checkpoint(&db).unwrap();
            assert_eq!(wal.records_since_checkpoint(), 0);
            // Log shrank back to its header.
            let len = std::fs::metadata(dir.join(LOG_FILE)).unwrap().len();
            assert_eq!(len, record::HEADER_LEN);
            // Post-checkpoint records land in the (now short) log.
            db.ingest_str("T", "7\n").unwrap();
            wal.commit(&WalPayload::Ingest {
                table: "T".into(),
                csv: "7\n".into(),
            })
            .unwrap();
        }
        let (db, _wal, report) =
            Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(
            report.replayed_records, 1,
            "only the post-checkpoint record"
        );
        assert_eq!(db.table("T").unwrap().n_rows(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_discarded_on_reopen() {
        let dir = tmpdir("torn");
        {
            let (mut db, wal, _) =
                Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
            let create = stmt_of("create table T(a integer)");
            db.execute(&create).unwrap();
            wal.commit(&Wal::stmt_payload(&create)).unwrap();
        }
        // Simulate a crash mid-append: garbage after the committed record.
        let log = dir.join(LOG_FILE);
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0x55; 7]).unwrap();
        drop(f);
        let before = std::fs::metadata(&log).unwrap().len();
        let (db, _wal, report) =
            Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
        assert_eq!(report.replayed_records, 1);
        assert_eq!(report.torn_bytes_discarded, 7);
        assert!(db.table("T").is_some());
        assert_eq!(std::fs::metadata(&log).unwrap().len(), before - 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_from_many_threads() {
        let dir = tmpdir("group");
        let (mut db, wal, _) =
            Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
        db.execute(&stmt_of("create table T(a integer)")).unwrap();
        wal.commit(&Wal::stmt_payload(&stmt_of("create table T(a integer)")))
            .unwrap();
        let wal = Arc::new(wal);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for j in 0..16 {
                        wal.commit(&WalPayload::Ingest {
                            table: "T".into(),
                            csv: format!("{}\n", i * 100 + j),
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let m = wal.metrics();
        assert_eq!(m.records_appended.get(), 1 + 8 * 16);
        assert!(
            m.group_commits.get() <= m.records_appended.get(),
            "batching can only reduce fsyncs"
        );
        drop(wal);
        let (db, _wal, report) =
            Wal::open(&dir, DurabilityOptions::default(), Arc::default()).unwrap();
        assert_eq!(report.replayed_records, 1 + 8 * 16);
        assert_eq!(db.table("T").unwrap().n_rows(), 8 * 16);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_round_trips_and_rejects_garbage() {
        let dir = tmpdir("meta");
        std::fs::create_dir_all(&dir).unwrap();
        write_meta(&dir, 3, 41).unwrap();
        assert_eq!(read_meta(&dir).unwrap(), (3, 41));
        std::fs::write(dir.join(META_FILE), "not a meta file").unwrap();
        assert!(read_meta(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
