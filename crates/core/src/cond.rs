//! Compilation of surface `where`/step conditions into physical
//! predicates, with parameter substitution and strong type checking.

use graql_parser::ast::{Expr, Lit, Operand};
use graql_table::{PhysExpr, TableSchema};
use graql_types::{GraqlError, Result, Value};
use rustc_hash::FxHashMap;

/// Bound `%param%` values for one execution.
pub type Params = FxHashMap<String, Value>;

/// Resolves a literal to a runtime value (substituting parameters).
pub fn lit_value(lit: &Lit, params: &Params) -> Result<Value> {
    Ok(match lit {
        Lit::Int(i) => Value::Int(*i),
        Lit::Float(f) => Value::Float(*f),
        Lit::Str(s) => Value::str(s),
        Lit::Date(d) => Value::Date(*d),
        Lit::Param(name) => params
            .get(name)
            .cloned()
            .ok_or_else(|| GraqlError::exec(format!("unbound parameter %{name}%")))?,
    })
}

/// Static type of a literal, if known without execution (`%params%` are
/// typed only at bind time).
pub fn lit_type(lit: &Lit) -> Option<graql_types::DataType> {
    match lit {
        Lit::Int(_) => Some(graql_types::DataType::Integer),
        Lit::Float(_) => Some(graql_types::DataType::Float),
        Lit::Str(_) => Some(graql_types::DataType::Varchar(0)),
        Lit::Date(_) => Some(graql_types::DataType::Date),
        Lit::Param(_) => None,
    }
}

/// Compiles a condition that may only reference one relation (a table, a
/// vertex step's source table, or an edge's associated table).
///
/// `qualifiers` are the names that may prefix an attribute (`entity.attr`);
/// unqualified attributes resolve against the same schema. Comparison type
/// compatibility is enforced here (paper §III-A: "is the query comparing
/// an attribute with a constant (or other attribute) of the wrong type?").
pub fn compile_single_table(
    expr: &Expr,
    schema: &TableSchema,
    qualifiers: &[&str],
    params: &Params,
) -> Result<PhysExpr> {
    match expr {
        Expr::And(parts) => Ok(PhysExpr::And(
            parts
                .iter()
                .map(|p| compile_single_table(p, schema, qualifiers, params))
                .collect::<Result<_>>()?,
        )),
        Expr::Or(parts) => Ok(PhysExpr::Or(
            parts
                .iter()
                .map(|p| compile_single_table(p, schema, qualifiers, params))
                .collect::<Result<_>>()?,
        )),
        Expr::Not(inner) => Ok(PhysExpr::Not(Box::new(compile_single_table(
            inner, schema, qualifiers, params,
        )?))),
        Expr::Cmp { op, lhs, rhs, .. } => {
            let l = compile_operand(lhs, schema, qualifiers, params)?;
            let r = compile_operand(rhs, schema, qualifiers, params)?;
            check_comparable(&l, &r, schema)?;
            Ok(PhysExpr::Cmp(*op, Box::new(l), Box::new(r)))
        }
    }
}

fn compile_operand(
    op: &Operand,
    schema: &TableSchema,
    qualifiers: &[&str],
    params: &Params,
) -> Result<PhysExpr> {
    match op {
        Operand::Attr { qualifier, name } => {
            if let Some(q) = qualifier {
                if !qualifiers.iter().any(|&allowed| allowed == q) {
                    return Err(GraqlError::name(format!(
                        "unknown qualifier {q:?} (expected one of: {})",
                        qualifiers.join(", ")
                    )));
                }
            }
            Ok(PhysExpr::Col(schema.require(name)?))
        }
        Operand::Lit(l) => Ok(PhysExpr::Const(lit_value(l, params)?)),
    }
}

/// Type-checks a compiled comparison.
fn check_comparable(l: &PhysExpr, r: &PhysExpr, schema: &TableSchema) -> Result<()> {
    let ty = |e: &PhysExpr| match e {
        PhysExpr::Col(c) => Some(schema.column(*c).dtype),
        PhysExpr::Const(v) => v.data_type(),
        _ => None,
    };
    if let (Some(a), Some(b)) = (ty(l), ty(r)) {
        if !a.comparable_with(b) {
            return Err(GraqlError::type_error(format!(
                "cannot compare {a} with {b}"
            )));
        }
    }
    Ok(())
}

/// Statically type-checks a single-relation condition without compiling
/// constants (parameters stay unknown) — the §III-A front-end check.
/// Fail-fast wrapper over `typecheck_single_table_ctx`.
pub fn typecheck_single_table(
    expr: &Expr,
    schema: &TableSchema,
    qualifiers: &[&str],
) -> Result<()> {
    typecheck_single_table_ctx(
        expr,
        schema,
        qualifiers,
        &mut crate::analyze::Ctx::fail_fast(),
    )
    .map_err(graql_types::Diagnostic::into_error)
}

/// Span-aware variant of [`typecheck_single_table`]: each comparison is
/// checked independently, so a collecting context reports every bad
/// comparison in the clause, located at the comparison's own span.
pub(crate) fn typecheck_single_table_ctx(
    expr: &Expr,
    schema: &TableSchema,
    qualifiers: &[&str],
    ctx: &mut crate::analyze::Ctx,
) -> crate::analyze::DResult<()> {
    use graql_types::{codes, Diagnostic};
    match expr {
        Expr::And(parts) | Expr::Or(parts) => parts
            .iter()
            .try_for_each(|p| typecheck_single_table_ctx(p, schema, qualifiers, ctx)),
        Expr::Not(inner) => typecheck_single_table_ctx(inner, schema, qualifiers, ctx),
        Expr::Cmp { lhs, rhs, span, .. } => {
            let ty_of = |o: &Operand| -> crate::analyze::DResult<Option<graql_types::DataType>> {
                match o {
                    Operand::Attr { qualifier, name } => {
                        if let Some(q) = qualifier {
                            if !qualifiers.iter().any(|&a| a == q) {
                                return Err(Diagnostic::error(
                                    codes::BAD_QUALIFIER,
                                    format!("unknown qualifier '{q}'"),
                                    *span,
                                ));
                            }
                        }
                        let ci = schema
                            .require(name)
                            .map_err(|e| crate::analyze::attr_err(&e, *span))?;
                        Ok(Some(schema.column(ci).dtype))
                    }
                    Operand::Lit(l) => Ok(lit_type(l)),
                }
            };
            let a = match ty_of(lhs) {
                Ok(t) => t,
                Err(d) => {
                    ctx.emit(d)?;
                    None
                }
            };
            let b = match ty_of(rhs) {
                Ok(t) => t,
                Err(d) => {
                    ctx.emit(d)?;
                    None
                }
            };
            if let (Some(a), Some(b)) = (a, b) {
                if !a.comparable_with(b) {
                    ctx.emit(Diagnostic::error(
                        codes::INCOMPARABLE,
                        format!("cannot compare {a} with {b}"),
                        *span,
                    ))?;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_parser::parse_expr;
    use graql_types::{CmpOp, DataType};

    fn schema() -> TableSchema {
        TableSchema::of(&[
            ("id", DataType::Varchar(10)),
            ("price", DataType::Float),
            ("validFrom", DataType::Date),
        ])
    }

    #[test]
    fn compiles_with_qualifiers_and_params() {
        let e = parse_expr("Offers.price > 10 and id = %P%").unwrap();
        let mut params = Params::default();
        params.insert("P".into(), Value::str("o1"));
        let phys = compile_single_table(&e, &schema(), &["Offers"], &params).unwrap();
        let PhysExpr::And(parts) = phys else { panic!() };
        assert_eq!(parts.len(), 2);
        assert_eq!(
            parts[0],
            PhysExpr::cmp_col_const(1, CmpOp::Gt, Value::Float(10.0))
        );
        assert_eq!(
            parts[1],
            PhysExpr::cmp_col_const(0, CmpOp::Eq, Value::str("o1"))
        );
    }

    #[test]
    fn unknown_qualifier_and_column_rejected() {
        let e = parse_expr("Other.price > 10").unwrap();
        assert!(matches!(
            compile_single_table(&e, &schema(), &["Offers"], &Params::default()),
            Err(GraqlError::Name(_))
        ));
        let e = parse_expr("nope = 1").unwrap();
        assert!(compile_single_table(&e, &schema(), &[], &Params::default()).is_err());
    }

    #[test]
    fn type_errors_caught() {
        // date vs float: the paper's own §III-A example.
        let e = parse_expr("validFrom > 1.5").unwrap();
        let err = compile_single_table(&e, &schema(), &[], &Params::default()).unwrap_err();
        assert!(matches!(err, GraqlError::Type(_)), "{err}");
        // attribute vs attribute of the wrong type
        let e = parse_expr("price = validFrom").unwrap();
        assert!(compile_single_table(&e, &schema(), &[], &Params::default()).is_err());
        // and the static (no-params) variant
        let e = parse_expr("validFrom = %D%").unwrap();
        assert!(
            typecheck_single_table(&e, &schema(), &[]).is_ok(),
            "param type unknown → ok"
        );
        let e = parse_expr("validFrom = 'x'").unwrap();
        assert!(typecheck_single_table(&e, &schema(), &[]).is_err());
    }

    #[test]
    fn unbound_param_is_an_exec_error() {
        let e = parse_expr("id = %Missing%").unwrap();
        let err = compile_single_table(&e, &schema(), &[], &Params::default()).unwrap_err();
        assert!(matches!(err, GraqlError::Exec(_)));
    }

    #[test]
    fn date_literals_compare_with_date_columns() {
        let e = parse_expr("validFrom <= date '2008-06-01'").unwrap();
        assert!(compile_single_table(&e, &schema(), &[], &Params::default()).is_ok());
    }
}
