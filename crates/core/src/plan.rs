//! Dynamic query planning (paper §III-B).
//!
//! The bidirectional edge index means "the execution is not restricted to
//! the forward-looking lexical representation of the path query"; planning
//! is "a series of decisions on which order to traverse the edge indexes".
//! Here that is the choice of the binding-enumeration start step (most
//! selective first) and, implicitly, the traversal direction of every
//! index hop. [`PlanMode`] exposes the lexical-order baselines for the
//! planner-ablation experiment (EXP-PLAN).

/// How the enumeration order is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Start at the step with the fewest candidates after culling.
    #[default]
    Auto,
    /// Always start at the first (leftmost) step — the lexical order.
    ForwardOnly,
    /// Always start at the last step — the reverse lexical order.
    ReverseOnly,
}

/// Execution configuration knobs (ablations + safety limits).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    pub plan_mode: PlanMode,
    /// Semi-join culling before enumeration (EXP-CULL ablation).
    pub culling: bool,
    /// Hard cap on produced binding rows.
    pub max_rows: usize,
    /// Cap on `*`/`+` regex repetitions.
    pub regex_cap: u32,
    /// Semantics-preserving plan rewrites before execution (constant
    /// folding, dead-branch elimination, composition flattening). Off is
    /// the ablation / differential-testing baseline.
    pub rewrite: bool,
    /// Default per-query governance budget (deadline + row/byte caps).
    /// Sessions mint one `QueryGuard` per request from this; the network
    /// server additionally folds in its per-request deadline.
    pub budget: graql_types::QueryBudget,
    /// Worker threads for the morsel-driven parallel kernels (candidate
    /// scans, hop expansion, path enumeration, filter/sort). `1` is the
    /// serial path; any value produces byte-identical results because the
    /// morsel merge restores serial order (see `exec::morsel`). Defaults
    /// to the number of available cores.
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            plan_mode: PlanMode::Auto,
            culling: true,
            max_rows: 50_000_000,
            regex_cap: crate::compile::REGEX_CAP,
            rewrite: true,
            budget: graql_types::QueryBudget::UNLIMITED,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Chooses the binding order over `n` steps given per-step candidate
/// counts. The order is contiguous: every step after the first is adjacent
/// to an already-bound step, so each extension walks one edge index.
pub fn choose_order(counts: &[usize], mode: PlanMode) -> Vec<usize> {
    let n = counts.len();
    if n == 0 {
        return Vec::new();
    }
    let start = match mode {
        PlanMode::ForwardOnly => 0,
        PlanMode::ReverseOnly => n - 1,
        PlanMode::Auto => counts
            .iter()
            .enumerate()
            .min_by_key(|&(i, &c)| (c, i))
            .map(|(i, _)| i)
            .unwrap_or(0),
    };
    let mut order = Vec::with_capacity(n);
    order.extend(start..n);
    order.extend((0..start).rev());
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_starts_at_min_count() {
        assert_eq!(choose_order(&[100, 3, 50], PlanMode::Auto), vec![1, 2, 0]);
        assert_eq!(
            choose_order(&[1, 1, 1], PlanMode::Auto),
            vec![0, 1, 2],
            "ties go left"
        );
    }

    #[test]
    fn lexical_modes() {
        assert_eq!(
            choose_order(&[5, 1, 5], PlanMode::ForwardOnly),
            vec![0, 1, 2]
        );
        assert_eq!(
            choose_order(&[5, 1, 5], PlanMode::ReverseOnly),
            vec![2, 1, 0]
        );
    }

    #[test]
    fn orders_are_contiguous() {
        for mode in [PlanMode::Auto, PlanMode::ForwardOnly, PlanMode::ReverseOnly] {
            let order = choose_order(&[9, 2, 7, 7, 1], mode);
            let mut bound = [false; 5];
            bound[order[0]] = true;
            for &s in &order[1..] {
                assert!(
                    (s > 0 && bound[s - 1]) || (s + 1 < 5 && bound[s + 1]),
                    "step {s} not adjacent to bound region in {order:?} ({mode:?})"
                );
                bound[s] = true;
            }
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(choose_order(&[], PlanMode::Auto).is_empty());
        assert_eq!(choose_order(&[7], PlanMode::ReverseOnly), vec![0]);
    }
}
