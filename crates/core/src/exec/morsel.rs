//! Morsel-driven parallel execution (ROADMAP item 1).
//!
//! [`run_morsels`] splits an index space `0..n_items` into fixed-size
//! *morsels* and lets a bounded pool of scoped worker threads claim them
//! off a shared atomic counter — dynamic self-scheduling, so a fast
//! worker steals the morsels a slow one never reaches. Each morsel
//! produces an independent partial result; the merge step reassembles
//! them **by morsel index**, never by completion order, so the
//! concatenated output is byte-identical to a serial left-to-right
//! evaluation regardless of thread count or interleaving.
//!
//! The determinism contract the kernels build on:
//!
//! - partial results are slotted by morsel index; callers that need
//!   serial order concatenate slots in order (order-sensitive kernels),
//!   or fold them with a commutative merge (set-valued kernels);
//! - all workers share the query's [`QueryGuard`], whose row/byte
//!   accounting is atomic, so budgets trip at the same totals as serial
//!   execution and cancellation/deadline kills stop every worker at its
//!   next morsel claim;
//! - a worker error aborts the dispatch (unclaimed morsels are dropped)
//!   and the error from the **lowest** morsel index surfaces, once —
//!   the same error a serial scan would have hit first;
//! - a panicking worker poisons the query, not the server: the panic is
//!   caught at the morsel boundary and surfaces as a typed
//!   [`GraqlError`].
//!
//! Failpoint sites `core/exec/morsel-dispatch` (per morsel claim, so it
//! fires from real worker threads) and `core/exec/morsel-merge` (on the
//! caller thread before reassembly) make both halves fault-testable.

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use graql_types::{GraqlError, QueryGuard, Result};

use crate::catalog::CatalogStats;

/// Rows per morsel for scan-shaped kernels.
pub const MORSEL_ROWS: usize = 2048;

/// Inputs below this many items always run inline: dispatch cost
/// outweighs any win on a scan this small.
pub const PAR_MIN_ITEMS: usize = 4096;

/// Number of workers a scan over `n_items` should use: `1` (inline)
/// below the kernel's profitability floor, the configured thread count
/// otherwise.
pub fn scan_workers(threads: usize, n_items: usize, min_items: usize) -> usize {
    if n_items < min_items {
        1
    } else {
        threads.max(1)
    }
}

/// Estimated edges traversed when expanding `from_count` vertices over
/// the named edge types — the planner's parallel-dispatch heuristic for
/// traversal kernels. Mean degrees come from the catalog statistics
/// store when present; absent (or never computed) stats degrade to a
/// conservative mean of one edge per vertex. The estimate only sizes the
/// worker pool, so staleness cannot affect results.
pub fn est_traversed_edges(
    stats: Option<&CatalogStats>,
    etype_names: &[&str],
    from_count: usize,
    forward: bool,
) -> usize {
    let mean: f64 = etype_names
        .iter()
        .map(|name| {
            stats.and_then(|s| s.edges.get(*name)).map_or(1.0, |e| {
                if forward {
                    e.mean_out_degree
                } else {
                    e.mean_in_degree
                }
                .max(0.0)
            })
        })
        .sum::<f64>()
        .max(1.0);
    (from_count as f64 * mean) as usize
}

/// Concatenates per-morsel output vectors in morsel order — the
/// order-restoring merge for kernels whose serial form appends
/// left-to-right.
pub fn concat<T>(parts: Vec<Vec<T>>) -> Vec<T> {
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Runs `task` once per morsel of `0..n_items` on up to `threads`
/// workers and returns the per-morsel results **in morsel order**.
///
/// `task(morsel_index, item_range)` must be pure with respect to claim
/// order (it may share atomics, e.g. guard accounting). With one worker
/// (or one morsel) everything runs inline on the caller thread with no
/// spawn — that is the `threads = 1` serial path.
pub fn run_morsels<T, F>(
    guard: &QueryGuard,
    n_items: usize,
    morsel_size: usize,
    threads: usize,
    task: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> Result<T> + Sync,
{
    let morsel_size = morsel_size.max(1);
    let n_morsels = n_items.div_ceil(morsel_size);
    let workers = threads.clamp(1, n_morsels.max(1));
    let bounds = |m: usize| m * morsel_size..((m + 1) * morsel_size).min(n_items);

    let mut slots: Vec<Option<T>> = (0..n_morsels).map(|_| None).collect();
    if workers <= 1 {
        for (m, slot) in slots.iter_mut().enumerate() {
            *slot = Some(claim(guard, m, bounds(m), &task)?);
        }
    } else {
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<(usize, GraqlError)>> = Mutex::new(None);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let m = next.fetch_add(1, Ordering::Relaxed);
                            if m >= n_morsels {
                                break;
                            }
                            let run = panic::catch_unwind(AssertUnwindSafe(|| {
                                claim(guard, m, bounds(m), &task)
                            }));
                            match run {
                                Ok(Ok(t)) => local.push((m, t)),
                                Ok(Err(e)) => {
                                    record_failure(&failure, &abort, m, e);
                                    break;
                                }
                                Err(_) => {
                                    record_failure(
                                        &failure,
                                        &abort,
                                        m,
                                        GraqlError::exec(
                                            "internal: a parallel worker panicked; \
                                             the query was aborted",
                                        ),
                                    );
                                    break;
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(local) => {
                        for (m, t) in local {
                            slots[m] = Some(t);
                        }
                    }
                    Err(_) => record_failure(
                        &failure,
                        &abort,
                        usize::MAX,
                        GraqlError::exec("internal: a parallel worker died; the query was aborted"),
                    ),
                }
            }
        });
        if let Some((_, e)) = failure.into_inner().expect("failure slot lock") {
            return Err(e);
        }
    }

    graql_types::failpoint!("core/exec/morsel-merge", GraqlError::exec);
    let mut out = Vec::with_capacity(n_morsels);
    for (m, slot) in slots.into_iter().enumerate() {
        out.push(slot.ok_or_else(|| GraqlError::exec(format!("internal: morsel {m} was lost")))?);
    }
    Ok(out)
}

/// One morsel: governance check, failpoint, then the kernel body. Shared
/// by the inline and threaded paths so faults and guard cadence are
/// identical in both.
fn claim<T, F>(guard: &QueryGuard, m: usize, range: Range<usize>, task: &F) -> Result<T>
where
    F: Fn(usize, Range<usize>) -> Result<T>,
{
    graql_types::failpoint!("core/exec/morsel-dispatch", GraqlError::exec);
    guard.check()?;
    task(m, range)
}

/// Records a worker failure, keeping the error from the lowest morsel
/// index (what a serial scan would have hit first), and tells the other
/// workers to stop claiming.
fn record_failure(
    failure: &Mutex<Option<(usize, GraqlError)>>,
    abort: &AtomicBool,
    m: usize,
    e: GraqlError,
) {
    abort.store(true, Ordering::Relaxed);
    let mut slot = failure.lock().expect("failure slot lock");
    if slot.as_ref().is_none_or(|(prev, _)| m < *prev) {
        *slot = Some((m, e));
    }
}
