//! Binding enumeration: depth-first expansion of concrete path matches
//! over the culled candidate sets, in planner-chosen order.
//!
//! Set-level results (Eq. 5) answer "which vertices participate in a
//! match"; bindings answer "what are the matches" — required for table
//! results (Fig. 13: one row per match, duplicates meaningful — Berlin Q2
//! counts them), element-wise labels and cross-step conditions.

use std::sync::atomic::{AtomicUsize, Ordering};

use graql_graph::{ETypeId, VTypeId};
use graql_table::BitSet;
use graql_types::{GraqlError, Result, Value};
use rustc_hash::FxHashMap;

use graql_parser::ast::{Dir, LabelKind};

use crate::compile::{BOperand, BindingCond, CLink, CPath};
use crate::exec::cand::Cand;
use crate::exec::expand::extensions_of;
use crate::exec::{morsel, ExecCtx};

/// One concrete match of a single path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Binding {
    /// Bound vertex instance per vertex step.
    pub v: Vec<(VTypeId, u32)>,
    /// Bound edge instance per link.
    pub e: Vec<(ETypeId, u32)>,
}

/// A constraint checked during enumeration, attached to the step at which
/// all its dependencies are bound.
enum Check<'a> {
    /// `foreach` label: the two steps must bind the *same instance*.
    EqualInstance(usize, usize),
    /// `def` (set) label over a type-matched step: "the type of the label
    /// becomes bound at matching time" (§II-B4) — the reference must bind
    /// the *same vertex type* as the definition.
    EqualType(usize, usize),
    /// Cross-step attribute condition (within this path).
    Cond(&'a BindingCond),
}

/// Evaluates a binding-level operand against a (partially) bound path.
fn operand_value(
    ctx: &ExecCtx<'_>,
    op: &BOperand,
    vstep_of_addr: &dyn Fn(crate::compile::StepAddr) -> usize,
    bound: &[Option<(VTypeId, u32)>],
) -> Result<Value> {
    match op {
        BOperand::Const(v) => Ok(v.clone()),
        BOperand::Attr { addr, name } => {
            let (vt, idx) =
                bound[vstep_of_addr(*addr)].expect("checks run only when deps are bound");
            ctx.vattr(vt, idx, name)
        }
    }
}

/// Evaluates a [`BindingCond`] whose dependencies live in one path.
pub fn eval_cond_in_path(
    ctx: &ExecCtx<'_>,
    cond: &BindingCond,
    path_idx: usize,
    bound: &[Option<(VTypeId, u32)>],
) -> Result<bool> {
    let to_vstep = |addr: crate::compile::StepAddr| {
        debug_assert_eq!(addr.path, path_idx);
        addr.vstep
    };
    let l = operand_value(ctx, &cond.lhs, &to_vstep, bound)?;
    let r = operand_value(ctx, &cond.rhs, &to_vstep, bound)?;
    Ok(cond.op.eval(&l, &r))
}

/// Enumerates all bindings of `path` over culled candidates `cands`,
/// invoking `on_binding` for each (row cap from the exec config).
///
/// `order` must be a contiguous binding order (every step adjacent to the
/// already-bound region) — see [`crate::plan::choose_order`].
///
/// When `ExecConfig::threads > 1` and the estimated work clears the
/// profitability floor, the depth-0 start vertices are split into morsels
/// enumerated by parallel workers, each running its own DFS into a local
/// buffer; the buffers concatenate in morsel order, which is exactly the
/// serial DFS emission order, and `on_binding` then sees the identical
/// stream. Row/byte budgets are shared atomics, so limits trip at the
/// same totals as serial execution.
pub fn enumerate_path(
    ctx: &ExecCtx<'_>,
    path: &CPath,
    path_idx: usize,
    cands: &[Cand],
    efilters: &[FxHashMap<ETypeId, BitSet>],
    order: &[usize],
    mut on_binding: impl FnMut(Binding) -> Result<()>,
) -> Result<()> {
    let n = path.vsteps.len();
    assert_eq!(order.len(), n);
    if path.has_groups() {
        return Err(GraqlError::exec(
            "internal: binding enumeration over path regular expressions is not defined",
        ));
    }

    // Position of each step in the order.
    let mut pos_of = vec![0usize; n];
    for (d, &s) in order.iter().enumerate() {
        pos_of[s] = d;
    }

    // Attach checks to the depth at which they become decidable.
    let mut checks_at: Vec<Vec<Check<'_>>> = (0..n).map(|_| Vec::new()).collect();
    for (j, step) in path.vsteps.iter().enumerate() {
        for bc in &step.binding_conds {
            let deps = bc.deps();
            if deps.iter().all(|a| a.path == path_idx) {
                let depth = deps
                    .iter()
                    .map(|a| pos_of[a.vstep])
                    .chain([pos_of[j]])
                    .max()
                    .unwrap_or(0);
                checks_at[depth].push(Check::Cond(bc));
            }
        }
    }
    // Label-reference pairs within this path.
    for (j, step) in path.vsteps.iter().enumerate() {
        if step.label_ref.is_none() {
            continue;
        }
        if let Some((def_vstep, kind)) = step_label_target(path, j) {
            let depth = pos_of[def_vstep].max(pos_of[j]);
            match kind {
                LabelKind::Each => checks_at[depth].push(Check::EqualInstance(def_vstep, j)),
                LabelKind::Set => checks_at[depth].push(Check::EqualType(def_vstep, j)),
            }
        }
    }

    struct Dfs<'c, 'p, F: FnMut(Binding) -> Result<()>> {
        ctx: &'c ExecCtx<'c>,
        path: &'p CPath,
        path_idx: usize,
        cands: &'p [Cand],
        efilters: &'p [FxHashMap<ETypeId, BitSet>],
        order: &'p [usize],
        checks_at: &'p [Vec<Check<'p>>],
        on_binding: F,
        /// Rows produced so far — shared across parallel workers so the
        /// row cap trips at the same global total as serial execution.
        produced: &'p AtomicUsize,
        max_rows: usize,
        ticker: graql_types::guard::Ticker<'c>,
    }

    impl<F: FnMut(Binding) -> Result<()>> Dfs<'_, '_, F> {
        /// Depth 0: walk a slice of the flattened start list. Each start
        /// is one iteration of what the serial DFS's outermost loop did.
        fn run(
            &mut self,
            starts: &[(VTypeId, u32)],
            vbind: &mut Vec<Option<(VTypeId, u32)>>,
            ebind: &mut Vec<Option<(ETypeId, u32)>>,
        ) -> Result<()> {
            let s = self.order[0];
            for &(vt, v) in starts {
                self.ticker.tick()?;
                vbind[s] = Some((vt, v));
                if self.run_checks(0, vbind)? {
                    self.recurse(1, vbind, ebind)?;
                }
            }
            vbind[s] = None;
            Ok(())
        }

        fn run_checks(&mut self, depth: usize, vbind: &[Option<(VTypeId, u32)>]) -> Result<bool> {
            for chk in &self.checks_at[depth] {
                match chk {
                    Check::EqualInstance(a, b) => {
                        if vbind[*a] != vbind[*b] {
                            return Ok(false);
                        }
                    }
                    Check::EqualType(a, b) => match (vbind[*a], vbind[*b]) {
                        (Some((ta, _)), Some((tb, _))) if ta != tb => return Ok(false),
                        _ => {}
                    },
                    Check::Cond(bc) => {
                        if !eval_cond_in_path(self.ctx, bc, self.path_idx, vbind)? {
                            return Ok(false);
                        }
                    }
                }
            }
            Ok(true)
        }

        fn recurse(
            &mut self,
            depth: usize,
            vbind: &mut Vec<Option<(VTypeId, u32)>>,
            ebind: &mut Vec<Option<(ETypeId, u32)>>,
        ) -> Result<()> {
            let n = self.path.vsteps.len();
            if depth == n {
                let total = self.produced.fetch_add(1, Ordering::Relaxed) + 1;
                self.ctx.guard.add_rows(1)?;
                if total > self.max_rows {
                    return Err(GraqlError::exec(format!(
                        "query produced more than {} rows; raise ExecConfig::max_rows",
                        self.max_rows
                    )));
                }
                let b = Binding {
                    v: vbind.iter().map(|x| x.expect("complete binding")).collect(),
                    e: ebind.iter().map(|x| x.expect("complete binding")).collect(),
                };
                return (self.on_binding)(b);
            }
            let s = self.order[depth];
            // Exactly one neighbor of s is already bound (contiguous order).
            let (neighbor, forward) = if s > 0 && vbind[s - 1].is_some() {
                (s - 1, true)
            } else {
                (s + 1, false)
            };
            let link_idx = neighbor.min(s);
            let CLink::Edge(estep) = &self.path.links[link_idx] else {
                return Err(GraqlError::exec("internal: group link in enumeration"));
            };
            let bound = vbind[neighbor].expect("neighbor bound");
            // Collect extensions first (extensions_of borrows ctx, not us).
            let mut exts: Vec<(ETypeId, u32, VTypeId, u32)> = Vec::new();
            extensions_of(
                self.ctx,
                bound,
                estep,
                &self.efilters[link_idx],
                &self.cands[s],
                forward,
                |et, e, vt, v| exts.push((et, e, vt, v)),
            );
            self.ctx.guard.add_bytes(16 * exts.len() as u64)?;
            for (et, e, vt, v) in exts {
                self.ticker.tick()?;
                vbind[s] = Some((vt, v));
                ebind[link_idx] = Some((et, e));
                if self.run_checks(depth, vbind)? {
                    self.recurse(depth + 1, vbind, ebind)?;
                }
            }
            vbind[s] = None;
            ebind[link_idx] = None;
            Ok(())
        }
    }

    // A path with no vertex steps binds the empty match exactly once.
    if n == 0 {
        ctx.guard.add_rows(1)?;
        return on_binding(Binding {
            v: Vec::new(),
            e: Vec::new(),
        });
    }

    let produced = AtomicUsize::new(0);
    let max_rows = ctx.config.max_rows;

    // Flatten the depth-0 candidates into one start list: `Cand` is a
    // BTreeMap and bitset iteration is ascending, so this is exactly the
    // serial DFS's outermost iteration order — and the parallel split
    // point.
    let s0 = order[0];
    let starts: Vec<(VTypeId, u32)> = cands[s0]
        .iter()
        .flat_map(|(&vt, set)| set.iter().map(move |v| (vt, v as u32)))
        .collect();

    // Estimated extensions out of depth 0 (catalog mean degree of the
    // first link's edge types when known): the dispatch heuristic for how
    // much enumeration work the starts fan out into.
    let est = if order.len() >= 2 {
        let s1 = order[1];
        if let CLink::Edge(estep) = &path.links[s0.min(s1)] {
            let names: Vec<&str> = match &estep.domain {
                Some(d) => d
                    .iter()
                    .map(|&et| ctx.graph.eset(et).name.as_str())
                    .collect(),
                None => ctx
                    .graph
                    .etype_ids()
                    .map(|et| ctx.graph.eset(et).name.as_str())
                    .collect(),
            };
            morsel::est_traversed_edges(
                ctx.stats,
                &names,
                starts.len(),
                matches!(estep.dir, Dir::Out) == (s1 > s0),
            )
        } else {
            starts.len()
        }
    } else {
        starts.len()
    };
    let workers = morsel::scan_workers(ctx.config.threads, est, morsel::PAR_MIN_ITEMS);

    if workers <= 1 {
        // Serial: stream bindings straight to the caller.
        let mut vbind: Vec<Option<(VTypeId, u32)>> = vec![None; n];
        let mut ebind: Vec<Option<(ETypeId, u32)>> = vec![None; n.saturating_sub(1)];
        let mut dfs = Dfs {
            ctx,
            path,
            path_idx,
            cands,
            efilters,
            order,
            checks_at: &checks_at,
            on_binding: &mut on_binding,
            produced: &produced,
            max_rows,
            ticker: ctx.guard.ticker(),
        };
        return dfs.run(&starts, &mut vbind, &mut ebind);
    }

    // Parallel: each morsel of starts runs its own DFS into a local
    // buffer; buffers concatenate in morsel order (= serial emission
    // order) before the caller sees them.
    let morsel_size = starts.len().div_ceil(workers * 8).max(1);
    let parts = morsel::run_morsels(ctx.guard, starts.len(), morsel_size, workers, |_, range| {
        let mut local: Vec<Binding> = Vec::new();
        let mut vbind: Vec<Option<(VTypeId, u32)>> = vec![None; n];
        let mut ebind: Vec<Option<(ETypeId, u32)>> = vec![None; n.saturating_sub(1)];
        let mut dfs = Dfs {
            ctx,
            path,
            path_idx,
            cands,
            efilters,
            order,
            checks_at: &checks_at,
            on_binding: |b: Binding| {
                local.push(b);
                Ok(())
            },
            produced: &produced,
            max_rows,
            ticker: ctx.guard.ticker(),
        };
        dfs.run(&starts[range], &mut vbind, &mut ebind)?;
        Ok(local)
    })?;
    for b in parts.into_iter().flatten() {
        on_binding(b)?;
    }
    Ok(())
}

/// If step `j` is a label reference, returns the defining vertex step
/// *within the same path* and the label kind (cross-path definitions
/// return `None`; they are join keys, not in-path checks).
fn step_label_target(path: &CPath, j: usize) -> Option<(usize, LabelKind)> {
    let name = path.vsteps[j].label_ref.as_ref()?;
    for (i, v) in path.vsteps.iter().enumerate() {
        if let Some((kind, n)) = &v.label_def {
            if n == name {
                return Some((i, *kind));
            }
        }
    }
    None
}
