//! Pipelined execution of dependent statements (paper §III-B1):
//! "Pipelined execution of dependent query statements can also be
//! considered to reduce the amount of space needed to materialize
//! intermediate results."
//!
//! The canonical beneficiary is the Berlin Q2 shape (Fig. 6):
//!
//! ```text
//! select y.id from graph …              into table T1      -- N rows
//! select top 10 id, count(*) … from table T1 group by id   -- k rows
//! ```
//!
//! Executed naively, `T1` materializes one row per binding. The fused
//! plan streams each binding straight into the group-by accumulator, so
//! peak intermediate state is one accumulator per *group*, not one row
//! per *match*.

use graql_parser::ast::{self, AggCall, SelectExpr, SelectSource, SelectTargets, Stmt};
use graql_table::ops::SortKey;
use graql_table::{ColumnDef, Table, TableSchema};
use graql_types::{DataType, GraqlError, Result, Value};
use rustc_hash::FxHashMap;

use crate::exec::ExecCtx;

/// Checks whether `producer` (a graph select into a table) and `consumer`
/// (a relational select over that table) can be fused: the consumer may
/// only group over the producer's projected columns and aggregate with
/// `count(*)` / `count` / `sum` / `avg` / `min` / `max`.
pub fn can_fuse(producer: &Stmt, consumer: &Stmt) -> bool {
    let (Stmt::Select(p), Stmt::Select(c)) = (producer, consumer) else {
        return false;
    };
    let Some(ast::IntoClause::Table(t_out)) = &p.into else {
        return false;
    };
    if !matches!(p.source, SelectSource::Graph(_)) {
        return false;
    }
    // Every producer item must be a qualified attribute reference
    // (`step.attr`): those project exactly one column each, keeping the
    // consumer's positional column mapping sound. (A bare multi-key step
    // expands to several columns.)
    match &p.targets {
        SelectTargets::Items(items) => {
            if !items.iter().all(|i| {
                matches!(
                    &i.expr,
                    SelectExpr::Col(c) if c.qualifier.is_some()
                )
            }) {
                return false;
            }
        }
        SelectTargets::Star => return false,
    }
    let SelectSource::Table(t_in) = &c.source else {
        return false;
    };
    if t_in != t_out || c.where_clause.is_some() || c.distinct || c.into.is_some() {
        return false;
    }
    // The consumer must be a grouped aggregation (otherwise there is
    // nothing to shrink).
    c.has_aggregates() && !c.group_by.is_empty()
}

/// Executes the fused pair, returning the consumer's result table without
/// materializing the producer's output.
pub fn execute_fused(
    ctx: &ExecCtx<'_>,
    producer: &ast::SelectStmt,
    consumer: &ast::SelectStmt,
) -> Result<Table> {
    let SelectSource::Graph(comp) = &producer.source else {
        return Err(GraqlError::exec(
            "internal: fused producer must be a graph select",
        ));
    };
    let SelectTargets::Items(p_items) = &producer.targets else {
        return Err(GraqlError::exec(
            "internal: fused producer needs explicit items",
        ));
    };

    // Producer column names (as the consumer sees them).
    let col_names: Vec<String> = p_items
        .iter()
        .map(|i| {
            i.alias.clone().unwrap_or_else(|| match &i.expr {
                SelectExpr::Col(c) => c.name.clone(),
                SelectExpr::Agg(a) => format!("{a}"),
            })
        })
        .collect();
    let col_of = |name: &str| -> Result<usize> {
        col_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| GraqlError::name(format!("unknown column {name:?} in fused pipeline")))
    };

    // Consumer plan: group columns + aggregate slots in select order.
    enum Slot {
        Group(usize), // index into group key
        Agg(usize),   // index into aggs
    }
    enum StreamAgg {
        CountStar,
        Count(usize),
        Sum(usize),
        Avg(usize),
        Min(usize),
        Max(usize),
    }
    let SelectTargets::Items(c_items) = &consumer.targets else {
        return Err(GraqlError::exec(
            "internal: fused consumer needs explicit items",
        ));
    };
    let group_cols: Vec<usize> = consumer
        .group_by
        .iter()
        .map(|g| col_of(&g.name))
        .collect::<Result<_>>()?;
    let mut aggs: Vec<StreamAgg> = Vec::new();
    let mut slots: Vec<(Slot, String)> = Vec::new();
    for (i, item) in c_items.iter().enumerate() {
        match &item.expr {
            SelectExpr::Col(c) => {
                let ci = col_of(&c.name)?;
                let gi = group_cols.iter().position(|&g| g == ci).ok_or_else(|| {
                    GraqlError::type_error(format!(
                        "column {:?} must appear in 'group by' or inside an aggregate",
                        c.name
                    ))
                })?;
                slots.push((
                    Slot::Group(gi),
                    item.alias.clone().unwrap_or_else(|| c.name.clone()),
                ));
            }
            SelectExpr::Agg(a) => {
                let agg = match a {
                    AggCall::CountStar => StreamAgg::CountStar,
                    AggCall::Count(c) => StreamAgg::Count(col_of(&c.name)?),
                    AggCall::Sum(c) => StreamAgg::Sum(col_of(&c.name)?),
                    AggCall::Avg(c) => StreamAgg::Avg(col_of(&c.name)?),
                    AggCall::Min(c) => StreamAgg::Min(col_of(&c.name)?),
                    AggCall::Max(c) => StreamAgg::Max(col_of(&c.name)?),
                };
                slots.push((
                    Slot::Agg(aggs.len()),
                    item.alias.clone().unwrap_or_else(|| format!("agg_{i}")),
                ));
                aggs.push(agg);
            }
        }
    }

    // Streaming accumulator per group.
    #[derive(Clone)]
    struct Acc {
        count: i64,
        non_null: Vec<i64>,
        sum: Vec<f64>,
        /// Integer sums accumulate separately in i64 for precision.
        isum: Vec<i64>,
        /// Whether any float flowed into this aggregate (integer-only sums
        /// finalize as integers, matching the table kernel).
        saw_float: Vec<bool>,
        min: Vec<Value>,
        max: Vec<Value>,
    }
    let fresh = Acc {
        count: 0,
        non_null: vec![0; aggs.len()],
        sum: vec![0.0; aggs.len()],
        isum: vec![0; aggs.len()],
        saw_float: vec![false; aggs.len()],
        min: vec![Value::Null; aggs.len()],
        max: vec![Value::Null; aggs.len()],
    };
    let mut groups: FxHashMap<Vec<Value>, Acc> = FxHashMap::default();
    let mut order: Vec<Vec<Value>> = Vec::new(); // first-seen group order

    // Stream the producer's bindings through a row callback.
    crate::exec::results::stream_graph_select(ctx, producer, comp, |row: &[Value]| {
        let key: Vec<Value> = group_cols.iter().map(|&c| row[c].clone()).collect();
        let acc = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            fresh.clone()
        });
        acc.count += 1;
        for (ai, agg) in aggs.iter().enumerate() {
            let col = match agg {
                StreamAgg::CountStar => None,
                StreamAgg::Count(c)
                | StreamAgg::Sum(c)
                | StreamAgg::Avg(c)
                | StreamAgg::Min(c)
                | StreamAgg::Max(c) => Some(*c),
            };
            if let Some(c) = col {
                let v = &row[c];
                if !v.is_null() {
                    acc.non_null[ai] += 1;
                    if let Some(x) = v.as_f64() {
                        acc.sum[ai] += x;
                    }
                    if let Some(x) = v.as_int() {
                        acc.isum[ai] = acc.isum[ai].wrapping_add(x);
                    }
                    if matches!(v, Value::Float(_)) {
                        acc.saw_float[ai] = true;
                    }
                    if acc.min[ai].is_null() || v < &acc.min[ai] {
                        acc.min[ai] = v.clone();
                    }
                    if acc.max[ai].is_null() || v > &acc.max[ai] {
                        acc.max[ai] = v.clone();
                    }
                }
            }
        }
        Ok(())
    })?;

    // Output schema: infer aggregate types from the streamed values (all
    // counts are integers; sums/avgs are floats — matching the kernel's
    // float widening under streaming).
    let mut defs: Vec<ColumnDef> = Vec::new();
    for (slot, name) in &slots {
        let dtype = match slot {
            Slot::Group(_) => DataType::Varchar(0), // refined below
            Slot::Agg(ai) => match aggs[*ai] {
                StreamAgg::CountStar | StreamAgg::Count(_) => DataType::Integer,
                StreamAgg::Sum(_) | StreamAgg::Avg(_) => DataType::Float,
                StreamAgg::Min(_) | StreamAgg::Max(_) => DataType::Varchar(0),
            },
        };
        defs.push(ColumnDef::new(name.clone(), dtype));
    }
    // Refine group/min/max column types from the first group's values.
    if let Some(first_key) = order.first() {
        let acc = &groups[first_key];
        for ((slot, _), def) in slots.iter().zip(&mut defs) {
            let sample = match slot {
                Slot::Group(gi) => Some(first_key[*gi].clone()),
                Slot::Agg(ai) => match aggs[*ai] {
                    StreamAgg::Min(_) => Some(acc.min[*ai].clone()),
                    StreamAgg::Max(_) => Some(acc.max[*ai].clone()),
                    // Integer-only sums are integers (producer column types
                    // are fixed, so the first group is representative).
                    StreamAgg::Sum(_) if !acc.saw_float[*ai] => Some(Value::Int(0)),
                    _ => None,
                },
            };
            if let Some(s) = sample {
                if let Some(dt) = s.data_type() {
                    def.dtype = dt;
                }
            }
        }
    }
    let schema = TableSchema::new(defs)?;
    let mut out = Table::empty(schema);
    for key in &order {
        let acc = &groups[key];
        let row: Vec<Value> = slots
            .iter()
            .map(|(slot, _)| match slot {
                Slot::Group(gi) => key[*gi].clone(),
                Slot::Agg(ai) => match aggs[*ai] {
                    StreamAgg::CountStar => Value::Int(acc.count),
                    StreamAgg::Count(_) => Value::Int(acc.non_null[*ai]),
                    StreamAgg::Sum(_) => {
                        if acc.non_null[*ai] == 0 {
                            Value::Null
                        } else if acc.saw_float[*ai] {
                            Value::Float(acc.sum[*ai])
                        } else {
                            Value::Int(acc.isum[*ai])
                        }
                    }
                    StreamAgg::Avg(_) => {
                        if acc.non_null[*ai] == 0 {
                            Value::Null
                        } else {
                            Value::Float(acc.sum[*ai] / acc.non_null[*ai] as f64)
                        }
                    }
                    StreamAgg::Min(_) => acc.min[*ai].clone(),
                    StreamAgg::Max(_) => acc.max[*ai].clone(),
                },
            })
            .collect();
        out.push_row(&row)?;
    }

    // Consumer's order by / top n (kept at the end of execute_fused).
    if !consumer.order_by.is_empty() {
        let keys = consumer
            .order_by
            .iter()
            .map(|k| {
                let col = out.schema().require(&k.col.name)?;
                Ok(SortKey { col, desc: k.desc })
            })
            .collect::<Result<Vec<_>>>()?;
        out = graql_table::ops::sort(&out, &keys);
    }
    if let Some(n) = consumer.top {
        out = graql_table::ops::top_n(&out, n as usize);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(producer: &str, consumer: &str) -> (Stmt, Stmt) {
        (
            graql_parser::parse_statement(producer).unwrap(),
            graql_parser::parse_statement(consumer).unwrap(),
        )
    }

    const PROD: &str = "select y.id from graph V(a = 1) --e--> def y: W() into table T1";
    const CONS: &str = "select top 10 id, count(*) as n from table T1 group by id order by n desc";

    #[test]
    fn fusable_pair_accepted() {
        let (p, c) = pair(PROD, CONS);
        assert!(can_fuse(&p, &c));
    }

    #[test]
    fn gates_reject_everything_else() {
        // Wrong intermediate name.
        let (p, c) = pair(
            PROD,
            "select id, count(*) as n from table OTHER group by id",
        );
        assert!(!can_fuse(&p, &c));
        // Consumer filters (would need predicate pushdown; not fused).
        let (p, c) = pair(
            PROD,
            "select id, count(*) as n from table T1 where id = 'x' group by id",
        );
        assert!(!can_fuse(&p, &c));
        // Consumer without aggregation: nothing to shrink.
        let (p, c) = pair(PROD, "select id from table T1");
        assert!(!can_fuse(&p, &c));
        // Consumer is distinct / captured: stays materialized.
        let (p, c) = pair(
            PROD,
            "select distinct id, count(*) as n from table T1 group by id",
        );
        assert!(!can_fuse(&p, &c));
        let (p, c) = pair(
            PROD,
            "select id, count(*) as n from table T1 group by id into table X",
        );
        assert!(!can_fuse(&p, &c));
        // Producer is a table select or a star/subgraph capture.
        let (p, c) = pair("select a from table Z into table T1", CONS);
        assert!(!can_fuse(&p, &c));
        let (p, c) = pair("select * from graph V() --e--> W() into subgraph T1", CONS);
        assert!(!can_fuse(&p, &c));
        // Producer without a named output.
        let (p, c) = pair("select y.id from graph V() --e--> def y: W()", CONS);
        assert!(!can_fuse(&p, &c));
        // Non-select statements.
        let ddl = graql_parser::parse_statement("create table T1(a integer)").unwrap();
        let (_, c) = pair(PROD, CONS);
        assert!(!can_fuse(&ddl, &c));
    }
}
