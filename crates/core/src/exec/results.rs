//! Query results (§II-C): projecting matches into tables (Fig. 13) and
//! subgraphs (Fig. 11), and the `select … from graph` driver.

use graql_graph::Subgraph;
use graql_parser::ast::{self, SelectExpr, SelectTargets};
use graql_table::{ColumnDef, Table, TableSchema};
use graql_types::obs::{obs_record, obs_record_rows, obs_start, Stage};
use graql_types::{DataType, GraqlError, Result};

use crate::compile::{CQuery, LinkAddr, StepAddr};
use crate::exec::expand::matched_edges;
use crate::exec::query::{run_query, MultiBinding, QueryRun};
use crate::exec::regex::group_members;
use crate::exec::ExecCtx;

/// The value of a query statement.
#[derive(Debug, Clone)]
pub enum QueryOutput {
    Table(Table),
    Subgraph(Subgraph),
}

impl QueryOutput {
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            QueryOutput::Table(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_subgraph(&self) -> Option<&Subgraph> {
        match self {
            QueryOutput::Subgraph(s) => Some(s),
            _ => None,
        }
    }
}

/// Executes a graph-sourced select statement.
pub fn execute_graph_select(ctx: &ExecCtx<'_>, sel: &ast::SelectStmt) -> Result<QueryOutput> {
    let ast::SelectSource::Graph(comp) = &sel.source else {
        return Err(GraqlError::exec("internal: not a graph select"));
    };
    if sel.has_aggregates() || !sel.group_by.is_empty() {
        return Err(GraqlError::type_error(
            "aggregates and 'group by' apply to table sources; capture the graph result \
             'into table' first (paper Fig. 6)",
        ));
    }
    let want_table = match &sel.into {
        Some(ast::IntoClause::Table(_)) => true,
        Some(ast::IntoClause::Subgraph(_)) => false,
        // Without an `into`, `select *` returns a subgraph and attribute
        // selections return a table.
        None => !matches!(sel.targets, SelectTargets::Star),
    };

    let branches = crate::compile::or_branches(comp)?;
    let mut table_out: Option<Table> = None;
    let mut subgraph_out: Option<Subgraph> = None;
    for branch in &branches {
        let qr = run_branch(ctx, branch, want_table)?;
        if want_table {
            let t = project_table(ctx, &qr, sel)?;
            match &mut table_out {
                None => table_out = Some(t),
                Some(acc) => {
                    if acc.schema() != t.schema() {
                        return Err(GraqlError::type_error(
                            "'or' branches produce incompatible table schemas",
                        ));
                    }
                    acc.append(&t)?;
                }
            }
        } else {
            let s = project_subgraph(ctx, &qr, sel)?;
            match &mut subgraph_out {
                None => subgraph_out = Some(s),
                Some(acc) => acc.union_with(ctx.graph, &s),
            }
        }
    }
    if want_table {
        Ok(QueryOutput::Table(table_out.expect("at least one branch")))
    } else {
        Ok(QueryOutput::Subgraph(
            subgraph_out.expect("at least one branch"),
        ))
    }
}

/// Runs one or-branch, deciding whether bindings are required.
fn run_branch(ctx: &ExecCtx<'_>, paths: &[&ast::PathQuery], want_table: bool) -> Result<QueryRun> {
    // Structural features that force binding-level execution.
    let has_labels = paths.iter().any(|p| {
        p.vertex_steps().iter().any(|v| v.label_def.is_some())
            || p.edge_steps().iter().any(|e| e.label_def.is_some())
    });
    let multi = paths.len() > 1;
    let need_bindings = want_table || has_labels || multi;
    let has_groups = paths.iter().any(|p| {
        p.segments
            .iter()
            .any(|s| matches!(s, ast::Segment::Group { .. }))
    });
    if need_bindings && has_groups {
        return Err(GraqlError::path(
            "path regular expressions produce set results; use 'select * … into subgraph' \
             without labels or table output",
        ));
    }
    run_query(ctx, paths, need_bindings)
}

/// Streams the projected rows of a graph select through `f`, one call per
/// binding, without building the result table (the §III-B1 pipelined
/// mode). Single-path branches stream straight out of the enumerator;
/// multi-path branches fall back to joined bindings.
pub fn stream_graph_select(
    ctx: &ExecCtx<'_>,
    sel: &ast::SelectStmt,
    comp: &ast::PathComposition,
    mut f: impl FnMut(&[graql_types::Value]) -> Result<()>,
) -> Result<()> {
    let SelectTargets::Items(_) = &sel.targets else {
        return Err(GraqlError::exec(
            "pipelined execution needs explicit select items",
        ));
    };
    for branch in crate::compile::or_branches(comp)? {
        let single_path = branch.len() == 1
            && !branch[0]
                .segments
                .iter()
                .any(|s| matches!(s, ast::Segment::Group { .. }));
        if single_path {
            // Candidates + culling, then stream from the enumerator.
            let qr = crate::exec::query::run_query(ctx, &branch, false)?;
            let cols = resolve_proj_cols(ctx, &qr.cquery, sel)?;
            let counts: Vec<usize> = qr.cands[0]
                .iter()
                .map(crate::exec::cand::cand_count)
                .collect();
            let order = crate::plan::choose_order(&counts, ctx.config.plan_mode);
            crate::exec::enumerate::enumerate_path(
                ctx,
                &qr.cquery.paths[0],
                0,
                &qr.cands[0],
                &qr.efilters[0],
                &order,
                |b| {
                    let mb = MultiBinding { per_path: vec![b] };
                    let row = cols
                        .iter()
                        .map(|c| value_of(ctx, &qr, &mb, c))
                        .collect::<Result<Vec<_>>>()?;
                    f(&row)
                },
            )?;
        } else {
            let qr = run_branch(ctx, &branch, true)?;
            let cols = resolve_proj_cols(ctx, &qr.cquery, sel)?;
            for mb in qr.bindings.as_ref().expect("bindings requested") {
                let row = cols
                    .iter()
                    .map(|c| value_of(ctx, &qr, mb, c))
                    .collect::<Result<Vec<_>>>()?;
                f(&row)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Table projection
// ---------------------------------------------------------------------------

/// One projected output column: a specific attribute of a vertex step, all
/// key columns of a step, or an attribute of a labeled edge step.
enum ProjCol {
    Attr {
        addr: StepAddr,
        name: String,
        out: String,
        dtype: DataType,
    },
    Key {
        addr: StepAddr,
        col: usize,
        out: String,
        dtype: DataType,
    },
    EdgeAttr {
        addr: LinkAddr,
        name: String,
        out: String,
        dtype: DataType,
    },
}

/// Attribute type of a labeled edge step (through its associated table).
fn edge_dtype(ctx: &ExecCtx<'_>, q: &CQuery, addr: LinkAddr, attr: &str) -> Result<DataType> {
    let step = q
        .edge_step(addr)
        .ok_or_else(|| GraqlError::path("cannot project a path group"))?;
    let etypes: Vec<graql_graph::ETypeId> = match &step.domain {
        Some(d) => d.clone(),
        None => ctx.graph.etype_ids().collect(),
    };
    let mut dtype: Option<DataType> = None;
    for et in etypes {
        let eset = ctx.graph.eset(et);
        let table_name = eset.assoc_table.as_ref().ok_or_else(|| {
            GraqlError::type_error(format!(
                "edge type {} has no attributes (no associated table)",
                eset.name
            ))
        })?;
        let schema = ctx
            .storage
            .get(table_name)
            .expect("graph views reference existing tables")
            .schema();
        let col = schema.require(attr).map_err(|_| {
            GraqlError::name(format!("edge type {} has no attribute {attr:?}", eset.name))
        })?;
        let ty = schema.column(col).dtype;
        match dtype {
            None => dtype = Some(ty),
            Some(prev) if prev.comparable_with(ty) => {}
            Some(prev) => {
                return Err(GraqlError::type_error(format!(
                    "attribute {attr:?} has incompatible types across edge types ({prev} vs {ty})"
                )))
            }
        }
    }
    dtype.ok_or_else(|| GraqlError::path("edge step matches no types"))
}

fn step_dtype(ctx: &ExecCtx<'_>, q: &CQuery, addr: StepAddr, attr: &str) -> Result<DataType> {
    let step = q.step(addr);
    let mut dtype: Option<DataType> = None;
    for &vt in &step.domain {
        let schema = ctx.vtable(vt).schema();
        let col = schema.require(attr).map_err(|_| {
            GraqlError::name(format!(
                "step {:?} (vertex type {}) has no attribute {attr:?}",
                step.display,
                ctx.graph.vset(vt).name
            ))
        })?;
        let t = schema.column(col).dtype;
        match dtype {
            None => dtype = Some(t),
            Some(prev) if prev.comparable_with(t) => {}
            Some(prev) => {
                return Err(GraqlError::type_error(format!(
                    "attribute {attr:?} has incompatible types across step {:?}'s \
                     candidate vertex types ({prev} vs {t})",
                    step.display
                )))
            }
        }
    }
    dtype.ok_or_else(|| GraqlError::path(format!("step '{}' matches no types", step.display)))
}

/// Resolves explicit select items against the compiled query: vertex-step
/// attributes, bare-step keys, and edge-label attributes.
fn resolve_proj_cols(ctx: &ExecCtx<'_>, q: &CQuery, sel: &ast::SelectStmt) -> Result<Vec<ProjCol>> {
    let SelectTargets::Items(items) = &sel.targets else {
        return Err(GraqlError::exec("internal: explicit select items required"));
    };
    let mut cols: Vec<ProjCol> = Vec::new();
    for item in items {
        let SelectExpr::Col(c) = &item.expr else {
            return Err(GraqlError::type_error(
                "aggregates are not allowed over a graph source",
            ));
        };
        match &c.qualifier {
            Some(stepname) => {
                // Vertex step/label first; otherwise an edge label.
                if let Some(&laddr) = q.edge_labels.get(stepname) {
                    let dtype = edge_dtype(ctx, q, laddr, &c.name)?;
                    let out = item.alias.clone().unwrap_or_else(|| c.name.clone());
                    cols.push(ProjCol::EdgeAttr {
                        addr: laddr,
                        name: c.name.clone(),
                        out,
                        dtype,
                    });
                    continue;
                }
                let addr = q.resolve_step(stepname)?;
                let dtype = step_dtype(ctx, q, addr, &c.name)?;
                let out = item.alias.clone().unwrap_or_else(|| c.name.clone());
                cols.push(ProjCol::Attr {
                    addr,
                    name: c.name.clone(),
                    out,
                    dtype,
                });
            }
            None => {
                // A bare step/label: project its key column(s).
                let addr = q.resolve_step(&c.name)?;
                let step = q.step(addr);
                if step.domain.len() != 1 {
                    return Err(GraqlError::path(format!(
                        "cannot project variant step {:?} into a table",
                        step.display
                    )));
                }
                let vt = step.domain[0];
                let vset = ctx.graph.vset(vt);
                let schema = ctx.vtable(vt).schema();
                for &kc in &vset.key_cols {
                    let kdef = schema.column(kc);
                    let base = item.alias.clone().unwrap_or_else(|| c.name.clone());
                    let out = if vset.key_cols.len() == 1 {
                        base
                    } else {
                        format!("{base}_{}", kdef.name)
                    };
                    cols.push(ProjCol::Key {
                        addr,
                        col: kc,
                        out,
                        dtype: kdef.dtype,
                    });
                }
            }
        }
    }
    Ok(cols)
}

fn project_table(ctx: &ExecCtx<'_>, qr: &QueryRun, sel: &ast::SelectStmt) -> Result<Table> {
    let q = &qr.cquery;
    let bindings = qr
        .bindings
        .as_ref()
        .ok_or_else(|| GraqlError::exec("internal: table projection requires bindings"))?;

    // Resolve the projection columns.
    let mut cols: Vec<ProjCol> = Vec::new();
    match &sel.targets {
        SelectTargets::Star => {
            for (pi, p) in q.paths.iter().enumerate() {
                for (vi, v) in p.vsteps.iter().enumerate() {
                    if v.label_ref.is_some() {
                        continue; // the entity already appears at its definition
                    }
                    let addr = StepAddr {
                        path: pi,
                        vstep: vi,
                    };
                    if v.domain.len() != 1 {
                        return Err(GraqlError::path(format!(
                            "'select *' into a table requires concrete steps; step {:?} is variant",
                            v.display
                        )));
                    }
                    let vt = v.domain[0];
                    let vset = ctx.graph.vset(vt);
                    let schema = ctx.vtable(vt).schema();
                    if vset.mapping.is_one_to_one() {
                        for (ci, c) in schema.columns().iter().enumerate() {
                            let _ = ci;
                            cols.push(ProjCol::Attr {
                                addr,
                                name: c.name.clone(),
                                out: format!("{}_{}", v.display, c.name),
                                dtype: c.dtype,
                            });
                        }
                    } else {
                        for &kc in &vset.key_cols {
                            let c = schema.column(kc);
                            cols.push(ProjCol::Attr {
                                addr,
                                name: c.name.clone(),
                                out: format!("{}_{}", v.display, c.name),
                                dtype: c.dtype,
                            });
                        }
                    }
                }
            }
        }
        SelectTargets::Items(_) => {
            cols = resolve_proj_cols(ctx, q, sel)?;
        }
    }

    // Uniquify output column names.
    let mut seen: rustc_hash::FxHashMap<String, usize> = rustc_hash::FxHashMap::default();
    let defs: Vec<ColumnDef> = cols
        .iter()
        .map(|c| {
            let (out, dtype) = match c {
                ProjCol::Attr { out, dtype, .. }
                | ProjCol::Key { out, dtype, .. }
                | ProjCol::EdgeAttr { out, dtype, .. } => (out.clone(), *dtype),
            };
            let n = seen.entry(out.clone()).or_insert(0);
            *n += 1;
            let name = if *n == 1 { out } else { format!("{out}_{n}") };
            ColumnDef::new(name, dtype)
        })
        .collect();
    let schema = TableSchema::new(defs)?;
    let mut out = Table::empty(schema);

    let span = obs_start(ctx.obs);
    let mut ticker = ctx.guard.ticker();
    for mb in bindings {
        ticker.tick()?;
        let row = cols
            .iter()
            .map(|c| value_of(ctx, qr, mb, c))
            .collect::<Result<Vec<_>>>()?;
        out.push_row(&row)?;
    }
    if let Some(p) = ctx.obs {
        p.add_guard_ticks(ticker.checkpoints());
    }
    obs_record_rows(
        ctx.obs,
        Stage::Project,
        span,
        bindings.len() as u64,
        out.n_rows() as u64,
    );
    ctx.guard.add_bytes(out.approx_bytes())?;
    Ok(out)
}

fn value_of(
    ctx: &ExecCtx<'_>,
    _qr: &QueryRun,
    mb: &MultiBinding,
    col: &ProjCol,
) -> Result<graql_types::Value> {
    match col {
        ProjCol::Attr { addr, name, .. } => {
            let (vt, idx) = QueryRun::instance(mb, *addr);
            ctx.vattr(vt, idx, name)
        }
        ProjCol::Key { addr, col, .. } => {
            let (vt, idx) = QueryRun::instance(mb, *addr);
            let vset = ctx.graph.vset(vt);
            vset.attr(ctx.vtable(vt), idx, *col)
        }
        ProjCol::EdgeAttr { addr, name, .. } => {
            let (et, eid) = mb.per_path[addr.path].e[addr.link];
            let eset = ctx.graph.eset(et);
            let table = ctx
                .storage
                .get(eset.assoc_table.as_deref().expect("checked at compile"))
                .expect("graph views reference existing tables");
            let col = table.schema().require(name)?;
            let row = eset.assoc_row(eid)?;
            Ok(table.get(row as usize, col))
        }
    }
}

// ---------------------------------------------------------------------------
// Subgraph projection
// ---------------------------------------------------------------------------

fn project_subgraph(ctx: &ExecCtx<'_>, qr: &QueryRun, sel: &ast::SelectStmt) -> Result<Subgraph> {
    let q = &qr.cquery;
    let span = obs_start(ctx.obs);
    let mut out = Subgraph::new();
    match (&sel.targets, &qr.bindings) {
        (SelectTargets::Star, Some(bindings)) => {
            // Exact: mark everything each binding touches.
            let mut ticker = ctx.guard.ticker();
            for mb in bindings {
                ticker.tick()?;
                for b in &mb.per_path {
                    for &(vt, idx) in &b.v {
                        out.add_vertex(ctx.graph, vt, idx);
                    }
                    for &(et, idx) in &b.e {
                        out.add_edge(ctx.graph, et, idx);
                    }
                }
            }
        }
        (SelectTargets::Star, None) => {
            // Set-level: culled candidates + matched edges per link.
            for (pi, p) in q.paths.iter().enumerate() {
                for (vi, cand) in qr.cands[pi].iter().enumerate() {
                    let _ = vi;
                    for (vt, set) in cand {
                        out.add_vertices(ctx.graph, *vt, set);
                    }
                }
                for (li, link) in p.links.iter().enumerate() {
                    match link {
                        crate::compile::CLink::Edge(e) => {
                            for (et, hit) in matched_edges(
                                ctx,
                                &qr.cands[pi][li],
                                e,
                                &qr.efilters[pi][li],
                                &qr.cands[pi][li + 1],
                            ) {
                                out.add_edges(ctx.graph, et, &hit);
                            }
                        }
                        crate::compile::CLink::Group(g) => {
                            let (members, edges) =
                                group_members(ctx, &qr.cands[pi][li], &qr.cands[pi][li + 1], g)?;
                            for (vt, set) in &members {
                                out.add_vertices(ctx.graph, *vt, set);
                            }
                            for (et, set) in &edges {
                                out.add_edges(ctx.graph, *et, set);
                            }
                        }
                    }
                }
            }
        }
        (SelectTargets::Items(items), bindings) => {
            // Selected steps' vertices (Fig. 11's resultsBE) and any
            // labeled edge steps' edges.
            let mut addrs: Vec<StepAddr> = Vec::new();
            let mut eaddrs: Vec<LinkAddr> = Vec::new();
            for item in items {
                let SelectExpr::Col(c) = &item.expr else {
                    return Err(GraqlError::type_error(
                        "aggregates are not allowed over a graph source",
                    ));
                };
                if c.qualifier.is_some() {
                    return Err(GraqlError::type_error(
                        "attribute selections go 'into table'; subgraphs capture whole steps",
                    ));
                }
                if let Some(&laddr) = q.edge_labels.get(&c.name) {
                    eaddrs.push(laddr);
                } else {
                    addrs.push(q.resolve_step(&c.name)?);
                }
            }
            match bindings {
                Some(bindings) => {
                    for mb in bindings {
                        for &addr in &addrs {
                            let (vt, idx) = QueryRun::instance(mb, addr);
                            out.add_vertex(ctx.graph, vt, idx);
                        }
                        for &laddr in &eaddrs {
                            let (et, eid) = mb.per_path[laddr.path].e[laddr.link];
                            out.add_edge(ctx.graph, et, eid);
                        }
                    }
                }
                None => {
                    for &addr in &addrs {
                        for (vt, set) in &qr.cands[addr.path][addr.vstep] {
                            out.add_vertices(ctx.graph, *vt, set);
                        }
                    }
                    for &laddr in &eaddrs {
                        let Some(estep) = q.edge_step(laddr) else {
                            return Err(GraqlError::path("cannot select a path group"));
                        };
                        for (et, hit) in matched_edges(
                            ctx,
                            &qr.cands[laddr.path][laddr.link],
                            estep,
                            &qr.efilters[laddr.path][laddr.link],
                            &qr.cands[laddr.path][laddr.link + 1],
                        ) {
                            out.add_edges(ctx.graph, et, &hit);
                        }
                    }
                }
            }
        }
    }
    obs_record(ctx.obs, Stage::Project, span);
    Ok(out)
}

/// Infers the schema a graph select would produce, for static analysis.
/// (Implemented as an execution dry-run helper; full analysis lives in
/// [`crate::analyze`].)
pub fn projected_names(sel: &ast::SelectStmt) -> Vec<String> {
    match &sel.targets {
        SelectTargets::Star => vec!["*".to_string()],
        SelectTargets::Items(items) => items
            .iter()
            .map(|i| {
                i.alias.clone().unwrap_or_else(|| match &i.expr {
                    SelectExpr::Col(c) => c.name.clone(),
                    SelectExpr::Agg(a) => format!("{a}"),
                })
            })
            .collect(),
    }
}
