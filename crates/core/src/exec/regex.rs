//! Path regular expressions (§II-B4, Fig. 10): bounded repetition of
//! variant hop sequences, executed as set-level BFS over the edge indexes.
//!
//! Binding-level enumeration through an unbounded repetition would be
//! exponential, so groups produce *set* results: the frontier after valid
//! repetition counts, and — for subgraph capture — the vertices/edges
//! lying on some valid path (computed by intersecting forward levels with
//! backward levels from the exit set).
//!
//! Two subtleties the implementation handles explicitly:
//!
//! * **Backward landings at repetition boundaries** are either the group's
//!   *entry* vertex (unconstrained by hop conditions) or an *intermediate*
//!   boundary vertex, which must still satisfy the last hop's conditions.
//!   The two are tracked separately ([`GroupLevels::entry_at`] vs the
//!   conditioned [`GroupLevels::at`]).
//! * **Early cutoff** requires the boundary frontier to be *stable*
//!   (identical to the previous boundary's): a merely non-growing
//!   cumulative set is not enough — frontiers can oscillate on cycles
//!   (a→b→a), and dropping later levels would lose valid exits.

use graql_graph::{ETypeId, VTypeId};
use graql_table::BitSet;
use graql_types::Result;
use rustc_hash::FxHashMap;

use crate::compile::CGroup;
use crate::exec::cand::{cand_count, cand_is_empty, local_candidates, Cand};
use crate::exec::expand::expand;
use crate::exec::ExecCtx;

/// All-pass edge filters (group hops are typically `[ ]` variant steps,
/// which cannot carry conditions; named hops' vertex conditions live in
/// the hop candidates instead).
fn no_filters() -> FxHashMap<ETypeId, BitSet> {
    FxHashMap::default()
}

/// BFS levels through a group.
pub struct GroupLevels {
    /// `at[p]`: vertices reached after exactly `p` hop applications, with
    /// hop conditions applied at every landing (including boundaries).
    pub at: Vec<Cand>,
    /// Backward sweeps only: `entry_at[reps]` is the frontier after
    /// exactly `reps` full repetitions when the landing is the group
    /// *entry* (no hop condition applies there). `entry_at[0]` is the
    /// start set itself. `None` for repetition counts not reached.
    pub entry_at: Vec<Option<Cand>>,
}

/// Computes BFS levels from `start` through `group`, walking `forward`
/// along the path or backward from the exit side.
pub fn levels(
    ctx: &ExecCtx<'_>,
    start: &Cand,
    group: &CGroup,
    forward: bool,
) -> Result<GroupLevels> {
    let m = group.hops.len();
    let max_positions = (group.hi as usize).saturating_mul(m);
    let mut at: Vec<Cand> = vec![start.clone()];
    let mut entry_at: Vec<Option<Cand>> = vec![Some(start.clone())];

    // Hop candidate sets (domain + any hop conditions).
    let mut hop_cands: Vec<Cand> = Vec::with_capacity(m);
    for (_, vstep) in &group.hops {
        hop_cands.push(local_candidates(ctx, vstep)?);
    }
    // Unconstrained universe for backward entry landings.
    let entry_universe: Cand = ctx
        .graph
        .vtype_ids()
        .map(|vt: VTypeId| (vt, BitSet::full(ctx.graph.vset(vt).len())))
        .collect();

    for p in 0..max_positions {
        // Each BFS level materializes a frontier; this is where a runaway
        // repetition burns time and memory, so checkpoint every level and
        // charge the frontier against the byte budget.
        ctx.guard.check()?;
        let hop_idx = if forward { p % m } else { m - 1 - (p % m) };
        let (estep, _) = &group.hops[hop_idx];
        // Conditioned universe of this landing: walking forward a hop
        // lands in its own vertex step's candidates; walking backward it
        // lands in the *preceding* vertex's (previous hop's vertex, or —
        // at the repetition boundary — the last hop's vertex of the
        // previous repetition, which still carries that hop's conditions).
        let universe: &Cand = if forward {
            &hop_cands[hop_idx]
        } else if hop_idx == 0 {
            &hop_cands[m - 1]
        } else {
            &hop_cands[hop_idx - 1]
        };
        let next = expand(ctx, &at[p], estep, &no_filters(), universe, forward)?;
        let completes_rep = (p + 1) % m == 0;
        if !forward && completes_rep {
            // The same expansion, unconditioned: valid when the landing is
            // the group entry rather than an intermediate boundary.
            let entry = expand(ctx, &at[p], estep, &no_filters(), &entry_universe, forward)?;
            entry_at.push(if cand_is_empty(&entry) {
                None
            } else {
                Some(entry)
            });
        } else if completes_rep {
            entry_at.push(None); // unused on forward sweeps
        }
        if cand_is_empty(&next) {
            break;
        }
        ctx.guard.add_bytes(4 * cand_count(&next) as u64)?;
        at.push(next);
        // Stable-frontier cutoff at repetition boundaries: identical to
        // the previous boundary frontier means every later level repeats
        // with period one — nothing new can appear. (A non-growing
        // cumulative set is NOT sufficient: frontiers oscillate on
        // cycles.)
        let reps_done = (p + 1) / m;
        if completes_rep && reps_done >= 1 && reps_done >= group.lo as usize {
            let prev_boundary = (reps_done - 1) * m;
            if at[reps_done * m] == at[prev_boundary] {
                break;
            }
        }
    }
    Ok(GroupLevels { at, entry_at })
}

/// The frontier after any valid repetition count in `[lo, hi]`, entered
/// from `start` (walking `forward` along the path). For backward sweeps
/// this is the set of possible group-entry vertices.
pub fn group_frontier(
    ctx: &ExecCtx<'_>,
    start: &Cand,
    group: &CGroup,
    forward: bool,
) -> Result<Cand> {
    let m = group.hops.len();
    let lv = levels(ctx, start, group, forward)?;
    let mut out = Cand::new();
    let mut add = |frontier: &Cand| {
        for (vt, set) in frontier {
            out.entry(*vt)
                .and_modify(|s| s.union_with(set))
                .or_insert_with(|| set.clone());
        }
    };
    if forward {
        // A stable-frontier cutoff below `hi` means later boundary
        // frontiers equal the last one computed, which the loop includes.
        let max_reps = (lv.at.len() - 1) / m;
        for reps in group.lo as usize..=(group.hi as usize).min(max_reps) {
            add(&lv.at[reps * m]);
        }
    } else {
        for reps in group.lo as usize..=group.hi as usize {
            match lv.entry_at.get(reps) {
                Some(Some(f)) => add(f),
                Some(None) => {} // reached, but no entry landing possible
                None => {
                    // Cut off by stability: the last computed entry
                    // frontier repeats for every remaining count.
                    if let Some(Some(last)) = lv.entry_at.iter().rev().find(|e| e.is_some()) {
                        add(last);
                    }
                    break;
                }
            }
        }
    }
    Ok(out)
}

/// Vertices and edges on *some* valid path from `entry` to `exit` through
/// the group: position-wise intersection of forward and backward levels.
pub fn group_members(
    ctx: &ExecCtx<'_>,
    entry: &Cand,
    exit: &Cand,
    group: &CGroup,
) -> Result<(Cand, Vec<(ETypeId, BitSet)>)> {
    let m = group.hops.len();
    let fwd = levels(ctx, entry, group, true)?;
    let bwd = levels(ctx, exit, group, false)?;
    let lo = group.lo as usize;
    let hi = group.hi as usize;
    let mut member_by_pos: Vec<Cand> = vec![Cand::new(); fwd.at.len()];
    for reps in lo..=hi {
        ctx.guard.check()?;
        let total = reps * m;
        if total >= fwd.at.len() {
            break;
        }
        // `p` indexes three parallel structures (`fwd.at`, `bwd.at` via
        // `total - p`, and `member_by_pos`), so an iterator rewrite would
        // obscure the position arithmetic.
        #[allow(clippy::needless_range_loop)]
        for p in 0..=total {
            let back = total - p;
            // The backward set constraining path position p: the entry
            // position (p == 0) uses the unconditioned entry frontier;
            // everything else uses the conditioned level.
            let bset: Option<&Cand> = if p == 0 {
                bwd.entry_at.get(reps).and_then(Option::as_ref)
            } else if back < bwd.at.len() {
                Some(&bwd.at[back])
            } else {
                None
            };
            let Some(b) = bset else { continue };
            let f = &fwd.at[p];
            for (vt, fset) in f {
                if let Some(bs) = b.get(vt) {
                    let mut inter = fset.clone();
                    inter.intersect_with(bs);
                    if !inter.none() {
                        member_by_pos[p]
                            .entry(*vt)
                            .and_modify(|s| s.union_with(&inter))
                            .or_insert(inter);
                    }
                }
            }
        }
    }
    // Union of members over positions.
    let mut members = Cand::new();
    for pos in &member_by_pos {
        for (vt, set) in pos {
            members
                .entry(*vt)
                .and_modify(|s| s.union_with(set))
                .or_insert_with(|| set.clone());
        }
    }
    // Matched edges: for each adjacent position pair, edges from members
    // at p to members at p+1 via the hop at p.
    let mut edge_sets: FxHashMap<ETypeId, BitSet> = FxHashMap::default();
    for p in 0..member_by_pos.len().saturating_sub(1) {
        let hop_idx = p % m;
        let (estep, _) = &group.hops[hop_idx];
        let from = &member_by_pos[p];
        let to = &member_by_pos[p + 1];
        if from.is_empty() || to.is_empty() {
            continue;
        }
        for (et, hit) in crate::exec::expand::matched_edges(ctx, from, estep, &no_filters(), to) {
            edge_sets
                .entry(et)
                .and_modify(|s| s.union_with(&hit))
                .or_insert(hit);
        }
    }
    let mut edges: Vec<(ETypeId, BitSet)> = edge_sets.into_iter().collect();
    edges.sort_by_key(|(et, _)| *et);
    Ok((members, edges))
}
