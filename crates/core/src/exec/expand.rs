//! Frontier expansion over the bidirectional edge index: the primitive
//! behind both semi-join culling and regex BFS.

use graql_graph::{Csr, ETypeId, VTypeId};
use graql_parser::ast::Dir;
use graql_table::BitSet;
use graql_types::Result;
use rustc_hash::FxHashMap;

use crate::compile::CEStep;
use crate::exec::cand::{edge_passes, Cand};
use crate::exec::{morsel, ExecCtx};

/// The edge types an edge step may use between `from_vt` (at the earlier
/// path position) and some type in `to_dom` (at the later position), given
/// the step's direction; paired with the CSR to walk from the `from` side
/// and the vertex type reached.
pub fn applicable_edges<'g>(
    ctx: &ExecCtx<'g>,
    estep: &CEStep,
    from_vt: VTypeId,
    to_dom: &Cand,
    forward: bool,
) -> Vec<(ETypeId, &'g Csr, VTypeId)> {
    let etypes: Vec<ETypeId> = match &estep.domain {
        Some(d) => d.clone(),
        None => ctx.graph.etype_ids().collect(),
    };
    // `forward` means we expand from path position i to i+1; the edge's
    // lexical direction (estep.dir) decides which CSR that walk uses.
    let mut out = Vec::new();
    for et in etypes {
        let es = ctx.graph.eset(et);
        let (expected_from, reached, csr) = match (estep.dir, forward) {
            // V_i --e--> V_{i+1}: forward walks src→tgt (fwd CSR).
            (Dir::Out, true) => (es.src_type, es.tgt_type, &ctx.graph.edge_index(et).fwd),
            (Dir::Out, false) => (es.tgt_type, es.src_type, &ctx.graph.edge_index(et).rev),
            // V_i <--e-- V_{i+1}: the edge points from V_{i+1} to V_i.
            (Dir::In, true) => (es.tgt_type, es.src_type, &ctx.graph.edge_index(et).rev),
            (Dir::In, false) => (es.src_type, es.tgt_type, &ctx.graph.edge_index(et).fwd),
        };
        if expected_from == from_vt && to_dom.contains_key(&reached) {
            out.push((et, csr, reached));
        }
    }
    out
}

/// Expands `from` through `estep` into the domain/allowance `to_allowed`,
/// returning reached ∩ allowed. `forward` selects the path direction (see
/// [`applicable_edges`]).
///
/// The per-type frontier walk goes morsel-parallel when the estimated
/// traversed-edge count (catalog mean degrees × frontier size) clears the
/// profitability floor. The output is a *set* per reached type, and
/// bitset union is commutative, so the parallel merge is trivially
/// byte-identical to the serial walk.
pub fn expand(
    ctx: &ExecCtx<'_>,
    from: &Cand,
    estep: &CEStep,
    efilters: &FxHashMap<ETypeId, BitSet>,
    to_allowed: &Cand,
    forward: bool,
) -> Result<Cand> {
    let mut out: Cand = to_allowed
        .iter()
        .map(|(&vt, s)| (vt, BitSet::new(s.len())))
        .collect();
    for (&vt_a, set_a) in from {
        let edges = applicable_edges(ctx, estep, vt_a, to_allowed, forward);
        if edges.is_empty() {
            continue;
        }
        let count = set_a.count();
        let names: Vec<&str> = edges
            .iter()
            .map(|&(et, _, _)| ctx.graph.eset(et).name.as_str())
            .collect();
        let est = morsel::est_traversed_edges(
            ctx.stats,
            &names,
            count,
            matches!(estep.dir, Dir::Out) == forward,
        );
        let workers = morsel::scan_workers(ctx.config.threads, est, morsel::PAR_MIN_ITEMS);
        if workers <= 1 {
            for (et, csr, reached) in &edges {
                let allowed = &to_allowed[reached];
                let dest = out.get_mut(reached).expect("initialized from to_allowed");
                for v in set_a.iter() {
                    let nbrs = csr.neighbors(v as u32);
                    let eids = csr.edge_ids(v as u32);
                    for (&t, &e) in nbrs.iter().zip(eids) {
                        if allowed.contains(t as usize) && edge_passes(efilters, *et, e) {
                            dest.insert(t as usize);
                        }
                    }
                }
            }
        } else {
            let verts: Vec<u32> = set_a.iter().map(|v| v as u32).collect();
            // Few large morsels: each allocates a partial bitset per
            // reached type, so morsel count is bounded, not row-driven.
            let morsel_size = verts.len().div_ceil(workers * 4).max(1);
            let parts =
                morsel::run_morsels(ctx.guard, verts.len(), morsel_size, workers, |_, range| {
                    let mut partial: Cand = to_allowed
                        .iter()
                        .map(|(&vt, s)| (vt, BitSet::new(s.len())))
                        .collect();
                    for &v in &verts[range] {
                        for (et, csr, reached) in &edges {
                            let allowed = &to_allowed[reached];
                            let dest = partial
                                .get_mut(reached)
                                .expect("initialized from to_allowed");
                            let nbrs = csr.neighbors(v);
                            let eids = csr.edge_ids(v);
                            for (&t, &e) in nbrs.iter().zip(eids) {
                                if allowed.contains(t as usize) && edge_passes(efilters, *et, e) {
                                    dest.insert(t as usize);
                                }
                            }
                        }
                    }
                    Ok(partial)
                })?;
            for partial in parts {
                for (vt, set) in partial {
                    out.get_mut(&vt)
                        .expect("initialized from to_allowed")
                        .union_with(&set);
                }
            }
        }
    }
    Ok(out)
}

/// After culling, the concrete matched edges of a hop: edges whose source
/// side is in `cand_i`, target side in `cand_j`, passing the step filters.
/// `cand_i` is the earlier path position.
pub fn matched_edges(
    ctx: &ExecCtx<'_>,
    cand_i: &Cand,
    estep: &CEStep,
    efilters: &FxHashMap<ETypeId, BitSet>,
    cand_j: &Cand,
) -> Vec<(ETypeId, BitSet)> {
    let etypes: Vec<ETypeId> = match &estep.domain {
        Some(d) => d.clone(),
        None => ctx.graph.etype_ids().collect(),
    };
    let mut out = Vec::new();
    for et in etypes {
        let es = ctx.graph.eset(et);
        // Which path side is the edge's src/tgt under this direction?
        let (earlier, later) = match estep.dir {
            Dir::Out => (es.src_type, es.tgt_type),
            Dir::In => (es.tgt_type, es.src_type),
        };
        let (Some(set_i), Some(set_j)) = (cand_i.get(&earlier), cand_j.get(&later)) else {
            continue;
        };
        let mut hit = BitSet::new(es.len());
        for e in 0..es.len() as u32 {
            if !edge_passes(efilters, et, e) {
                continue;
            }
            let (s, t) = es.endpoints(e);
            let (on_i, on_j) = match estep.dir {
                Dir::Out => (s, t),
                Dir::In => (t, s),
            };
            if set_i.contains(on_i as usize) && set_j.contains(on_j as usize) {
                hit.insert(e as usize);
            }
        }
        if !hit.none() {
            out.push((et, hit));
        }
    }
    out
}

/// Iterates the concrete `(edge type, edge id, reached vertex)` extensions
/// of a single bound vertex through an edge step — the enumeration
/// workhorse.
pub fn extensions_of(
    ctx: &ExecCtx<'_>,
    bound: (VTypeId, u32),
    estep: &CEStep,
    efilters: &FxHashMap<ETypeId, BitSet>,
    to_allowed: &Cand,
    forward: bool,
    mut f: impl FnMut(ETypeId, u32, VTypeId, u32),
) {
    let (vt, v) = bound;
    for (et, csr, reached) in applicable_edges(ctx, estep, vt, to_allowed, forward) {
        let allowed = &to_allowed[&reached];
        let nbrs = csr.neighbors(v);
        let eids = csr.edge_ids(v);
        for (&t, &e) in nbrs.iter().zip(eids) {
            if allowed.contains(t as usize) && edge_passes(efilters, et, e) {
                f(et, e, reached, t);
            }
        }
    }
}
