//! Whole-query driver: candidates → culling → (optional) binding
//! enumeration and multi-path joins.

use graql_graph::{ETypeId, VTypeId};
use graql_parser::ast;
use graql_table::BitSet;
use graql_types::obs::{obs_record, obs_record_rows, obs_start, Stage};
use graql_types::{GraqlError, Result};
use rustc_hash::FxHashMap;

use graql_parser::ast::LabelKind;

use crate::compile::{compile_query, BindingCond, CLink, CQuery, CompileCtx, StepAddr};
use crate::exec::cand::{cand_count, edge_filters, local_candidates, Cand};
use crate::exec::enumerate::{enumerate_path, Binding};
use crate::exec::expand::expand;
use crate::exec::regex::group_frontier;
use crate::exec::ExecCtx;
use crate::plan::choose_order;

/// One concrete match across all paths of an and-composition.
#[derive(Debug, Clone)]
pub struct MultiBinding {
    pub per_path: Vec<Binding>,
}

/// The result of running one and-composition.
pub struct QueryRun {
    pub cquery: CQuery,
    /// Culled candidate sets, per path per vertex step.
    pub cands: Vec<Vec<Cand>>,
    /// Edge filters, per path per link (empty map = all pass).
    pub efilters: Vec<Vec<FxHashMap<ETypeId, BitSet>>>,
    /// Joined bindings (present only when requested).
    pub bindings: Option<Vec<MultiBinding>>,
}

impl QueryRun {
    /// The bound instance at `addr` in a multi-binding.
    pub fn instance(b: &MultiBinding, addr: StepAddr) -> (VTypeId, u32) {
        b.per_path[addr.path].v[addr.vstep]
    }
}

/// Compiles and runs an and-composition.
pub fn run_query(
    ctx: &ExecCtx<'_>,
    paths: &[&ast::PathQuery],
    need_bindings: bool,
) -> Result<QueryRun> {
    let cctx = CompileCtx {
        graph: ctx.graph,
        storage: ctx.storage,
        params: ctx.params,
        regex_cap: ctx.config.regex_cap,
    };
    let span = obs_start(ctx.obs);
    let cquery = compile_query(&cctx, paths)?;
    obs_record(ctx.obs, Stage::Compile, span);

    // Local candidates + edge filters.
    let span = obs_start(ctx.obs);
    let mut cands: Vec<Vec<Cand>> = Vec::new();
    let mut efilters: Vec<Vec<FxHashMap<ETypeId, BitSet>>> = Vec::new();
    for p in &cquery.paths {
        let mut pc = Vec::new();
        for v in &p.vsteps {
            pc.push(local_candidates(ctx, v)?);
        }
        cands.push(pc);
        let mut pe = Vec::new();
        for l in &p.links {
            match l {
                CLink::Edge(e) => pe.push(edge_filters(ctx, e)?),
                CLink::Group(_) => pe.push(FxHashMap::default()),
            }
        }
        efilters.push(pe);
    }

    // Label restriction (Eq. 6–8): per Eq. 7 a referencing step behaves
    // as if it repeated the defining step's type and condition, so it is
    // restricted by the definition's *local* candidate set (snapshotted
    // before culling — using the culled set would be circular and
    // over-restrict, e.g. Eq. 12's structural query). Same-instance /
    // same-type semantics are enforced at binding time.
    let label_local: FxHashMap<String, Cand> = cquery
        .labels
        .iter()
        .map(|(n, i)| (n.clone(), cands[i.def.path][i.def.vstep].clone()))
        .collect();
    apply_label_restriction(&cquery, &mut cands, &label_local);
    obs_record_rows(
        ctx.obs,
        Stage::Candidates,
        span,
        0,
        total_count(&cands) as u64,
    );

    // For set-level results the semi-join sweeps ARE the semantics of
    // Eq. 5; only binding-level execution can treat them as an optional
    // pre-filter (enumeration re-checks every hop). The culling ablation
    // flag therefore only applies when bindings are produced.
    if ctx.config.culling || !need_bindings {
        let before = total_count(&cands);
        let span = obs_start(ctx.obs);
        cull_to_fixpoint(ctx, &cquery, &mut cands, &efilters)?;
        let after = total_count(&cands);
        obs_record_rows(ctx.obs, Stage::Cull, span, before as u64, after as u64);
        if let Some(p) = ctx.obs {
            p.add_candidates(before as u64, after as u64);
        }
    }

    let bindings = if need_bindings {
        let span = obs_start(ctx.obs);
        let b = produce_bindings(ctx, &cquery, &cands, &efilters)?;
        obs_record_rows(
            ctx.obs,
            Stage::Enumerate,
            span,
            total_count(&cands) as u64,
            b.len() as u64,
        );
        Some(b)
    } else {
        None
    };

    Ok(QueryRun {
        cquery,
        cands,
        efilters,
        bindings,
    })
}

/// `cand[ref] ∩= local(def)` for every label reference.
fn apply_label_restriction(
    q: &CQuery,
    cands: &mut [Vec<Cand>],
    label_local: &FxHashMap<String, Cand>,
) {
    for (pi, p) in q.paths.iter().enumerate() {
        for (vi, v) in p.vsteps.iter().enumerate() {
            let Some(name) = &v.label_ref else { continue };
            let Some(def_set) = label_local.get(name) else {
                continue;
            };
            let here = &mut cands[pi][vi];
            for (vt, set) in here.iter_mut() {
                match def_set.get(vt) {
                    Some(d) => set.intersect_with(d),
                    None => set.clear(),
                }
            }
        }
    }
}

/// Semi-join sweeps over every path (plus label re-restriction) until the
/// candidate sets stop shrinking.
fn cull_to_fixpoint(
    ctx: &ExecCtx<'_>,
    q: &CQuery,
    cands: &mut [Vec<Cand>],
    efilters: &[Vec<FxHashMap<ETypeId, BitSet>>],
) -> Result<()> {
    const MAX_SWEEPS: usize = 4;
    let mut last_total = total_count(cands);
    for _ in 0..MAX_SWEEPS {
        // Fault site at the batch-granularity checkpoint: a Delay here
        // widens the window in which cancel/deadline must land mid-query;
        // an Err injects the same typed abort a tripped guard produces.
        graql_types::failpoint!("core/exec/batch", GraqlError::cancelled);
        ctx.guard.check()?;
        for (pi, p) in q.paths.iter().enumerate() {
            // Forward sweep.
            for li in 0..p.links.len() {
                ctx.guard.check()?;
                let reached = link_expand(
                    ctx,
                    &p.links[li],
                    &cands[pi][li],
                    &efilters[pi][li],
                    &cands[pi][li + 1],
                    true,
                )?;
                cands[pi][li + 1] = reached;
            }
            // Backward sweep.
            for li in (0..p.links.len()).rev() {
                ctx.guard.check()?;
                let reached = link_expand(
                    ctx,
                    &p.links[li],
                    &cands[pi][li + 1],
                    &efilters[pi][li],
                    &cands[pi][li],
                    false,
                )?;
                cands[pi][li] = reached;
            }
        }
        let t = total_count(cands);
        if t == last_total {
            break;
        }
        last_total = t;
    }
    Ok(())
}

fn total_count(cands: &[Vec<Cand>]) -> usize {
    cands.iter().flat_map(|p| p.iter().map(cand_count)).sum()
}

/// Expands through a link (edge hop or regex group). `from` is at the
/// earlier position when `forward`, at the later position otherwise.
pub fn link_expand(
    ctx: &ExecCtx<'_>,
    link: &CLink,
    from: &Cand,
    efilter: &FxHashMap<ETypeId, BitSet>,
    to_allowed: &Cand,
    forward: bool,
) -> Result<Cand> {
    match link {
        CLink::Edge(e) => expand(ctx, from, e, efilter, to_allowed, forward),
        CLink::Group(g) => {
            let mut reached = group_frontier(ctx, from, g, forward)?;
            // Restrict to the allowed sets on the far side.
            let mut out = Cand::new();
            for (vt, allowed) in to_allowed {
                if let Some(r) = reached.remove(vt) {
                    let mut r = r;
                    r.intersect_with(allowed);
                    out.insert(*vt, r);
                } else {
                    out.insert(*vt, BitSet::new(allowed.len()));
                }
            }
            Ok(out)
        }
    }
}

/// Enumerates each path and joins on shared element-wise labels.
fn produce_bindings(
    ctx: &ExecCtx<'_>,
    q: &CQuery,
    cands: &[Vec<Cand>],
    efilters: &[Vec<FxHashMap<ETypeId, BitSet>>],
) -> Result<Vec<MultiBinding>> {
    // Occurrences of each `foreach` label per path (vstep indices).
    let occurrences = |pi: usize, label: &str| -> Vec<usize> {
        let mut out = Vec::new();
        for (vi, v) in q.paths[pi].vsteps.iter().enumerate() {
            let matches = v
                .label_def
                .as_ref()
                .is_some_and(|(k, n)| *k == LabelKind::Each && n == label)
                || v.label_ref.as_deref() == Some(label)
                    && q.labels
                        .get(label)
                        .is_some_and(|i| i.kind == LabelKind::Each);
            if matches {
                out.push(vi);
            }
        }
        out
    };
    let each_labels: Vec<String> = {
        let mut v: Vec<String> = q
            .labels
            .iter()
            .filter(|(_, i)| i.kind == LabelKind::Each)
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    };

    let mut acc: Vec<MultiBinding> = Vec::new();
    for (pi, p) in q.paths.iter().enumerate() {
        let counts: Vec<usize> = cands[pi].iter().map(cand_count).collect();
        let span = obs_start(ctx.obs);
        let order = choose_order(&counts, ctx.config.plan_mode);
        obs_record(ctx.obs, Stage::Plan, span);
        let mut rows: Vec<Binding> = Vec::new();
        enumerate_path(ctx, p, pi, &cands[pi], &efilters[pi], &order, |b| {
            rows.push(b);
            Ok(())
        })?;

        // Within-path multiple occurrences of an Each label whose
        // definition lives in another path: enforce internal equality.
        for label in &each_labels {
            let occ = occurrences(pi, label);
            if occ.len() > 1 {
                rows.retain(|b| occ.windows(2).all(|w| b.v[w[0]] == b.v[w[1]]));
            }
        }

        if pi == 0 {
            acc = rows
                .into_iter()
                .map(|b| MultiBinding { per_path: vec![b] })
                .collect();
            continue;
        }

        // Join keys: Each labels occurring both in the accumulated paths
        // and in this path.
        let shared: Vec<&String> = each_labels
            .iter()
            .filter(|l| {
                let in_acc = (0..pi).any(|ppi| !occurrences(ppi, l).is_empty());
                let here = !occurrences(pi, l).is_empty();
                in_acc && here
            })
            .collect();

        if shared.is_empty() {
            // Cross product (pure set-label sharing).
            let guard = acc.len().saturating_mul(rows.len());
            if guard > ctx.config.max_rows {
                return Err(GraqlError::exec(
                    "and-composition without a shared foreach label would exceed the row cap",
                ));
            }
            let mut next = Vec::with_capacity(guard);
            let mut ticker = ctx.guard.ticker();
            for a in &acc {
                for r in &rows {
                    ticker.tick()?;
                    let mut per_path = a.per_path.clone();
                    per_path.push(r.clone());
                    next.push(MultiBinding { per_path });
                }
            }
            if let Some(p) = ctx.obs {
                p.add_guard_ticks(ticker.checkpoints());
            }
            ctx.guard.add_bytes(32 * next.len() as u64)?;
            acc = next;
            continue;
        }

        // Hash join on the shared label instances.
        let acc_key = |mb: &MultiBinding| -> Vec<(VTypeId, u32)> {
            shared
                .iter()
                .map(|l| {
                    let (ppi, vi) = (0..pi)
                        .find_map(|ppi| occurrences(ppi, l).first().map(|&vi| (ppi, vi)))
                        .expect("label occurs in accumulated paths");
                    mb.per_path[ppi].v[vi]
                })
                .collect()
        };
        let row_key = |b: &Binding| -> Vec<(VTypeId, u32)> {
            shared
                .iter()
                .map(|l| {
                    let vi = *occurrences(pi, l).first().expect("label occurs here");
                    b.v[vi]
                })
                .collect()
        };
        // Build the hash table on the smaller side (exact cardinalities
        // beat any estimate). Emission order is acc-major either way — the
        // swapped path restores it with a pair sort — so the physical
        // choice is invisible in results.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        if acc.len() * 4 < rows.len() {
            let mut index: FxHashMap<Vec<(VTypeId, u32)>, Vec<usize>> = FxHashMap::default();
            for (ai, a) in acc.iter().enumerate() {
                index.entry(acc_key(a)).or_default().push(ai);
            }
            for (ri, r) in rows.iter().enumerate() {
                if let Some(matches) = index.get(&row_key(r)) {
                    for &ai in matches {
                        pairs.push((ai, ri));
                    }
                }
            }
            pairs.sort_unstable();
        } else {
            let mut index: FxHashMap<Vec<(VTypeId, u32)>, Vec<usize>> = FxHashMap::default();
            for (ri, r) in rows.iter().enumerate() {
                index.entry(row_key(r)).or_default().push(ri);
            }
            for (ai, a) in acc.iter().enumerate() {
                if let Some(matches) = index.get(&acc_key(a)) {
                    for &ri in matches {
                        pairs.push((ai, ri));
                    }
                }
            }
        }
        let mut next = Vec::new();
        let mut ticker = ctx.guard.ticker();
        for (ai, ri) in pairs {
            ticker.tick()?;
            let mut per_path = acc[ai].per_path.clone();
            per_path.push(rows[ri].clone());
            next.push(MultiBinding { per_path });
            if next.len() > ctx.config.max_rows {
                return Err(GraqlError::exec("joined result exceeds the row cap"));
            }
        }
        if let Some(p) = ctx.obs {
            p.add_guard_ticks(ticker.checkpoints());
        }
        ctx.guard.add_bytes(32 * next.len() as u64)?;
        acc = next;
    }

    // Cross-path binding conditions (deps spanning paths).
    let cross_conds: Vec<(usize, BindingCond)> = q
        .paths
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            p.vsteps.iter().flat_map(move |v| {
                v.binding_conds
                    .iter()
                    .filter(move |bc| bc.deps().iter().any(|a| a.path != pi))
                    .map(move |bc| (pi, bc.clone()))
            })
        })
        .collect();
    if !cross_conds.is_empty() {
        let mut out = Vec::new();
        'rows: for mb in acc {
            for (_, bc) in &cross_conds {
                if !eval_cross_cond(ctx, bc, &mb)? {
                    continue 'rows;
                }
            }
            out.push(mb);
        }
        return Ok(out);
    }
    Ok(acc)
}

fn eval_cross_cond(ctx: &ExecCtx<'_>, bc: &BindingCond, mb: &MultiBinding) -> Result<bool> {
    let value = |op: &crate::compile::BOperand| -> Result<graql_types::Value> {
        match op {
            crate::compile::BOperand::Const(v) => Ok(v.clone()),
            crate::compile::BOperand::Attr { addr, name } => {
                let (vt, idx) = mb.per_path[addr.path].v[addr.vstep];
                ctx.vattr(vt, idx, name)
            }
        }
    };
    Ok(bc.op.eval(&value(&bc.lhs)?, &value(&bc.rhs)?))
}
