//! Per-step candidate sets: Eq. 4 — `V_φ = σ_φ(V)` evaluated per candidate
//! vertex type, plus seeding from named subgraph results (Fig. 12).

use std::collections::BTreeMap;

use graql_graph::{ETypeId, VTypeId};
use graql_table::BitSet;
use graql_types::{GraqlError, Result};
use rustc_hash::FxHashMap;

use crate::compile::{CEStep, CVStep};
use crate::exec::{morsel, ExecCtx};

/// Candidate vertices of one step: a bitset per candidate type.
///
/// `BTreeMap` keeps type iteration deterministic, which keeps result row
/// order deterministic.
pub type Cand = BTreeMap<VTypeId, BitSet>;

/// Total candidate count across types.
pub fn cand_count(c: &Cand) -> usize {
    c.values().map(BitSet::count).sum()
}

/// True when no candidate survives.
pub fn cand_is_empty(c: &Cand) -> bool {
    c.values().all(BitSet::none)
}

/// Computes the local candidate set of a vertex step (domain, local
/// filters, seed restriction). The per-type predicate scan is morsel-
/// parallel above [`morsel::PAR_MIN_ITEMS`]; the hit lists concatenate in
/// morsel order, so the resulting bitset is identical to a serial scan.
pub fn local_candidates(ctx: &ExecCtx<'_>, step: &CVStep) -> Result<Cand> {
    let mut out = Cand::new();
    for &vt in &step.domain {
        let vset = ctx.graph.vset(vt);
        let n = vset.len();
        let set = match step.local.get(&vt) {
            None => BitSet::full(n),
            Some(pred) => {
                let table = ctx.vtable(vt);
                let workers = morsel::scan_workers(ctx.config.threads, n, morsel::PAR_MIN_ITEMS);
                let parts =
                    morsel::run_morsels(ctx.guard, n, morsel::MORSEL_ROWS, workers, |_, range| {
                        let mut hits: Vec<u32> = Vec::new();
                        for i in range {
                            let row = vset.mapping.rep_row(i) as usize;
                            if pred.eval_bool(table, row) {
                                hits.push(i as u32);
                            }
                        }
                        Ok(hits)
                    })?;
                let hits = morsel::concat(parts);
                BitSet::from_indices(n, hits.into_iter().map(|i| i as usize))
            }
        };
        out.insert(vt, set);
    }
    if let Some(seed) = &step.seed {
        let sg = ctx
            .result_subgraphs
            .get(seed)
            .ok_or_else(|| GraqlError::name(format!("unknown result subgraph {seed:?}")))?;
        for (vt, set) in out.iter_mut() {
            match sg.vertices_of(*vt) {
                Some(seeded) if seeded.len() == set.len() => set.intersect_with(seeded),
                Some(_) => {
                    return Err(GraqlError::exec(format!(
                        "result subgraph {seed:?} is stale: the data changed since it \
                         was captured; re-run the query that produced it"
                    )))
                }
                None => set.clear(),
            }
        }
    }
    Ok(out)
}

/// Per-edge-type filters of an edge step (only types with conditions get
/// an entry; absent = every edge passes).
pub fn edge_filters(ctx: &ExecCtx<'_>, step: &CEStep) -> Result<FxHashMap<ETypeId, BitSet>> {
    let mut out = FxHashMap::default();
    for (&et, pred) in &step.local {
        let eset = ctx.graph.eset(et);
        let table = ctx
            .storage
            .get(
                eset.assoc_table
                    .as_deref()
                    .expect("conditions imply an assoc table"),
            )
            .expect("graph views reference existing tables");
        let n = eset.len();
        let hits = (0..n as u32)
            .filter(|&e| pred.eval_bool(table, eset.assoc_rows[e as usize] as usize))
            .map(|e| e as usize);
        out.insert(et, BitSet::from_indices(n, hits));
    }
    Ok(out)
}

/// Does edge `e` of type `et` pass this edge step's filters?
#[inline]
pub fn edge_passes(filters: &FxHashMap<ETypeId, BitSet>, et: ETypeId, e: u32) -> bool {
    filters.get(&et).is_none_or(|s| s.contains(e as usize))
}
