//! Query execution: path matching and relational statements.

pub mod cand;
pub mod enumerate;
pub mod expand;
pub mod explain;
pub mod morsel;
pub mod pipeline;
pub mod query;
pub mod regex;
pub mod relational;
pub mod results;

use graql_graph::{Graph, Subgraph, VTypeId};
use graql_table::Table;
use graql_types::{GraqlError, QueryGuard, QueryProfile, Result, Value};
use rustc_hash::FxHashMap;

use crate::cond::Params;
use crate::ddl::Storage;
use crate::plan::ExecConfig;

/// Everything a query needs to execute, borrowed from the database.
pub struct ExecCtx<'a> {
    pub graph: &'a Graph,
    pub storage: &'a Storage,
    pub result_tables: &'a FxHashMap<String, std::sync::Arc<Table>>,
    pub result_subgraphs: &'a FxHashMap<String, std::sync::Arc<Subgraph>>,
    pub config: &'a ExecConfig,
    pub params: &'a Params,
    /// Governance guard for the running query: cancellation, deadline and
    /// row/byte budgets, checked cooperatively by every kernel loop.
    pub guard: &'a QueryGuard,
    /// Span recorder for `profile` / slow-query logging. `None` (the
    /// common case) keeps the instrumented kernels on the zero-overhead
    /// path — no clocks are read.
    pub obs: Option<&'a QueryProfile>,
    /// Catalog statistics (PR 6 store), when the database has computed
    /// them. Consulted only for order-neutral physical decisions — hash
    /// join build side, parallel dispatch thresholds — never for anything
    /// that changes logical enumeration order, so stale or absent stats
    /// cannot change results.
    pub stats: Option<&'a crate::catalog::CatalogStats>,
}

impl<'a> ExecCtx<'a> {
    /// Source table of a vertex type.
    pub fn vtable(&self, vt: VTypeId) -> &'a Table {
        self.storage
            .get(&self.graph.vset(vt).table)
            .map(|t| t.as_ref())
            .expect("graph views reference existing tables")
    }

    /// Attribute `name` of vertex `idx` of type `vt`.
    pub fn vattr(&self, vt: VTypeId, idx: u32, name: &str) -> Result<Value> {
        let vset = self.graph.vset(vt);
        let table = self.vtable(vt);
        let col = table.schema().require(name).map_err(|_| {
            GraqlError::name(format!(
                "vertex type {} has no attribute {name:?}",
                vset.name
            ))
        })?;
        vset.attr(table, idx, col)
    }

    /// A table by name: base storage first, then named results.
    pub fn any_table(&self, name: &str) -> Result<&'a Table> {
        self.storage
            .get(name)
            .or_else(|| self.result_tables.get(name))
            .map(|t| t.as_ref())
            .ok_or_else(|| GraqlError::name(format!("unknown table {name:?}")))
    }
}
