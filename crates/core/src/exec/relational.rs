//! `select … from table` execution — the Table-1 relational operations
//! (selection, projection, order by, group by, distinct, the aggregates,
//! top n, aliasing).

use graql_parser::ast::{self, AggCall, SelectExpr, SelectTargets};
use graql_table::ops::{self, AggFn, AggSpec, SortKey};
use graql_table::{PhysExpr, Table, TableSchema};
use graql_types::obs::{obs_record_rows, obs_start, Stage};
use graql_types::{GraqlError, Result};

use crate::cond::compile_single_table;
use crate::exec::{morsel, ExecCtx};

/// Executes a table-sourced select statement.
pub fn execute_table_select(ctx: &ExecCtx<'_>, sel: &ast::SelectStmt) -> Result<Table> {
    let ast::SelectSource::Table(table_name) = &sel.source else {
        return Err(GraqlError::exec("internal: not a table select"));
    };
    let base = ctx.any_table(table_name)?;

    // 1. Selection.
    let filtered: Table = match &sel.where_clause {
        Some(w) => {
            let pred = compile_single_table(w, base.schema(), &[table_name.as_str()], ctx.params)?;
            filter_stage(ctx, base, &pred)?
        }
        None => base.clone(),
    };

    let col_index = |c: &ast::ColRef, schema: &TableSchema| -> Result<usize> {
        if let Some(q) = &c.qualifier {
            if q != table_name {
                return Err(GraqlError::name(format!(
                    "unknown qualifier {q:?}; the table is {table_name:?}"
                )));
            }
        }
        schema.require(&c.name)
    };

    // 2. Projection / aggregation.
    let mut out = match &sel.targets {
        SelectTargets::Star => {
            if !sel.group_by.is_empty() {
                return Err(GraqlError::type_error("'select *' cannot be grouped"));
            }
            filtered
        }
        SelectTargets::Items(items) => {
            let has_aggs = sel.has_aggregates();
            if has_aggs || !sel.group_by.is_empty() {
                aggregate_projection(ctx, &filtered, sel, items, &col_index)?
            } else {
                let span = obs_start(ctx.obs);
                let projected = plain_projection(&filtered, items, &col_index)?;
                obs_record_rows(
                    ctx.obs,
                    Stage::Project,
                    span,
                    filtered.n_rows() as u64,
                    projected.n_rows() as u64,
                );
                projected
            }
        }
    };

    // 3. Distinct.
    if sel.distinct {
        out = ops::distinct_profiled(&out, ctx.guard, ctx.obs)?;
    }

    // 4. Order by (over the *output* schema, so aliases work — Fig. 6's
    //    `order by groupCount desc`).
    if !sel.order_by.is_empty() {
        let keys = sel
            .order_by
            .iter()
            .map(|k| {
                let col = out.schema().require(&k.col.name).map_err(|_| {
                    GraqlError::name(format!(
                        "'order by' column {:?} is not in the select output",
                        k.col.name
                    ))
                })?;
                Ok(SortKey { col, desc: k.desc })
            })
            .collect::<Result<Vec<_>>>()?;
        out = sort_stage(ctx, &out, &keys)?;
    }

    // 5. Top n.
    if let Some(n) = sel.top {
        out = ops::top_n_profiled(&out, n as usize, ctx.obs);
    }
    ctx.guard.add_rows(out.n_rows() as u64)?;
    Ok(out)
}

/// Selection as a morsel-parallel columnar scan: each morsel sweeps its
/// row range through the typed batch kernel
/// ([`PhysExpr::eval_range_into`]); hit lists concatenate in morsel order,
/// so the gathered output matches `ops::filter_guarded` byte for byte.
fn filter_stage(ctx: &ExecCtx<'_>, base: &Table, pred: &PhysExpr) -> Result<Table> {
    let span = obs_start(ctx.obs);
    let n = base.n_rows();
    let workers = morsel::scan_workers(ctx.config.threads, n, morsel::PAR_MIN_ITEMS);
    let parts = morsel::run_morsels(ctx.guard, n, morsel::MORSEL_ROWS, workers, |_, range| {
        let mut hits: Vec<u32> = Vec::new();
        pred.eval_range_into(base, range.start as u32, range.end as u32, &mut hits);
        Ok(hits)
    })?;
    let idx = morsel::concat(parts);
    ctx.guard.add_bytes(4 * idx.len() as u64)?;
    let out = base.gather(&idx);
    ctx.guard.add_bytes(out.approx_bytes())?;
    obs_record_rows(ctx.obs, Stage::Filter, span, n as u64, out.n_rows() as u64);
    Ok(out)
}

/// `order by` with morsel-parallel run formation: each worker sorts a
/// contiguous run with the shared comparator ([`ops::cmp_rows`], which
/// tie-breaks on row index and is therefore a strict total order), then
/// pairwise merges reassemble the single globally-sorted index — the
/// exact sequence `ops::sort_indices` produces. Small inputs delegate to
/// the serial kernel.
fn sort_stage(ctx: &ExecCtx<'_>, t: &Table, keys: &[SortKey]) -> Result<Table> {
    const SORT_PAR_MIN: usize = 8192;
    let n = t.n_rows();
    let workers = morsel::scan_workers(ctx.config.threads, n, SORT_PAR_MIN);
    if workers <= 1 {
        return ops::sort_profiled(t, keys, ctx.guard, ctx.obs);
    }
    let span = obs_start(ctx.obs);
    let morsel_size = n.div_ceil(workers * 2).max(1);
    let mut runs = morsel::run_morsels(ctx.guard, n, morsel_size, workers, |_, range| {
        let mut idx: Vec<u32> = (range.start as u32..range.end as u32).collect();
        idx.sort_unstable_by(|&a, &b| ops::cmp_rows(t, keys, a, b));
        Ok(idx)
    })?;
    while runs.len() > 1 {
        ctx.guard.check()?;
        let mut merged: Vec<Vec<u32>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => merged.push(merge_runs(t, keys, a, b)),
                None => merged.push(a),
            }
        }
        runs = merged;
    }
    let idx = runs.pop().unwrap_or_default();
    ctx.guard.add_bytes(4 * idx.len() as u64)?;
    ctx.guard.check()?;
    let out = t.gather(&idx);
    ctx.guard.add_bytes(out.approx_bytes())?;
    obs_record_rows(ctx.obs, Stage::Sort, span, n as u64, out.n_rows() as u64);
    Ok(out)
}

fn merge_runs(t: &Table, keys: &[SortKey], a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if ops::cmp_rows(t, keys, a[i], b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn plain_projection(
    t: &Table,
    items: &[ast::SelectItem],
    col_index: &dyn Fn(&ast::ColRef, &TableSchema) -> Result<usize>,
) -> Result<Table> {
    let mut cols = Vec::new();
    let mut names: Vec<Option<String>> = Vec::new();
    for item in items {
        let SelectExpr::Col(c) = &item.expr else {
            unreachable!("aggregate path handled separately")
        };
        cols.push(col_index(c, t.schema())?);
        names.push(item.alias.clone());
    }
    let mut out = ops::project(t, &cols);
    // Apply aliases.
    let final_names: Vec<String> = out
        .schema()
        .columns()
        .iter()
        .zip(&names)
        .map(|(def, alias)| alias.clone().unwrap_or_else(|| def.name.clone()))
        .collect();
    let refs: Vec<&str> = final_names.iter().map(String::as_str).collect();
    out = ops::rename(&out, &refs)?;
    Ok(out)
}

fn aggregate_projection(
    ctx: &ExecCtx<'_>,
    t: &Table,
    sel: &ast::SelectStmt,
    items: &[ast::SelectItem],
    col_index: &dyn Fn(&ast::ColRef, &TableSchema) -> Result<usize>,
) -> Result<Table> {
    let group_cols: Vec<usize> = sel
        .group_by
        .iter()
        .map(|c| col_index(c, t.schema()))
        .collect::<Result<_>>()?;

    // Build the aggregate kernel call and remember how to assemble the
    // select-list order afterwards.
    enum Slot {
        Group(usize), // index into group_cols
        Agg(usize),   // index into aggs
    }
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut slots: Vec<(Slot, Option<String>)> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match &item.expr {
            SelectExpr::Col(c) => {
                let ci = col_index(c, t.schema())?;
                let gi = group_cols.iter().position(|&g| g == ci).ok_or_else(|| {
                    GraqlError::type_error(format!(
                        "column {:?} must appear in 'group by' or inside an aggregate",
                        c.name
                    ))
                })?;
                slots.push((Slot::Group(gi), item.alias.clone()));
            }
            SelectExpr::Agg(a) => {
                let func = match a {
                    AggCall::CountStar => AggFn::CountStar,
                    AggCall::Count(c) => AggFn::Count(col_index(c, t.schema())?),
                    AggCall::Sum(c) => AggFn::Sum(col_index(c, t.schema())?),
                    AggCall::Avg(c) => AggFn::Avg(col_index(c, t.schema())?),
                    AggCall::Min(c) => AggFn::Min(col_index(c, t.schema())?),
                    AggCall::Max(c) => AggFn::Max(col_index(c, t.schema())?),
                };
                let out_name = item.alias.clone().unwrap_or_else(|| format!("agg_{i}"));
                slots.push((Slot::Agg(aggs.len()), item.alias.clone()));
                aggs.push(AggSpec::new(func, out_name));
            }
        }
    }
    let grouped = ops::group_aggregate_profiled(t, &group_cols, &aggs, ctx.guard, ctx.obs)?;
    // group_aggregate lays out group columns first, then aggregates; remap
    // to the select-list order with aliases.
    let n_groups = group_cols.len();
    let order: Vec<usize> = slots
        .iter()
        .map(|(s, _)| match s {
            Slot::Group(gi) => *gi,
            Slot::Agg(ai) => n_groups + ai,
        })
        .collect();
    let mut out = ops::project(&grouped, &order);
    let names: Vec<String> = slots
        .iter()
        .zip(out.schema().columns())
        .map(|((_, alias), def)| alias.clone().unwrap_or_else(|| def.name.clone()))
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    out = ops::rename(&out, &refs)?;
    Ok(out)
}
