//! Query plan explanation: a textual rendering of the §III-B planning
//! decisions — per-step candidate counts before and after culling, the
//! traversal direction of each hop over the bidirectional index, and the
//! chosen enumeration order.

use std::fmt::Write as _;

use graql_parser::ast::{self, Dir};
use graql_types::{GraqlError, Result};

use crate::compile::{CLink, CPath};
use crate::exec::cand::cand_count;
use crate::exec::query::run_query;
use crate::exec::ExecCtx;
use crate::plan::choose_order;

/// Renders the execution plan of a graph select.
pub fn explain_graph_select(ctx: &ExecCtx<'_>, sel: &ast::SelectStmt) -> Result<String> {
    let ast::SelectSource::Graph(comp) = &sel.source else {
        return Err(GraqlError::exec("internal: not a graph select"));
    };
    let mut out = String::new();
    let branches = crate::compile::or_branches(comp)?;
    for (bi, branch) in branches.iter().enumerate() {
        if branches.len() > 1 {
            let _ = writeln!(out, "or-branch {bi}:");
        }
        // Set-level run (no bindings) gives the culled candidate counts.
        let qr = run_query(ctx, branch, false)?;
        for (pi, p) in qr.cquery.paths.iter().enumerate() {
            let _ = writeln!(out, "  path {pi}:");
            for (vi, v) in p.vsteps.iter().enumerate() {
                let culled = cand_count(&qr.cands[pi][vi]);
                let types: Vec<&str> = v
                    .domain
                    .iter()
                    .map(|&vt| ctx.graph.vset(vt).name.as_str())
                    .collect();
                let label = match (&v.label_def, &v.label_ref) {
                    (Some((k, n)), _) => format!(" [{k:?} label {n}]"),
                    (_, Some(n)) => format!(" [ref {n}]"),
                    _ => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    v{vi} {} :: {{{}}}{} — {} candidates after culling",
                    v.display,
                    types.join(", "),
                    label,
                    culled
                );
                if vi < p.links.len() {
                    let _ = writeln!(out, "    {}", describe_link(ctx, p, vi));
                }
            }
            let counts: Vec<usize> = qr.cands[pi].iter().map(cand_count).collect();
            let order = choose_order(&counts, ctx.config.plan_mode);
            let _ = writeln!(
                out,
                "    enumeration order ({:?}): {:?}",
                ctx.config.plan_mode, order
            );
        }
    }
    Ok(out)
}

fn describe_link(ctx: &ExecCtx<'_>, p: &CPath, li: usize) -> String {
    match &p.links[li] {
        CLink::Edge(e) => {
            let names: Vec<&str> = match &e.domain {
                Some(d) => d
                    .iter()
                    .map(|&et| ctx.graph.eset(et).name.as_str())
                    .collect(),
                None => vec!["[]"],
            };
            let (arrow, index) = match e.dir {
                Dir::Out => ("--%-->", "forward index"),
                Dir::In => ("<--%--", "reverse index"),
            };
            format!(
                "{} via {} ({})",
                arrow.replace('%', &names.join("|")),
                index,
                if e.local.is_empty() {
                    "no edge filter"
                } else {
                    "filtered"
                }
            )
        }
        CLink::Group(g) => format!(
            "{{ {} hops }} repeated {}..={} (set-level BFS)",
            g.hops.len(),
            g.lo,
            g.hi
        ),
    }
}
