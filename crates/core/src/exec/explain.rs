//! Query plan explanation: a textual rendering of the §III-B planning
//! decisions — per-step candidate counts before and after culling, the
//! traversal direction of each hop over the bidirectional index, the
//! chosen enumeration order, and (when catalog statistics are available)
//! per-operator estimated row counts.

use std::fmt::Write as _;

use graql_parser::ast::{self, Dir};
use graql_types::{GraqlError, Result};

use crate::analysis::cost;
use crate::catalog::CatalogStats;
use crate::compile::{CLink, CPath, CVStep};
use crate::exec::cand::cand_count;
use crate::exec::query::run_query;
use crate::exec::ExecCtx;
use crate::plan::choose_order;

/// Exponent cap when estimating a repeated group (mirrors
/// [`cost::estimate_paths`]'s treatment).
const GROUP_DEPTH_CAP: u32 = 8;

/// Renders the execution plan of a graph select.
pub fn explain_graph_select(
    ctx: &ExecCtx<'_>,
    stats: Option<&CatalogStats>,
    sel: &ast::SelectStmt,
) -> Result<String> {
    let ast::SelectSource::Graph(comp) = &sel.source else {
        return Err(GraqlError::exec("internal: not a graph select"));
    };
    // Estimates need the graph sections of the statistics store.
    let stats = stats.filter(|s| s.graph_complete);
    let mut out = String::new();
    let branches = crate::compile::or_branches(comp)?;
    for (bi, branch) in branches.iter().enumerate() {
        if branches.len() > 1 {
            let _ = writeln!(out, "or-branch {bi}:");
        }
        // Set-level run (no bindings) gives the culled candidate counts.
        let qr = run_query(ctx, branch, false)?;
        for (pi, p) in qr.cquery.paths.iter().enumerate() {
            let _ = writeln!(out, "  path {pi}:");
            let mut flow = stats.map(|st| vstep_estimate(ctx, st, &p.vsteps[0]));
            for (vi, v) in p.vsteps.iter().enumerate() {
                let culled = cand_count(&qr.cands[pi][vi]);
                let types: Vec<&str> = v
                    .domain
                    .iter()
                    .map(|&vt| ctx.graph.vset(vt).name.as_str())
                    .collect();
                let label = match (&v.label_def, &v.label_ref) {
                    (Some((k, n)), _) => format!(" [{k:?} label {n}]"),
                    (_, Some(n)) => format!(" [ref {n}]"),
                    _ => String::new(),
                };
                let est = match (stats, vi) {
                    (Some(st), 0) => {
                        format!(", est ~{} rows", cost::fmt_rows(vstep_estimate(ctx, st, v)))
                    }
                    (Some(_), _) => match flow {
                        Some(f) => format!(", est ~{} rows", cost::fmt_rows(f)),
                        None => String::new(),
                    },
                    _ => String::new(),
                };
                let _ = writeln!(
                    out,
                    "    v{vi} {} :: {{{}}}{} — {} candidates after culling{}",
                    v.display,
                    types.join(", "),
                    label,
                    culled,
                    est
                );
                if vi < p.links.len() {
                    if let (Some(st), Some(f)) = (stats, flow.as_mut()) {
                        *f = link_estimate(ctx, st, &p.links[vi], *f)
                            * vstep_selectivity(ctx, st, &p.vsteps[vi + 1]);
                    }
                    let link_est = match (stats, flow) {
                        (Some(_), Some(f)) => format!(", est ~{} rows out", cost::fmt_rows(f)),
                        _ => String::new(),
                    };
                    let _ = writeln!(out, "    {}{}", describe_link(ctx, p, vi), link_est);
                }
            }
            let counts: Vec<usize> = qr.cands[pi].iter().map(cand_count).collect();
            let order = choose_order(&counts, ctx.config.plan_mode);
            let _ = writeln!(
                out,
                "    enumeration order ({:?}): {:?}",
                ctx.config.plan_mode, order
            );
        }
    }
    Ok(out)
}

/// Standalone estimate for a vertex step: per-type vertex counts scaled by
/// the selectivity of the step's local predicate against the type's
/// backing table.
fn vstep_estimate(ctx: &ExecCtx<'_>, stats: &CatalogStats, v: &CVStep) -> f64 {
    let mut est = 0.0;
    for &vt in &v.domain {
        let vset = ctx.graph.vset(vt);
        let count = stats.vertex_count(&vset.name).unwrap_or(0) as f64;
        let sel = match v.local.get(&vt) {
            Some(pred) => match ctx.storage.get(&vset.table) {
                Some(table) => cost::phys_selectivity(
                    table.schema(),
                    stats.tables.get(&vset.table).map(|c| &**c),
                    pred,
                ),
                None => 0.5,
            },
            None => 1.0,
        };
        est += count * sel;
    }
    est
}

/// Mean local-predicate selectivity of a step (1.0 when unfiltered),
/// applied to rows flowing *into* the step from a link.
fn vstep_selectivity(ctx: &ExecCtx<'_>, stats: &CatalogStats, v: &CVStep) -> f64 {
    if v.local.is_empty() {
        return 1.0;
    }
    let mut total = 0.0;
    for &vt in &v.domain {
        let vset = ctx.graph.vset(vt);
        total += match v.local.get(&vt) {
            Some(pred) => match ctx.storage.get(&vset.table) {
                Some(table) => cost::phys_selectivity(
                    table.schema(),
                    stats.tables.get(&vset.table).map(|c| &**c),
                    pred,
                ),
                None => 0.5,
            },
            None => 1.0,
        };
    }
    total / v.domain.len().max(1) as f64
}

/// Degree-based expansion of one edge traversal (summed over the
/// candidate edge types, in the traversal direction).
fn edge_expansion(ctx: &ExecCtx<'_>, stats: &CatalogStats, e: &crate::compile::CEStep) -> f64 {
    let names: Vec<&str> = match &e.domain {
        Some(d) => d
            .iter()
            .map(|&et| ctx.graph.eset(et).name.as_str())
            .collect(),
        None => ctx
            .graph
            .etype_ids()
            .map(|et| ctx.graph.eset(et).name.as_str())
            .collect(),
    };
    let mut expansion = 0.0;
    for n in names {
        if let Some((mean_out, mean_in)) = stats.mean_degrees(n) {
            expansion += match e.dir {
                Dir::Out => mean_out,
                Dir::In => mean_in,
            };
        }
    }
    if e.local.is_empty() {
        expansion
    } else {
        expansion / 3.0
    }
}

fn link_estimate(ctx: &ExecCtx<'_>, stats: &CatalogStats, link: &CLink, flow: f64) -> f64 {
    match link {
        CLink::Edge(e) => flow * edge_expansion(ctx, stats, e),
        CLink::Group(g) => {
            let mut per_iter = 1.0;
            for (e, v) in &g.hops {
                per_iter *= edge_expansion(ctx, stats, e);
                per_iter *= vstep_selectivity(ctx, stats, v);
            }
            let depth = g.hi.min(GROUP_DEPTH_CAP.max(g.lo));
            flow * per_iter.max(1.0).powi(depth as i32)
        }
    }
}

fn describe_link(ctx: &ExecCtx<'_>, p: &CPath, li: usize) -> String {
    match &p.links[li] {
        CLink::Edge(e) => {
            let names: Vec<&str> = match &e.domain {
                Some(d) => d
                    .iter()
                    .map(|&et| ctx.graph.eset(et).name.as_str())
                    .collect(),
                None => vec!["[]"],
            };
            let (arrow, index) = match e.dir {
                Dir::Out => ("--%-->", "forward index"),
                Dir::In => ("<--%--", "reverse index"),
            };
            format!(
                "{} via {} ({})",
                arrow.replace('%', &names.join("|")),
                index,
                if e.local.is_empty() {
                    "no edge filter"
                } else {
                    "filtered"
                }
            )
        }
        CLink::Group(g) => format!(
            "{{ {} hops }} repeated {}..={} (set-level BFS)",
            g.hops.len(),
            g.lo,
            g.hi
        ),
    }
}
