//! IR-level static analysis over compiled query structure (§III-A, Fig. 8).
//!
//! This module layers three passes above the pure catalog checks in
//! [`crate::analyze`]:
//!
//! * [`dataflow`] — typed dataflow over per-binding domains: vertex-type
//!   narrowing along edge definitions, interval analysis over step and
//!   `where` predicates (value ranges + nullability), and satisfiability
//!   verdicts. Emits the IR-level diagnostics `W0206` (dead pattern
//!   branch), `W0207` (contradictory range), `W0208` (tautological
//!   predicate) and `H0203` (statistics-estimated large intermediate).
//! * [`rewrite`] — semantics-preserving plan rewrites: constant folding,
//!   predicate simplification, dead `or`-branch elimination, unused-label
//!   elimination and `and`/`or` composition flattening. Every rewrite is
//!   required to produce byte-identical results to the original statement;
//!   the soundness rules (null comparison semantics, parameter and group
//!   preservation) are documented on [`rewrite::rewrite_select`].
//! * [`cost`] — catalog-statistics-backed cardinality estimation used to
//!   annotate `explain` plans with per-operator row estimates and to back
//!   the `H0203` large-plan hint. Estimates read the persistent
//!   [`crate::catalog::CatalogStats`] store (per-type cardinalities,
//!   degree means, per-column NDV).
//!
//! The passes run at two points: `check` runs dataflow for diagnostics
//! (never building the graph), and the execution/`explain` paths run the
//! rewriter (gated by [`crate::plan::ExecConfig::rewrite`]) followed by
//! cost annotation.

pub mod cost;
pub mod dataflow;
pub mod rewrite;

pub use cost::LARGE_PLAN_THRESHOLD;
pub use rewrite::{rewrite_select, Rewritten};
