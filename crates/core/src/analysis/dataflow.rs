//! Typed dataflow over per-binding domains.
//!
//! For every select (and `profile`) statement this pass infers, per
//! binding step, a *domain*: the set of vertex types the step can match
//! and, per attribute, the value interval its conditions admit. Nullability
//! is folded into the interval rules — every comparison evaluates to
//! `false` on a null attribute, so a contradiction between comparisons is
//! a contradiction for null rows too, which is what makes the verdicts
//! here safe for the rewriter to act on.
//!
//! Emitted diagnostics:
//!
//! * `W0207` — a conjunction constrains one attribute to an empty value
//!   range (`price > 50 and price < 10`): the predicate never passes.
//! * `W0208` — a predicate folds to constant `true`: it never filters.
//! * `W0206` — an `or`-branch (or a whole pattern) whose step conditions
//!   make it unsatisfiable: a dead pattern branch.
//! * `H0203` — catalog statistics estimate an operator's intermediate
//!   result above [`super::cost::LARGE_PLAN_THRESHOLD`] rows.

use graql_parser::ast::{self, Expr, Lit, Operand, PathComposition, SelectSource};
use graql_types::{codes, CmpOp, Diagnostic, Diagnostics, Value};

use crate::catalog::{Catalog, CatalogStats};
use crate::cond::{lit_value, Params};

use super::cost;
use super::rewrite::{self, Simp};

// ---------------------------------------------------------------------------
// Interval analysis (value ranges per attribute)
// ---------------------------------------------------------------------------

/// An attribute whose admitted value range is empty.
pub(crate) struct Contradiction {
    /// Display name of the attribute (`qualifier.name` or bare name).
    pub attr: String,
    /// True when an ordered bound (`<`, `<=`, `>`, `>=`) or a `!=`
    /// exclusion participates — the cases the equality-only lint `W0203`
    /// cannot see.
    pub has_bound: bool,
}

#[derive(Default)]
struct Range {
    eq: Option<Value>,
    ne: Vec<Value>,
    /// Lower bound `(value, strict)`.
    low: Option<(Value, bool)>,
    /// Upper bound `(value, strict)`.
    high: Option<(Value, bool)>,
    has_bound: bool,
    /// Two distinct (but comparable) `=` constants — `W0203` territory.
    eq_conflict: bool,
}

impl Range {
    fn tighten_low(&mut self, v: Value, strict: bool) {
        self.has_bound = true;
        let replace = match &self.low {
            None => true,
            Some((cur, cur_strict)) => match v.sem_cmp(cur) {
                Some(std::cmp::Ordering::Greater) => true,
                Some(std::cmp::Ordering::Equal) => strict && !cur_strict,
                _ => false,
            },
        };
        if replace {
            self.low = Some((v, strict));
        }
    }

    fn tighten_high(&mut self, v: Value, strict: bool) {
        self.has_bound = true;
        let replace = match &self.high {
            None => true,
            Some((cur, cur_strict)) => match v.sem_cmp(cur) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Equal) => strict && !cur_strict,
                _ => false,
            },
        };
        if replace {
            self.high = Some((v, strict));
        }
    }

    /// True when no value can satisfy every recorded constraint.
    /// Incomparable pairs (type mismatches) never count: compilation
    /// reports those as errors and we must not claim emptiness.
    fn is_empty(&self) -> (bool, bool) {
        if self.eq_conflict {
            return (true, false);
        }
        if let Some(eq) = &self.eq {
            if self.ne.iter().any(|n| eq.sem_eq(n)) {
                return (true, true);
            }
            if let Some((lo, strict)) = &self.low {
                match eq.sem_cmp(lo) {
                    Some(std::cmp::Ordering::Less) => return (true, true),
                    Some(std::cmp::Ordering::Equal) if *strict => return (true, true),
                    _ => {}
                }
            }
            if let Some((hi, strict)) = &self.high {
                match eq.sem_cmp(hi) {
                    Some(std::cmp::Ordering::Greater) => return (true, true),
                    Some(std::cmp::Ordering::Equal) if *strict => return (true, true),
                    _ => {}
                }
            }
        }
        if let (Some((lo, ls)), Some((hi, hs))) = (&self.low, &self.high) {
            match lo.sem_cmp(hi) {
                Some(std::cmp::Ordering::Greater) => return (true, true),
                Some(std::cmp::Ordering::Equal) if *ls || *hs => return (true, true),
                _ => {}
            }
        }
        (false, self.has_bound)
    }
}

/// Checks the direct conjuncts of an `and` for an attribute whose value
/// range is empty. Only `attr <op> literal` conjuncts (either orientation,
/// parameters excluded) contribute; everything else is ignored, which
/// keeps the verdict conservative: a reported contradiction holds for
/// every row, null attributes included.
pub(crate) fn and_contradiction(parts: &[Expr]) -> Option<Contradiction> {
    let mut ranges: Vec<((Option<String>, String), Range)> = Vec::new();
    let params = Params::default();
    for p in parts {
        let Expr::Cmp { op, lhs, rhs, .. } = p else {
            continue;
        };
        let (attr, op, lit) = match (lhs, rhs) {
            (Operand::Attr { qualifier, name }, Operand::Lit(l)) if !matches!(l, Lit::Param(_)) => {
                ((qualifier.clone(), name.clone()), *op, l)
            }
            (Operand::Lit(l), Operand::Attr { qualifier, name }) if !matches!(l, Lit::Param(_)) => {
                ((qualifier.clone(), name.clone()), op.flip(), l)
            }
            _ => continue,
        };
        let v = lit_value(lit, &params).expect("non-param literal");
        let range = match ranges.iter_mut().find(|(k, _)| *k == attr) {
            Some((_, r)) => r,
            None => {
                ranges.push((attr, Range::default()));
                &mut ranges.last_mut().unwrap().1
            }
        };
        match op {
            CmpOp::Eq => {
                if let Some(prev) = &range.eq {
                    // Two different constants: keep the analysis honest
                    // about incomparables (sem_eq is false for them, but
                    // sem_cmp None means a type error — skip the claim).
                    if prev.sem_cmp(&v).is_some() && !prev.sem_eq(&v) {
                        range.eq_conflict = true;
                    }
                }
                range.eq = Some(v);
            }
            CmpOp::Ne => range.ne.push(v),
            CmpOp::Lt => range.tighten_high(v, true),
            CmpOp::Le => range.tighten_high(v, false),
            CmpOp::Gt => range.tighten_low(v, true),
            CmpOp::Ge => range.tighten_low(v, false),
        }
    }
    for ((qualifier, name), range) in &ranges {
        let (empty, has_bound) = range.is_empty();
        if empty {
            let attr = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            };
            return Some(Contradiction { attr, has_bound });
        }
    }
    None
}

// ---------------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------------

/// Runs the dataflow diagnostics over every select in the script.
pub(crate) fn run(
    work: &Catalog,
    script: &ast::Script,
    stats: Option<&CatalogStats>,
    sink: &mut Diagnostics,
) {
    for stmt in &script.statements {
        let Some(sel) = stmt.as_select() else {
            continue;
        };
        if let Some(w) = &sel.where_clause {
            check_expr(w, "`where` clause", sink);
        }
        let SelectSource::Graph(comp) = &sel.source else {
            continue;
        };

        let branches: Vec<&PathComposition> = match comp {
            PathComposition::Or(parts) => parts.iter().collect(),
            other => vec![other],
        };
        let many = branches.len() > 1;
        for branch in &branches {
            for_each_branch_cond(branch, &mut |cond| {
                check_expr(cond, "step condition", sink);
            });
            if rewrite::branch_is_dead(branch) {
                let span = branch
                    .paths()
                    .first()
                    .map(|p| p.head.span)
                    .unwrap_or_default();
                let what = if many { "`or`-branch" } else { "pattern" };
                sink.push(
                    Diagnostic::warning(
                        codes::DEAD_BRANCH,
                        format!("this {what} can never match: a step condition is always false"),
                        span,
                    )
                    .with_note(if many {
                        "the branch contributes no rows; the optimizer removes it".to_string()
                    } else {
                        "the statement always returns an empty result".to_string()
                    }),
                );
            }
        }

        // Statistics-backed cardinality bounds (H0203). Only meaningful
        // once the graph sections of the catalog statistics exist.
        if let Some(st) = stats.filter(|s| s.graph_complete) {
            'branches: for branch in &branches {
                let paths: Vec<&ast::PathQuery> = branch.paths();
                for (desc, rows) in cost::estimate_paths(work, st, &paths) {
                    if rows > cost::LARGE_PLAN_THRESHOLD {
                        sink.push(
                            Diagnostic::hint(
                                codes::COSTLY_TRAVERSAL,
                                format!(
                                    "catalog statistics estimate ~{} intermediate rows at {desc}",
                                    cost::fmt_rows(rows)
                                ),
                                sel.span,
                            )
                            .with_note(
                                "consider tighter step conditions, a bounded quantifier, or a \
                                 more selective start step",
                            ),
                        );
                        break 'branches;
                    }
                }
            }
        }
    }
}

/// Tautology + empty-range checks over one condition expression.
fn check_expr(e: &Expr, what: &str, sink: &mut Diagnostics) {
    // W0208: the whole predicate folds to constant true.
    let mut ignored = false;
    if matches!(rewrite::simplify(e, &mut ignored), Simp::True) {
        sink.push(
            Diagnostic::warning(
                codes::ALWAYS_TRUE,
                format!("this {what} is always true: it never filters anything"),
                e.span(),
            )
            .with_note("the optimizer drops it; remove it for clarity"),
        );
        return;
    }
    // W0207: walk every `and` node for an attribute with an empty range.
    walk_ands(e, &mut |parts, span| {
        if let Some(c) = and_contradiction(parts) {
            if c.has_bound {
                sink.push(
                    Diagnostic::warning(
                        codes::CONTRADICTORY_RANGE,
                        format!(
                            "conditions on '{}' admit no value: the conjunction is always false",
                            c.attr
                        ),
                        span,
                    )
                    .with_note("null attributes fail every comparison, so no row can pass"),
                );
            }
        }
    });
}

fn walk_ands(e: &Expr, f: &mut impl FnMut(&[Expr], graql_types::Span)) {
    match e {
        Expr::And(parts) => {
            f(parts, e.span());
            parts.iter().for_each(|p| walk_ands(p, f));
        }
        Expr::Or(parts) => parts.iter().for_each(|p| walk_ands(p, f)),
        Expr::Not(inner) => walk_ands(inner, f),
        Expr::Cmp { .. } => {}
    }
}

fn for_each_branch_cond(comp: &PathComposition, f: &mut impl FnMut(&Expr)) {
    fn vstep(v: &ast::VertexStep, f: &mut impl FnMut(&Expr)) {
        if let Some(c) = &v.cond {
            f(c);
        }
    }
    for path in comp.paths() {
        vstep(&path.head, f);
        for seg in &path.segments {
            match seg {
                ast::Segment::Hop { edge, vertex } => {
                    if let Some(c) = &edge.cond {
                        f(c);
                    }
                    vstep(vertex, f);
                }
                ast::Segment::Group { hops, exit, .. } => {
                    for (edge, vertex) in hops {
                        if let Some(c) = &edge.cond {
                            f(c);
                        }
                        vstep(vertex, f);
                    }
                    if let Some(v) = exit {
                        vstep(v, f);
                    }
                }
            }
        }
    }
}
