//! Semantics-preserving rewrites over the checked query AST (Fig. 8).
//!
//! Every pass here must keep the rewritten statement *byte-identical in
//! output* to the original under GraQL's evaluation rules, which are
//! SQL-flavoured about nulls:
//!
//! * `a = b` is false when either side is null, `a != b` is false when
//!   either side is null, and ordered comparisons are false when either
//!   side is null. Consequently `x = x` is **not** a tautology (a null
//!   attribute makes it false), while `x < x`, `x > x` and `x != x` *are*
//!   contradictions. Only constant/constant comparisons can ever be folded
//!   to `true`.
//! * `not` inverts the post-null verdict, so `not (a < b)` is **not**
//!   `a >= b`; negations are never pushed through comparisons, only
//!   `not not x → x` and negation of folded constants are rewritten.
//! * `%param%` literals bind (and may fail to bind) at execution; any
//!   subtree containing a parameter is preserved verbatim so that unbound
//!   parameter errors surface exactly as before. A folded `true`/`false`
//!   verdict therefore only ever derives from parameter-free subtrees.
//! * Constant folding also requires both literal types to be known and
//!   comparable, so type errors that compilation would report are never
//!   masked by folding the comparison away first.
//! * Dead `or`-branch elimination only removes branches whose own step
//!   conditions fold to `false`; branches whose *type domain* is empty are
//!   left alone because compilation reports those as errors at runtime.
//!   A dropped branch must also be parameter-free and contain no path
//!   regex group, and at least one branch is always kept.

use graql_parser::ast::{
    self, Expr, LabelKind, Lit, Operand, PathComposition, Segment, SelectSource, SelectStmt,
    SelectTargets, StepName,
};
use graql_types::{CmpOp, Span};

use crate::cond::{lit_type, lit_value, Params};

use super::dataflow;

/// Outcome of [`rewrite_select`]: the rewritten statement plus the names
/// of the passes that changed it (surfaced by `explain`).
#[derive(Debug, Clone)]
pub struct Rewritten {
    pub sel: SelectStmt,
    pub passes: Vec<&'static str>,
}

/// Applies all rewrite passes to a select statement. Returns `None` when
/// no pass changed anything (callers then execute the original, avoiding
/// the clone).
///
/// A read-only pre-scan (`would_rewrite`) decides whether any pass
/// could fire, so the common case — a statement with nothing to rewrite,
/// on the per-query execute path — costs a pointer walk and no
/// allocation.
pub fn rewrite_select(sel: &SelectStmt) -> Option<Rewritten> {
    if !would_rewrite(sel) {
        // The pre-scan may over-approximate (a hit that no pass acts
        // on is harmless) but must never miss a rewrite. Probe under
        // debug so the whole test suite — including the oracle corpus
        // and the equivalence proptests — guards the two against
        // drifting apart.
        #[cfg(debug_assertions)]
        {
            let mut probe = sel.clone();
            let fired = flatten_composition(&mut probe)
                | fold_predicates(&mut probe)
                | prune_dead_branches(&mut probe)
                | drop_unused_labels(&mut probe);
            debug_assert!(!fired, "rewrite pre-scan missed a change on: {sel}");
        }
        return None;
    }
    let mut out = sel.clone();
    let mut passes = Vec::new();

    if flatten_composition(&mut out) {
        passes.push("flatten-composition");
    }
    if fold_predicates(&mut out) {
        passes.push("fold-predicates");
    }
    if prune_dead_branches(&mut out) {
        passes.push("prune-dead-branches");
    }
    if drop_unused_labels(&mut out) {
        passes.push("drop-unused-labels");
    }

    if passes.is_empty() {
        None
    } else {
        Some(Rewritten { sel: out, passes })
    }
}

// ---------------------------------------------------------------------------
// Read-only pre-scan
// ---------------------------------------------------------------------------

/// True when some rewrite pass would change `sel`. Mirrors each pass's
/// change triggers without mutating or cloning anything; where the exact
/// decision needs pass-side work it over-approximates (returns `true`),
/// never the reverse. Dead-branch pruning needs no case of its own: a
/// branch is only prunable when one of its conditions folds to `false`,
/// which the fold scan already detects on the original expression.
fn would_rewrite(sel: &SelectStmt) -> bool {
    if sel.where_clause.as_ref().is_some_and(expr_would_simplify) || has_unused_set_label(sel) {
        return true;
    }
    if let SelectSource::Graph(comp) = &sel.source {
        let mut fold = false;
        for_each_cond(comp, &mut |c| fold |= expr_would_simplify(c));
        return fold || composition_would_flatten(comp);
    }
    false
}

/// Mirror of [`simplify`]'s `changed` triggers: constant/constant folds,
/// self-comparison contradictions, `not not`, nested same-op flattening,
/// singleton collapse, and parameter-free interval contradictions.
fn expr_would_simplify(e: &Expr) -> bool {
    match e {
        Expr::Cmp { op, lhs, rhs, .. } => {
            if let (Operand::Lit(a), Operand::Lit(b)) = (lhs, rhs) {
                if !matches!(a, Lit::Param(_))
                    && !matches!(b, Lit::Param(_))
                    && matches!(
                        (lit_type(a), lit_type(b)),
                        (Some(ta), Some(tb)) if ta.comparable_with(tb)
                    )
                {
                    return true;
                }
            }
            if let (
                Operand::Attr {
                    qualifier: q1,
                    name: n1,
                },
                Operand::Attr {
                    qualifier: q2,
                    name: n2,
                },
            ) = (lhs, rhs)
            {
                if q1 == q2 && n1 == n2 && matches!(op, CmpOp::Lt | CmpOp::Gt | CmpOp::Ne) {
                    return true;
                }
            }
            false
        }
        Expr::Not(inner) => matches!(**inner, Expr::Not(_)) || expr_would_simplify(inner),
        Expr::And(parts) => {
            parts.len() == 1
                || parts
                    .iter()
                    .any(|p| matches!(p, Expr::And(_)) || expr_would_simplify(p))
                || (param_free(e) && dataflow::and_contradiction(parts).is_some())
        }
        Expr::Or(parts) => {
            parts.len() == 1
                || parts
                    .iter()
                    .any(|p| matches!(p, Expr::Or(_)) || expr_would_simplify(p))
        }
    }
}

/// Mirror of [`flatten_node`]: nested same-op composition or a singleton
/// `and`/`or` node.
fn composition_would_flatten(comp: &PathComposition) -> bool {
    match comp {
        PathComposition::Single(_) => false,
        PathComposition::And(parts) => {
            parts.len() == 1
                || parts
                    .iter()
                    .any(|p| matches!(p, PathComposition::And(_)) || composition_would_flatten(p))
        }
        PathComposition::Or(parts) => {
            parts.len() == 1
                || parts
                    .iter()
                    .any(|p| matches!(p, PathComposition::Or(_)) || composition_would_flatten(p))
        }
    }
}

/// Mirror of [`drop_unused_labels`]'s decision, with per-label early
/// exit instead of materializing the reference set — statements carry at
/// most a handful of labels, and the common case (every label used) ends
/// on the first match.
fn has_unused_set_label(sel: &SelectStmt) -> bool {
    if !matches!(sel.targets, SelectTargets::Items(_)) {
        return false;
    }
    let SelectSource::Graph(comp) = &sel.source else {
        return false;
    };
    let mut unused = false;
    for_each_set_label(comp, &mut |name| {
        if !unused {
            let mut used = false;
            for_each_label_ref(sel, comp, &mut |n| used |= n == name);
            unused = !used;
        }
    });
    unused
}

fn for_each_set_label(comp: &PathComposition, f: &mut impl FnMut(&str)) {
    fn visit(def: &Option<ast::LabelDef>, f: &mut impl FnMut(&str)) {
        if let Some(d) = def {
            if d.kind == LabelKind::Set {
                f(&d.name);
            }
        }
    }
    for path in comp.paths() {
        visit(&path.head.label_def, f);
        for seg in &path.segments {
            match seg {
                Segment::Hop { edge, vertex } => {
                    visit(&edge.label_def, f);
                    visit(&vertex.label_def, f);
                }
                Segment::Group { hops, exit, .. } => {
                    for (edge, vertex) in hops {
                        visit(&edge.label_def, f);
                        visit(&vertex.label_def, f);
                    }
                    if let Some(v) = exit {
                        visit(&v.label_def, f);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Constant literals
// ---------------------------------------------------------------------------

/// Canonical always-false predicate (`0 = 1`): compiles everywhere and
/// evaluates to `false` for every row.
pub(crate) fn const_false(span: Span) -> Expr {
    Expr::Cmp {
        op: CmpOp::Eq,
        lhs: Operand::Lit(Lit::Int(0)),
        rhs: Operand::Lit(Lit::Int(1)),
        span,
    }
}

/// Canonical always-true predicate (`0 = 0`).
fn const_true(span: Span) -> Expr {
    Expr::Cmp {
        op: CmpOp::Eq,
        lhs: Operand::Lit(Lit::Int(0)),
        rhs: Operand::Lit(Lit::Int(0)),
        span,
    }
}

/// True when no `%param%` literal occurs anywhere in the expression.
pub(crate) fn param_free(e: &Expr) -> bool {
    fn operand_ok(o: &Operand) -> bool {
        !matches!(o, Operand::Lit(Lit::Param(_)))
    }
    match e {
        Expr::And(ps) | Expr::Or(ps) => ps.iter().all(param_free),
        Expr::Not(inner) => param_free(inner),
        Expr::Cmp { lhs, rhs, .. } => operand_ok(lhs) && operand_ok(rhs),
    }
}

// ---------------------------------------------------------------------------
// Expression simplification (constant folding + predicate simplification)
// ---------------------------------------------------------------------------

/// Three-valued simplification verdict. `True`/`False` verdicts are only
/// ever produced from parameter-free subtrees (see module docs).
#[derive(Debug, Clone)]
pub(crate) enum Simp {
    True,
    False,
    Kept(Expr),
}

pub(crate) fn simplify(e: &Expr, changed: &mut bool) -> Simp {
    match e {
        Expr::Cmp { op, lhs, rhs, span } => {
            if let (Operand::Lit(a), Operand::Lit(b)) = (lhs, rhs) {
                if !matches!(a, Lit::Param(_)) && !matches!(b, Lit::Param(_)) {
                    if let (Some(ta), Some(tb)) = (lit_type(a), lit_type(b)) {
                        if ta.comparable_with(tb) {
                            let params = Params::default();
                            // Non-param literals resolve infallibly.
                            let va = lit_value(a, &params).expect("non-param literal");
                            let vb = lit_value(b, &params).expect("non-param literal");
                            *changed = true;
                            return if op.eval(&va, &vb) {
                                Simp::True
                            } else {
                                Simp::False
                            };
                        }
                    }
                }
            }
            // `x < x`, `x > x`, `x != x` are contradictions even with
            // nulls (null rows already evaluate comparisons to false).
            if let (
                Operand::Attr {
                    qualifier: q1,
                    name: n1,
                },
                Operand::Attr {
                    qualifier: q2,
                    name: n2,
                },
            ) = (lhs, rhs)
            {
                if q1 == q2 && n1 == n2 && matches!(op, CmpOp::Lt | CmpOp::Gt | CmpOp::Ne) {
                    *changed = true;
                    return Simp::False;
                }
            }
            Simp::Kept(Expr::Cmp {
                op: *op,
                lhs: lhs.clone(),
                rhs: rhs.clone(),
                span: *span,
            })
        }
        Expr::Not(inner) => match simplify(inner, changed) {
            Simp::True => {
                *changed = true;
                Simp::False
            }
            Simp::False => {
                *changed = true;
                Simp::True
            }
            Simp::Kept(Expr::Not(in2)) => {
                *changed = true;
                Simp::Kept(*in2)
            }
            Simp::Kept(k) => Simp::Kept(Expr::Not(Box::new(k))),
        },
        Expr::And(parts) => {
            let pf = param_free(e);
            let span = e.span();
            let mut out: Vec<Expr> = Vec::with_capacity(parts.len());
            let mut saw_false = false;
            for p in parts {
                match simplify(p, changed) {
                    // A dropped `true` conjunct was parameter-free by
                    // construction, so removal cannot mask a bind error.
                    Simp::True => {}
                    Simp::False => saw_false = true,
                    Simp::Kept(Expr::And(sub)) => {
                        *changed = true;
                        out.extend(sub);
                    }
                    Simp::Kept(k) => out.push(k),
                }
            }
            if saw_false {
                if pf {
                    return Simp::False;
                }
                // A parameter elsewhere in the conjunction must still hit
                // bind-time resolution; keep the structure with the false
                // conjunct made explicit.
                out.push(const_false(span));
                return Simp::Kept(Expr::And(out));
            }
            // Interval analysis over the surviving conjuncts: `x > 5 and
            // x < 3` is false for every row (null rows fail both sides
            // already), but collapsing is only sound when the whole
            // conjunction is parameter-free.
            if pf && dataflow::and_contradiction(&out).is_some() {
                *changed = true;
                return Simp::False;
            }
            match out.len() {
                0 => {
                    // All conjuncts were constant-true.
                    Simp::True
                }
                1 => {
                    *changed = true;
                    Simp::Kept(out.into_iter().next().unwrap())
                }
                _ => Simp::Kept(Expr::And(out)),
            }
        }
        Expr::Or(parts) => {
            let pf = param_free(e);
            let span = e.span();
            let mut out: Vec<Expr> = Vec::with_capacity(parts.len());
            let mut saw_true = false;
            for p in parts {
                match simplify(p, changed) {
                    // A dropped `false` arm was parameter-free by
                    // construction; the remaining arms are unchanged.
                    Simp::False => {}
                    Simp::True => saw_true = true,
                    Simp::Kept(Expr::Or(sub)) => {
                        *changed = true;
                        out.extend(sub);
                    }
                    Simp::Kept(k) => out.push(k),
                }
            }
            if saw_true {
                if pf {
                    return Simp::True;
                }
                out.push(const_true(span));
                return Simp::Kept(Expr::Or(out));
            }
            match out.len() {
                0 => Simp::False,
                1 => {
                    *changed = true;
                    Simp::Kept(out.into_iter().next().unwrap())
                }
                _ => Simp::Kept(Expr::Or(out)),
            }
        }
    }
}

/// Simplifies an optional condition in place. `True` verdicts drop the
/// condition entirely; `False` verdicts install the canonical false
/// predicate (the enclosing step/statement then yields no rows, exactly
/// as the original condition did).
fn simplify_cond(cond: &mut Option<Expr>) -> bool {
    let Some(e) = cond.as_ref() else { return false };
    let span = e.span();
    let mut changed = false;
    match simplify(e, &mut changed) {
        Simp::True => {
            *cond = None;
            true
        }
        Simp::False => {
            *cond = Some(const_false(span));
            true
        }
        Simp::Kept(k) => {
            if changed {
                *cond = Some(k);
            }
            changed
        }
    }
}

/// Constant folding + predicate simplification over every condition the
/// statement carries (table `where` and all step conditions).
fn fold_predicates(sel: &mut SelectStmt) -> bool {
    let mut changed = simplify_cond(&mut sel.where_clause);
    if let SelectSource::Graph(comp) = &mut sel.source {
        for_each_path_mut(comp, &mut |path| {
            changed |= simplify_vstep(&mut path.head);
            for seg in &mut path.segments {
                match seg {
                    Segment::Hop { edge, vertex } => {
                        changed |= simplify_cond(&mut edge.cond);
                        changed |= simplify_vstep(vertex);
                    }
                    Segment::Group { hops, exit, .. } => {
                        for (edge, vertex) in hops {
                            changed |= simplify_cond(&mut edge.cond);
                            changed |= simplify_vstep(vertex);
                        }
                        if let Some(v) = exit {
                            changed |= simplify_vstep(v);
                        }
                    }
                }
            }
        });
    }
    changed
}

fn simplify_vstep(v: &mut ast::VertexStep) -> bool {
    simplify_cond(&mut v.cond)
}

fn for_each_path_mut(comp: &mut PathComposition, f: &mut impl FnMut(&mut ast::PathQuery)) {
    match comp {
        PathComposition::Single(p) => f(p),
        PathComposition::And(parts) | PathComposition::Or(parts) => {
            for c in parts {
                for_each_path_mut(c, f);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Composition flattening
// ---------------------------------------------------------------------------

/// Flattens nested `and`/`or` composition nodes (`a or (b or c)` →
/// `a or b or c`). Execution already treats nested nodes associatively,
/// so this is a pure plan-shape normalization; branch order is preserved.
fn flatten_composition(sel: &mut SelectStmt) -> bool {
    let SelectSource::Graph(comp) = &mut sel.source else {
        return false;
    };
    let mut changed = false;
    flatten_node(comp, &mut changed);
    changed
}

fn flatten_node(comp: &mut PathComposition, changed: &mut bool) {
    match comp {
        PathComposition::Single(_) => {}
        PathComposition::And(parts) => {
            for p in parts.iter_mut() {
                flatten_node(p, changed);
            }
            if parts.iter().any(|p| matches!(p, PathComposition::And(_))) {
                *changed = true;
                let old = std::mem::take(parts);
                for p in old {
                    match p {
                        PathComposition::And(sub) => parts.extend(sub),
                        other => parts.push(other),
                    }
                }
            }
            if parts.len() == 1 {
                *changed = true;
                *comp = parts.pop().unwrap();
            }
        }
        PathComposition::Or(parts) => {
            for p in parts.iter_mut() {
                flatten_node(p, changed);
            }
            if parts.iter().any(|p| matches!(p, PathComposition::Or(_))) {
                *changed = true;
                let old = std::mem::take(parts);
                for p in old {
                    match p {
                        PathComposition::Or(sub) => parts.extend(sub),
                        other => parts.push(other),
                    }
                }
            }
            if parts.len() == 1 {
                *changed = true;
                *comp = parts.pop().unwrap();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dead or-branch elimination
// ---------------------------------------------------------------------------

/// True when some step condition in the composition folds to constant
/// `false` — the branch can never produce a binding.
pub(crate) fn branch_is_dead(comp: &PathComposition) -> bool {
    let mut dead = false;
    for_each_cond(comp, &mut |cond| {
        let mut ignored = false;
        if matches!(simplify(cond, &mut ignored), Simp::False) {
            dead = true;
        }
    });
    dead
}

fn for_each_cond(comp: &PathComposition, f: &mut impl FnMut(&Expr)) {
    for path in comp.paths() {
        if let Some(c) = &path.head.cond {
            f(c);
        }
        for seg in &path.segments {
            match seg {
                Segment::Hop { edge, vertex } => {
                    if let Some(c) = &edge.cond {
                        f(c);
                    }
                    if let Some(c) = &vertex.cond {
                        f(c);
                    }
                }
                Segment::Group { hops, exit, .. } => {
                    for (edge, vertex) in hops {
                        if let Some(c) = &edge.cond {
                            f(c);
                        }
                        if let Some(c) = &vertex.cond {
                            f(c);
                        }
                    }
                    if let Some(v) = exit {
                        if let Some(c) = &v.cond {
                            f(c);
                        }
                    }
                }
            }
        }
    }
}

/// A branch may only be *removed* when doing so cannot change an error
/// outcome: no `%param%` anywhere (bind errors), no regex group
/// (quantifier/cap errors).
fn branch_droppable(comp: &PathComposition) -> bool {
    for path in comp.paths() {
        if path
            .segments
            .iter()
            .any(|s| matches!(s, Segment::Group { .. }))
        {
            return false;
        }
    }
    let mut ok = true;
    for_each_cond(comp, &mut |cond| {
        if !param_free(cond) {
            ok = false;
        }
    });
    ok
}

/// Removes `or`-branches whose step conditions fold to constant `false`.
/// At least one branch is always kept (an all-dead composition still
/// executes — and still reports compile-time errors — like the original).
fn prune_dead_branches(sel: &mut SelectStmt) -> bool {
    let SelectSource::Graph(comp) = &mut sel.source else {
        return false;
    };
    let PathComposition::Or(parts) = comp else {
        return false;
    };
    let dead: Vec<bool> = parts
        .iter()
        .map(|p| branch_is_dead(p) && branch_droppable(p))
        .collect();
    let live = dead.iter().filter(|d| !**d).count();
    if dead.iter().all(|d| !*d) {
        return false;
    }
    if live == 0 {
        // Keep the first branch so the statement still compiles and
        // produces its (empty) result shape.
        let first = parts.remove(0);
        *comp = first;
        return true;
    }
    let mut keep = Vec::with_capacity(live);
    for (p, is_dead) in std::mem::take(parts).into_iter().zip(&dead) {
        if !*is_dead {
            keep.push(p);
        }
    }
    *comp = if keep.len() == 1 {
        keep.pop().unwrap()
    } else {
        PathComposition::Or(keep)
    };
    true
}

// ---------------------------------------------------------------------------
// Unused set-label elimination
// ---------------------------------------------------------------------------

/// Removes `def` label definitions never referenced by any step name,
/// qualifier, projection, grouping or ordering key. `foreach` labels are
/// always kept (element-wise labels change result multiplicity), as is
/// everything under `select *` (star projections capture labelled steps
/// into subgraphs).
fn drop_unused_labels(sel: &mut SelectStmt) -> bool {
    if !matches!(sel.targets, SelectTargets::Items(_)) {
        return false;
    }
    let SelectSource::Graph(comp) = &sel.source else {
        return false;
    };

    // Collect every name that could reference a label.
    let mut used: Vec<String> = Vec::new();
    for_each_label_ref(sel, comp, &mut |name| used.push(name.to_string()));
    let is_used = |name: &str| used.iter().any(|u| u == name);

    let SelectSource::Graph(comp) = &mut sel.source else {
        unreachable!();
    };
    let mut changed = false;
    for_each_path_mut(comp, &mut |path| {
        changed |= prune_label(&mut path.head.label_def, &is_used);
        for seg in &mut path.segments {
            match seg {
                Segment::Hop { edge, vertex } => {
                    changed |= prune_label(&mut edge.label_def, &is_used);
                    changed |= prune_label(&mut vertex.label_def, &is_used);
                }
                Segment::Group { hops, exit, .. } => {
                    for (edge, vertex) in hops {
                        changed |= prune_label(&mut edge.label_def, &is_used);
                        changed |= prune_label(&mut vertex.label_def, &is_used);
                    }
                    if let Some(v) = exit {
                        changed |= prune_label(&mut v.label_def, &is_used);
                    }
                }
            }
        }
    });
    changed
}

fn prune_label(def: &mut Option<ast::LabelDef>, is_used: &impl Fn(&str) -> bool) -> bool {
    match def {
        Some(d) if d.kind == LabelKind::Set && !is_used(&d.name) => {
            *def = None;
            true
        }
        _ => false,
    }
}

/// Invokes `note` with every name that could reference a step label:
/// step names, condition qualifiers, projections, grouping and ordering
/// keys, and `where`-clause qualifiers. Shared by the elimination pass
/// and the pre-scan so the two cannot disagree on what counts as a use.
fn for_each_label_ref(sel: &SelectStmt, comp: &PathComposition, note: &mut impl FnMut(&str)) {
    for path in comp.paths() {
        note_step_refs(&path.head, note);
        for seg in &path.segments {
            match seg {
                Segment::Hop { edge, vertex } => {
                    note_estep_refs(edge, note);
                    note_step_refs(vertex, note);
                }
                Segment::Group { hops, exit, .. } => {
                    for (edge, vertex) in hops {
                        note_estep_refs(edge, note);
                        note_step_refs(vertex, note);
                    }
                    if let Some(v) = exit {
                        note_step_refs(v, note);
                    }
                }
            }
        }
    }
    if let SelectTargets::Items(items) = &sel.targets {
        for item in items {
            note_select_expr(&item.expr, note);
        }
    }
    for c in &sel.group_by {
        note_colref(c, note);
    }
    for k in &sel.order_by {
        note_colref(&k.col, note);
    }
    if let Some(e) = &sel.where_clause {
        note_expr_quals(e, note);
    }
}

fn note_step_refs(v: &ast::VertexStep, note: &mut impl FnMut(&str)) {
    // A step *name* may be a label back-reference; qualifiers inside the
    // condition may reference labels of other steps.
    if let StepName::Named(n) = &v.name {
        note(n);
    }
    if let Some(c) = &v.cond {
        note_expr_quals(c, note);
    }
}

fn note_estep_refs(e: &ast::EdgeStep, note: &mut impl FnMut(&str)) {
    if let StepName::Named(n) = &e.name {
        note(n);
    }
    if let Some(c) = &e.cond {
        note_expr_quals(c, note);
    }
}

fn note_expr_quals(e: &Expr, note: &mut impl FnMut(&str)) {
    match e {
        Expr::And(ps) | Expr::Or(ps) => ps.iter().for_each(|p| note_expr_quals(p, note)),
        Expr::Not(inner) => note_expr_quals(inner, note),
        Expr::Cmp { lhs, rhs, .. } => {
            for o in [lhs, rhs] {
                if let Operand::Attr {
                    qualifier: Some(q), ..
                } = o
                {
                    note(q);
                }
            }
        }
    }
}

fn note_select_expr(e: &ast::SelectExpr, note: &mut impl FnMut(&str)) {
    match e {
        ast::SelectExpr::Col(c) => note_colref(c, note),
        ast::SelectExpr::Agg(agg) => match agg {
            ast::AggCall::CountStar => {}
            ast::AggCall::Count(c)
            | ast::AggCall::Sum(c)
            | ast::AggCall::Avg(c)
            | ast::AggCall::Min(c)
            | ast::AggCall::Max(c) => note_colref(c, note),
        },
    }
}

fn note_colref(c: &ast::ColRef, note: &mut impl FnMut(&str)) {
    if let Some(q) = &c.qualifier {
        note(q);
    }
    // A bare name over a graph source is a step/label reference.
    note(&c.name);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pred(pred: &str) -> Expr {
        let script = graql_parser::parse(&format!("select id from table T where {pred}")).unwrap();
        script.statements[0]
            .as_select()
            .unwrap()
            .where_clause
            .clone()
            .unwrap()
    }

    /// Simplifies a predicate string; renders `Kept` results back to text.
    fn simp(pred: &str) -> String {
        let mut changed = false;
        match simplify(&parse_pred(pred), &mut changed) {
            Simp::True => "TRUE".into(),
            Simp::False => "FALSE".into(),
            Simp::Kept(k) => k.to_string(),
        }
    }

    #[test]
    fn constant_comparisons_fold() {
        assert_eq!(simp("1 < 2"), "TRUE");
        assert_eq!(simp("2 < 1"), "FALSE");
        assert_eq!(simp("'a' < 'b'"), "TRUE");
        assert_eq!(simp("3 = 3"), "TRUE");
    }

    #[test]
    fn incomparable_constants_are_kept() {
        // Folding would mask the type error compilation reports.
        assert_eq!(simp("1 = 'a'"), "1 = 'a'");
    }

    #[test]
    fn attr_self_comparison_null_semantics() {
        // `x = x` is NOT a tautology: null rows evaluate it to false.
        assert_eq!(simp("x = x"), "x = x");
        assert_eq!(simp("x <= x"), "x <= x");
        // ...but the strict/exclusion forms are contradictions even for
        // null rows (every comparison on null is already false).
        assert_eq!(simp("x < x"), "FALSE");
        assert_eq!(simp("x > x"), "FALSE");
        assert_eq!(simp("x != x"), "FALSE");
    }

    #[test]
    fn negations_are_not_pushed_through_comparisons() {
        // `not (x < 5)` is not `x >= 5` (they differ on null rows); only
        // double negation and folded constants may be rewritten.
        assert_eq!(simp("not (x < 5)"), "not (x < 5)");
        assert_eq!(simp("not (not (x < 5))"), "x < 5");
        assert_eq!(simp("not (1 < 2)"), "FALSE");
    }

    #[test]
    fn and_or_simplification() {
        assert_eq!(simp("x = 1 and 1 = 1"), "x = 1");
        assert_eq!(simp("x = 1 and 1 = 2"), "FALSE");
        assert_eq!(simp("x = 1 or 1 = 2"), "x = 1");
        assert_eq!(simp("x = 1 or 1 = 1"), "TRUE");
        // Nested same-op nodes are flattened.
        assert_eq!(
            simp("x = 1 and (y = 2 and z = 3)"),
            "x = 1 and y = 2 and z = 3"
        );
    }

    #[test]
    fn interval_contradictions_collapse() {
        assert_eq!(simp("x > 5 and x < 3"), "FALSE");
        assert_eq!(simp("x >= 5 and x < 5"), "FALSE");
        // A satisfiable interval survives.
        assert_eq!(simp("x > 3 and x < 5"), "x > 3 and x < 5");
    }

    #[test]
    fn param_subtrees_block_constant_collapse() {
        // The false conjunct folds, but the parameter must still reach
        // bind-time resolution: the conjunction cannot become FALSE.
        assert_eq!(simp("x = %p% and 1 = 2"), "x = %p% and 0 = 1");
        assert_eq!(simp("x = %p% or 1 = 1"), "x = %p% or 0 = 0");
        // A parameter comparison alone is untouched.
        assert_eq!(simp("x = %p%"), "x = %p%");
    }

    fn rewrite_to_string(script: &str) -> (String, Vec<&'static str>) {
        let s = graql_parser::parse(script).unwrap();
        let sel = s.statements[0].as_select().unwrap();
        match rewrite_select(sel) {
            Some(rw) => (rw.sel.to_string(), rw.passes),
            None => (sel.to_string(), Vec::new()),
        }
    }

    #[test]
    fn dead_or_branch_is_pruned() {
        let (out, passes) =
            rewrite_to_string("select * from graph VA() --ab--> VB() or VA(1 > 2) --ab--> VB()");
        assert!(passes.contains(&"prune-dead-branches"), "{passes:?}");
        assert!(!out.contains("or"), "dead branch survived: {out}");
    }

    #[test]
    fn all_dead_branches_keep_one() {
        let (out, _) = rewrite_to_string(
            "select * from graph VA(1 > 2) --ab--> VB() or VA(2 > 3) --ab--> VB()",
        );
        // One branch remains so the statement still compiles (and still
        // reports its errors); its false condition is the canonical form.
        assert!(out.contains("VA(0 = 1)"), "{out}");
        assert!(!out.contains("or"), "{out}");
    }

    #[test]
    fn param_branches_are_never_dropped() {
        let (out, _) = rewrite_to_string(
            "select * from graph VA() --ab--> VB() \
             or VA(x = %p% and 1 = 2) --ab--> VB()",
        );
        assert!(out.contains("or"), "param branch must survive: {out}");
        assert!(out.contains("%p%"), "{out}");
    }

    #[test]
    fn unused_set_label_is_dropped_foreach_kept() {
        let (out, passes) =
            rewrite_to_string("select y.id from graph def x: VA() --ab--> def y: VB()");
        assert!(passes.contains(&"drop-unused-labels"), "{passes:?}");
        assert!(!out.contains("def x:"), "{out}");
        assert!(out.contains("def y:"), "{out}");

        let (out, _) =
            rewrite_to_string("select y.id from graph foreach x: VA() --ab--> def y: VB()");
        assert!(
            out.contains("foreach x:"),
            "foreach changes multiplicity: {out}"
        );
    }

    #[test]
    fn star_projection_blocks_label_elimination() {
        let (out, _) = rewrite_to_string("select * from graph def x: VA() --ab--> VB()");
        assert!(out.contains("def x:"), "{out}");
    }

    #[test]
    fn clean_statement_is_untouched() {
        let s = graql_parser::parse("select id from table T where x > 3 and y < 5").unwrap();
        assert!(rewrite_select(s.statements[0].as_select().unwrap()).is_none());
    }
}
