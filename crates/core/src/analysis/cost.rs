//! Catalog-statistics-backed cardinality estimation.
//!
//! Estimates are name-level (AST) or id-level (compiled plan) walks over
//! a path query, seeded by per-type vertex counts and expanded through
//! mean edge degrees from the [`CatalogStats`] store. Predicate
//! selectivities use per-column NDV when the backing table's statistics
//! are available and textbook defaults otherwise (equality `1/NDV` or
//! `0.1`, range `1/3`, conjunction = product, disjunction =
//! inclusion-exclusion). These are *estimates for plan annotation and
//! hints*, not guarantees; the executor never consults them for
//! correctness.

use graql_parser::ast::{self, Dir, Expr, Lit, Operand, Quant, Segment, StepName};
use graql_table::{PhysExpr, TableSchema};
use graql_types::CmpOp;

use crate::catalog::{Catalog, CatalogStats, TableCard};

/// Above this many estimated intermediate rows, the analyzer raises the
/// `H0203` large-plan hint.
pub const LARGE_PLAN_THRESHOLD: f64 = 1_000_000.0;

/// Exponent cap when estimating a `{n,m}` / `*` / `+` group: degrees
/// compound, so a handful of repetitions already dominates any plan.
const GROUP_DEPTH_CAP: u32 = 8;

/// Default selectivities when no statistics apply.
const DEFAULT_EQ_SEL: f64 = 0.1;
const RANGE_SEL: f64 = 1.0 / 3.0;

/// Renders an estimate compactly (`123`, `4.5k`, `1.2M`, `3.4e9`).
pub fn fmt_rows(est: f64) -> String {
    if !est.is_finite() {
        return "inf".to_string();
    }
    if est < 1_000.0 {
        format!("{}", est.round() as u64)
    } else if est < 1_000_000.0 {
        format!("{:.1}k", est / 1_000.0)
    } else if est < 1_000_000_000.0 {
        format!("{:.1}M", est / 1_000_000.0)
    } else {
        format!("{:.1e}", est)
    }
}

// ---------------------------------------------------------------------------
// Predicate selectivity
// ---------------------------------------------------------------------------

fn clamp01(s: f64) -> f64 {
    s.clamp(0.0, 1.0)
}

fn cmp_selectivity(op: CmpOp, ndv: Option<u64>) -> f64 {
    let eq = match ndv {
        Some(n) if n > 0 => 1.0 / n as f64,
        _ => DEFAULT_EQ_SEL,
    };
    match op {
        CmpOp::Eq => eq,
        CmpOp::Ne => clamp01(1.0 - eq),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => RANGE_SEL,
    }
}

/// Selectivity of a surface condition against rows of one relation whose
/// statistics (if any) are `card`.
pub fn expr_selectivity(card: Option<&TableCard>, e: &Expr) -> f64 {
    match e {
        Expr::And(parts) => clamp01(parts.iter().map(|p| expr_selectivity(card, p)).product()),
        Expr::Or(parts) => clamp01(
            1.0 - parts
                .iter()
                .map(|p| 1.0 - expr_selectivity(card, p))
                .product::<f64>(),
        ),
        Expr::Not(inner) => clamp01(1.0 - expr_selectivity(card, inner)),
        Expr::Cmp { op, lhs, rhs, .. } => match (lhs, rhs) {
            (Operand::Attr { name, .. }, Operand::Lit(l))
            | (Operand::Lit(l), Operand::Attr { name, .. })
                if !matches!(l, Lit::Param(_)) =>
            {
                cmp_selectivity(*op, card.and_then(|c| c.ndv(name)))
            }
            (Operand::Attr { .. }, Operand::Attr { .. }) => 0.5,
            // Parameters and constant comparisons: no information.
            _ => 1.0,
        },
    }
}

/// Selectivity of a compiled predicate over a table with the given schema
/// (column indices resolve to names for NDV lookup).
pub fn phys_selectivity(schema: &TableSchema, card: Option<&TableCard>, e: &PhysExpr) -> f64 {
    match e {
        PhysExpr::And(parts) => clamp01(
            parts
                .iter()
                .map(|p| phys_selectivity(schema, card, p))
                .product(),
        ),
        PhysExpr::Or(parts) => clamp01(
            1.0 - parts
                .iter()
                .map(|p| 1.0 - phys_selectivity(schema, card, p))
                .product::<f64>(),
        ),
        PhysExpr::Not(inner) => clamp01(1.0 - phys_selectivity(schema, card, inner)),
        PhysExpr::Cmp(op, l, r) => {
            let col = match (l.as_ref(), r.as_ref()) {
                (PhysExpr::Col(i), PhysExpr::Const(_)) | (PhysExpr::Const(_), PhysExpr::Col(i)) => {
                    Some(*i)
                }
                _ => None,
            };
            match col {
                Some(i) if i < schema.len() => {
                    let name = &schema.column(i).name;
                    cmp_selectivity(*op, card.and_then(|c| c.ndv(name)))
                }
                _ => 0.5,
            }
        }
        PhysExpr::Col(_) | PhysExpr::Const(_) => 1.0,
    }
}

// ---------------------------------------------------------------------------
// Name-level path estimation (check-time, no compiled plan needed)
// ---------------------------------------------------------------------------

fn step_display(name: &StepName) -> &str {
    match name {
        StepName::Named(n) => n,
        StepName::Any => "[ ]",
    }
}

/// Resolves a vertex step name to its candidate vertex types: a concrete
/// type, a label back-reference (domain of the defining step), or — for
/// `[ ]` variants and unresolvable names — every declared type.
fn vertex_domain(work: &Catalog, labels: &[(String, Vec<String>)], name: &StepName) -> Vec<String> {
    match name {
        StepName::Named(n) => {
            if work.vertex(n).is_some() {
                vec![n.clone()]
            } else if let Some((_, dom)) = labels.iter().find(|(l, _)| l == n) {
                dom.clone()
            } else {
                work.vertex_names().to_vec()
            }
        }
        StepName::Any => work.vertex_names().to_vec(),
    }
}

/// Total vertices of the given types, each scaled by the selectivity of
/// `cond` against the type's backing table.
fn vertex_estimate(
    work: &Catalog,
    stats: &CatalogStats,
    domain: &[String],
    cond: Option<&Expr>,
) -> f64 {
    let mut est = 0.0;
    for vt in domain {
        let count = stats.vertex_count(vt).unwrap_or(0) as f64;
        let card = work
            .vertex(vt)
            .and_then(|def| stats.tables.get(&def.table))
            .map(|c| &**c);
        let sel = cond.map_or(1.0, |c| expr_selectivity(card, c));
        est += count * sel;
    }
    est
}

/// Mean out-degree (for `dir`) summed over the candidate edge types that
/// can leave the current source domain.
fn hop_expansion(
    work: &Catalog,
    stats: &CatalogStats,
    src_domain: &[String],
    edge: &ast::EdgeStep,
) -> f64 {
    let candidates: Vec<&str> = match &edge.name {
        StepName::Named(n) if work.edge(n).is_some() => vec![n.as_str()],
        StepName::Named(_) => Vec::new(),
        StepName::Any => work.edge_names().iter().map(|s| s.as_str()).collect(),
    };
    let mut expansion = 0.0;
    for e in &candidates {
        let Some(def) = work.edge(e) else { continue };
        let from = match edge.dir {
            Dir::Out => &def.src_type,
            Dir::In => &def.tgt_type,
        };
        if !src_domain.iter().any(|t| t == from) {
            continue;
        }
        if let Some((mean_out, mean_in)) = stats.mean_degrees(e) {
            expansion += match edge.dir {
                Dir::Out => mean_out,
                Dir::In => mean_in,
            };
        }
    }
    let esel = edge
        .cond
        .as_ref()
        .map_or(1.0, |c| expr_selectivity(None, c));
    // An unresolvable edge name (a label back-reference) re-traverses an
    // already-matched edge set: treat it as expansion 1.
    if candidates.is_empty() {
        esel
    } else {
        expansion * esel
    }
}

/// Narrows the target domain through the feasible edge definitions.
fn narrowed_target(
    work: &Catalog,
    src_domain: &[String],
    edge: &ast::EdgeStep,
    target: &[String],
) -> Vec<String> {
    let candidates: Vec<&str> = match &edge.name {
        StepName::Named(n) if work.edge(n).is_some() => vec![n.as_str()],
        _ => return target.to_vec(),
    };
    let mut reach: Vec<String> = Vec::new();
    for e in candidates {
        let Some(def) = work.edge(e) else { continue };
        let (from, to) = match edge.dir {
            Dir::Out => (&def.src_type, &def.tgt_type),
            Dir::In => (&def.tgt_type, &def.src_type),
        };
        if src_domain.iter().any(|t| t == from) && !reach.contains(to) {
            reach.push(to.clone());
        }
    }
    let narrowed: Vec<String> = target
        .iter()
        .filter(|t| reach.contains(t))
        .cloned()
        .collect();
    if narrowed.is_empty() {
        target.to_vec()
    } else {
        narrowed
    }
}

/// Per-operator `(description, estimated rows)` annotations for one
/// branch of a path composition (all of its `and`-joined paths,
/// concatenated — joins are not modelled, each path is bounded alone).
pub fn estimate_paths(
    work: &Catalog,
    stats: &CatalogStats,
    paths: &[&ast::PathQuery],
) -> Vec<(String, f64)> {
    // Label definitions on concrete-typed steps seed the domains of
    // back-references (shared labels across `and` paths included).
    let mut labels: Vec<(String, Vec<String>)> = Vec::new();
    for path in paths {
        for v in path.vertex_steps() {
            if let (Some(def), StepName::Named(n)) = (&v.label_def, &v.name) {
                if work.vertex(n).is_some() {
                    labels.push((def.name.clone(), vec![n.clone()]));
                }
            }
        }
    }

    let mut ops = Vec::new();
    for path in paths {
        let mut domain = vertex_domain(work, &labels, &path.head.name);
        let mut flow = vertex_estimate(work, stats, &domain, path.head.cond.as_ref());
        ops.push((
            format!("vertex step {}", step_display(&path.head.name)),
            flow,
        ));
        for seg in &path.segments {
            match seg {
                Segment::Hop { edge, vertex } => {
                    let expansion = hop_expansion(work, stats, &domain, edge);
                    let target = vertex_domain(work, &labels, &vertex.name);
                    let target = narrowed_target(work, &domain, edge, &target);
                    let tsel = vertex_cond_selectivity(work, stats, &target, vertex.cond.as_ref());
                    flow = flow * expansion * tsel;
                    ops.push((
                        format!(
                            "hop {}{}{} {}",
                            if edge.dir == Dir::In { "<--" } else { "--" },
                            step_display(&edge.name),
                            if edge.dir == Dir::In { "--" } else { "-->" },
                            step_display(&vertex.name),
                        ),
                        flow,
                    ));
                    domain = target;
                }
                Segment::Group {
                    hops, quant, exit, ..
                } => {
                    let mut per_iter = 1.0;
                    let mut cur = domain.clone();
                    for (edge, vertex) in hops {
                        per_iter *= hop_expansion(work, stats, &cur, edge);
                        let target = vertex_domain(work, &labels, &vertex.name);
                        cur = narrowed_target(work, &cur, edge, &target);
                        per_iter *=
                            vertex_cond_selectivity(work, stats, &cur, vertex.cond.as_ref());
                    }
                    let (lo, hi) = quant.bounds(crate::compile::REGEX_CAP);
                    let depth = hi.min(GROUP_DEPTH_CAP.max(lo));
                    flow *= per_iter.max(1.0).powi(depth as i32);
                    let quant_str = match quant {
                        Quant::Star => "*".to_string(),
                        Quant::Plus => "+".to_string(),
                        Quant::Range(a, b) => format!("{{{a},{b}}}"),
                    };
                    ops.push((format!("group {quant_str}"), flow));
                    domain = cur;
                    if let Some(v) = exit {
                        let target = vertex_domain(work, &labels, &v.name);
                        let tsel = vertex_cond_selectivity(work, stats, &target, v.cond.as_ref());
                        flow *= tsel;
                        ops.push((format!("group exit {}", step_display(&v.name)), flow));
                        domain = target;
                    }
                }
            }
        }
    }
    ops
}

/// Average condition selectivity over a domain of vertex types (weighted
/// uniformly — good enough for plan annotation).
fn vertex_cond_selectivity(
    work: &Catalog,
    stats: &CatalogStats,
    domain: &[String],
    cond: Option<&Expr>,
) -> f64 {
    let Some(c) = cond else { return 1.0 };
    if domain.is_empty() {
        return expr_selectivity(None, c);
    }
    let total: f64 = domain
        .iter()
        .map(|vt| {
            let card = work
                .vertex(vt)
                .and_then(|def| stats.tables.get(&def.table))
                .map(|c| &**c);
            expr_selectivity(card, c)
        })
        .sum();
    total / domain.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_estimates_render_compactly() {
        assert_eq!(fmt_rows(0.0), "0");
        assert_eq!(fmt_rows(742.0), "742");
        assert_eq!(fmt_rows(12_500.0), "12.5k");
        assert_eq!(fmt_rows(100_000_000.0), "100.0M");
        assert_eq!(fmt_rows(1e12), "1.0e12");
        assert_eq!(fmt_rows(f64::INFINITY), "inf");
    }
}
