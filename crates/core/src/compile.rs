//! Compilation of path queries into an executable form.
//!
//! Resolves step names against the graph's type registry (and the query's
//! own labels), narrows variant-step domains through edge endpoint
//! constraints, and compiles step conditions into physical predicates —
//! local ones per candidate type, and cross-step (label-referencing) ones
//! into binding constraints checked during enumeration.

use graql_graph::{ETypeId, Graph, VTypeId};
use graql_parser::ast::{self, Dir, LabelKind, Segment, StepName};
use graql_table::{PhysExpr, Table};
use graql_types::{CmpOp, GraqlError, Result, Value};
use rustc_hash::FxHashMap;

use crate::cond::{compile_single_table, lit_value, Params};
use crate::ddl::Storage;

/// Address of a vertex step within a compiled multi-path query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StepAddr {
    pub path: usize,
    pub vstep: usize,
}

/// A registered label.
#[derive(Debug, Clone)]
pub struct LabelInfo {
    pub kind: LabelKind,
    pub def: StepAddr,
}

/// Operand of a binding-level condition.
#[derive(Debug, Clone)]
pub enum BOperand {
    /// Attribute `name` of the vertex bound at `addr`.
    Attr {
        addr: StepAddr,
        name: String,
    },
    Const(Value),
}

/// A condition spanning steps, evaluated once all referenced steps are
/// bound (element-wise semantics; see DESIGN.md §4.2).
#[derive(Debug, Clone)]
pub struct BindingCond {
    pub op: CmpOp,
    pub lhs: BOperand,
    pub rhs: BOperand,
}

impl BindingCond {
    /// Steps this condition needs bound.
    pub fn deps(&self) -> Vec<StepAddr> {
        let mut out = Vec::new();
        for o in [&self.lhs, &self.rhs] {
            if let BOperand::Attr { addr, .. } = o {
                out.push(*addr);
            }
        }
        out
    }
}

/// A compiled vertex step.
#[derive(Debug, Clone)]
pub struct CVStep {
    /// Candidate vertex types (singleton for concrete steps).
    pub domain: Vec<VTypeId>,
    /// `true` when the surface step was the `[ ]` metavariable.
    pub is_any: bool,
    /// Local filter per domain type (absent = no filter for that type).
    pub local: FxHashMap<VTypeId, PhysExpr>,
    /// Cross-step conditions anchored at this step.
    pub binding_conds: Vec<BindingCond>,
    pub label_def: Option<(LabelKind, String)>,
    /// Set when the step itself is a reference to an earlier label.
    pub label_ref: Option<String>,
    /// Named subgraph seeding this step (Fig. 12).
    pub seed: Option<String>,
    /// Name used in projections and diagnostics.
    pub display: String,
}

/// A compiled edge step.
#[derive(Debug, Clone)]
pub struct CEStep {
    /// Candidate edge types; `None` means unrestricted (`[ ]`).
    pub domain: Option<Vec<ETypeId>>,
    pub dir: Dir,
    /// Local filter per edge type over the associated table.
    pub local: FxHashMap<ETypeId, PhysExpr>,
    pub label_def: Option<(LabelKind, String)>,
    pub display: String,
}

/// A compiled path-regex group (§II-B4): hops repeated `lo..=hi` times.
#[derive(Debug, Clone)]
pub struct CGroup {
    pub hops: Vec<(CEStep, CVStep)>,
    pub lo: u32,
    pub hi: u32,
}

/// Link between consecutive vertex steps.
#[derive(Debug, Clone)]
pub enum CLink {
    Edge(CEStep),
    Group(CGroup),
}

/// A compiled simple path: `vsteps.len() == links.len() + 1`.
#[derive(Debug, Clone)]
pub struct CPath {
    pub vsteps: Vec<CVStep>,
    pub links: Vec<CLink>,
}

impl CPath {
    pub fn has_groups(&self) -> bool {
        self.links.iter().any(|l| matches!(l, CLink::Group(_)))
    }
}

/// Address of an edge step (a link) within a compiled query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkAddr {
    pub path: usize,
    pub link: usize,
}

/// A compiled and-composition: several paths sharing labels.
#[derive(Debug, Clone)]
pub struct CQuery {
    pub paths: Vec<CPath>,
    pub labels: FxHashMap<String, LabelInfo>,
    /// Labels attached to edge steps (projection handles only; edges have
    /// no reference steps).
    pub edge_labels: FxHashMap<String, LinkAddr>,
}

impl CQuery {
    /// Resolves a projection qualifier (label, unique vertex-type name, or
    /// unique display name) to a step address.
    pub fn resolve_step(&self, name: &str) -> Result<StepAddr> {
        if let Some(info) = self.labels.get(name) {
            return Ok(info.def);
        }
        let mut hits = Vec::new();
        for (pi, p) in self.paths.iter().enumerate() {
            for (vi, v) in p.vsteps.iter().enumerate() {
                if v.display == name && v.label_ref.is_none() {
                    hits.push(StepAddr {
                        path: pi,
                        vstep: vi,
                    });
                }
            }
        }
        match hits.len() {
            1 => Ok(hits[0]),
            0 => Err(GraqlError::name(format!("unknown step or label '{name}'"))),
            _ => Err(GraqlError::path(format!(
                "step name '{name}' is ambiguous; label it to disambiguate"
            ))),
        }
    }

    pub fn step(&self, addr: StepAddr) -> &CVStep {
        &self.paths[addr.path].vsteps[addr.vstep]
    }

    /// The edge step at a link address (edge links only).
    pub fn edge_step(&self, addr: LinkAddr) -> Option<&CEStep> {
        match &self.paths[addr.path].links[addr.link] {
            CLink::Edge(e) => Some(e),
            CLink::Group(_) => None,
        }
    }
}

/// Compilation context: the graph types + table schemas + parameters.
pub struct CompileCtx<'a> {
    pub graph: &'a Graph,
    pub storage: &'a Storage,
    pub params: &'a Params,
    /// Cap applied to `*`/`+` quantifiers (and a DoS guard for explicit
    /// `{n,m}` ranges); see [`crate::plan::ExecConfig::regex_cap`].
    pub regex_cap: u32,
}

impl<'a> CompileCtx<'a> {
    /// Source table of a vertex type.
    pub fn vtable(&self, vt: VTypeId) -> &'a Table {
        let name = &self.graph.vset(vt).table;
        self.storage
            .get(name)
            .expect("catalog and storage are consistent")
    }

    /// Associated table of an edge type, if it has attributes.
    pub fn etable(&self, et: ETypeId) -> Option<&'a Table> {
        self.graph.eset(et).assoc_table.as_ref().map(|n| {
            self.storage
                .get(n)
                .map(|t| t.as_ref())
                .expect("catalog and storage are consistent")
        })
    }
}

/// Compiles an and-composition (list of simple paths) into a [`CQuery`].
pub fn compile_query(ctx: &CompileCtx<'_>, paths: &[&ast::PathQuery]) -> Result<CQuery> {
    let mut q = CQuery {
        paths: Vec::new(),
        labels: FxHashMap::default(),
        edge_labels: FxHashMap::default(),
    };
    for (pi, path) in paths.iter().enumerate() {
        let cpath = compile_path(ctx, path, pi, &mut q.labels)?;
        // Register edge labels (vertex and edge labels share a namespace).
        for (li, link) in cpath.links.iter().enumerate() {
            if let CLink::Edge(e) = link {
                if let Some((_, name)) = &e.label_def {
                    if q.labels.contains_key(name) || q.edge_labels.contains_key(name) {
                        return Err(GraqlError::path(format!("label '{name}' defined twice")));
                    }
                    q.edge_labels
                        .insert(name.clone(), LinkAddr { path: pi, link: li });
                }
            }
        }
        q.paths.push(cpath);
    }
    // Label-reference steps inherit the domain of their defining step.
    propagate_label_domains(&mut q)?;
    Ok(q)
}

fn all_vtypes(g: &Graph) -> Vec<VTypeId> {
    g.vtype_ids().collect()
}

fn compile_path(
    ctx: &CompileCtx<'_>,
    path: &ast::PathQuery,
    path_idx: usize,
    labels: &mut FxHashMap<String, LabelInfo>,
) -> Result<CPath> {
    let mut vsteps: Vec<CVStep> = Vec::new();
    let mut links: Vec<CLink> = Vec::new();

    let push_vstep = |vsteps: &mut Vec<CVStep>,
                      step: &ast::VertexStep,
                      labels: &mut FxHashMap<String, LabelInfo>|
     -> Result<()> {
        let addr = StepAddr {
            path: path_idx,
            vstep: vsteps.len(),
        };
        let cv = compile_vertex_step(ctx, step, addr, labels)?;
        if let Some((kind, name)) = &cv.label_def {
            if labels.contains_key(name) {
                return Err(GraqlError::path(format!("label '{name}' defined twice")));
            }
            labels.insert(
                name.clone(),
                LabelInfo {
                    kind: *kind,
                    def: addr,
                },
            );
        }
        vsteps.push(cv);
        Ok(())
    };

    push_vstep(&mut vsteps, &path.head, labels)?;
    for seg in &path.segments {
        match seg {
            Segment::Hop { edge, vertex } => {
                links.push(CLink::Edge(compile_edge_step(ctx, edge)?));
                push_vstep(&mut vsteps, vertex, labels)?;
            }
            Segment::Group {
                hops, quant, exit, ..
            } => {
                let mut chops = Vec::new();
                for (e, v) in hops {
                    if v.label_def.is_some() || e.label_def.is_some() {
                        return Err(GraqlError::path(
                            "labels inside path regular expressions are not supported",
                        ));
                    }
                    if v.seed.is_some() {
                        return Err(GraqlError::path(
                            "seeds inside path groups are not supported",
                        ));
                    }
                    let addr = StepAddr {
                        path: path_idx,
                        vstep: usize::MAX,
                    };
                    let mut cv = compile_vertex_step(ctx, v, addr, labels)?;
                    if cv.label_ref.is_some() {
                        return Err(GraqlError::path(
                            "label references inside path groups are not supported",
                        ));
                    }
                    // Hop conditions compile here (the later pass only
                    // covers top-level steps).
                    if let Some(cond) = &v.cond {
                        if cv.is_any {
                            return Err(GraqlError::path(
                                "conditions are not allowed on variant ([ ]) vertex steps",
                            ));
                        }
                        for vt in cv.domain.clone() {
                            let table = ctx.vtable(vt);
                            check_many_to_one_cols(cond, ctx.graph.vset(vt), table)?;
                            let quals: Vec<&str> = vec![&cv.display];
                            cv.local.insert(
                                vt,
                                compile_single_table(cond, table.schema(), &quals, ctx.params)?,
                            );
                        }
                    }
                    chops.push((compile_edge_step(ctx, e)?, cv));
                }
                let cap = ctx.regex_cap.max(1);
                let (lo, hi) = quant.bounds(cap);
                // Explicit ranges are honored up to the cap (guarding
                // against pathological `{0,1000000000}` requests).
                let hi = hi.min(lo.saturating_add(cap));
                links.push(CLink::Group(CGroup {
                    hops: chops,
                    lo,
                    hi,
                }));
                // The step after a group is its explicit exit, or a
                // synthetic unconstrained step typed like the group's last
                // hop vertex.
                match exit {
                    Some(v) => push_vstep(&mut vsteps, v, labels)?,
                    None => {
                        let last = &links
                            .last()
                            .and_then(|l| match l {
                                CLink::Group(g) => g.hops.last(),
                                _ => None,
                            })
                            .expect("group was just pushed")
                            .1;
                        vsteps.push(CVStep {
                            domain: last.domain.clone(),
                            is_any: true,
                            local: FxHashMap::default(),
                            binding_conds: Vec::new(),
                            label_def: None,
                            label_ref: None,
                            seed: None,
                            display: format!("exit{}", vsteps.len()),
                        });
                    }
                }
            }
        }
    }

    let mut cpath = CPath { vsteps, links };
    narrow_domains(ctx.graph, &mut cpath)?;
    compile_local_conds(ctx, &mut cpath, path, path_idx, labels)?;
    Ok(cpath)
}

fn compile_vertex_step(
    ctx: &CompileCtx<'_>,
    step: &ast::VertexStep,
    _addr: StepAddr,
    labels: &FxHashMap<String, LabelInfo>,
) -> Result<CVStep> {
    let (domain, is_any, label_ref, display) = match &step.name {
        StepName::Any => (all_vtypes(ctx.graph), true, None, "[]".to_string()),
        StepName::Named(n) => {
            if labels.contains_key(n) {
                // A reference to an earlier label: domain resolved later.
                (Vec::new(), false, Some(n.clone()), n.clone())
            } else {
                let vt = ctx.graph.vtype(n).ok_or_else(|| {
                    GraqlError::name(format!("unknown vertex type or label '{n}'"))
                })?;
                (vec![vt], false, None, n.clone())
            }
        }
    };
    Ok(CVStep {
        domain,
        is_any,
        local: FxHashMap::default(),
        binding_conds: Vec::new(), // conditions compiled in a later pass
        label_def: step.label_def.as_ref().map(|l| (l.kind, l.name.clone())),
        label_ref,
        seed: step.seed.clone(),
        display,
    })
}

fn compile_edge_step(ctx: &CompileCtx<'_>, step: &ast::EdgeStep) -> Result<CEStep> {
    let (domain, display) = match &step.name {
        StepName::Any => {
            if step.cond.is_some() {
                // §II-B4: "conditional expressions for variant query steps
                // are not allowed".
                return Err(GraqlError::path(
                    "conditions are not allowed on variant ([ ]) edge steps",
                ));
            }
            (None, "[]".to_string())
        }
        StepName::Named(n) => {
            let et = ctx
                .graph
                .etype(n)
                .ok_or_else(|| GraqlError::name(format!("unknown edge type '{n}'")))?;
            (Some(vec![et]), n.clone())
        }
    };
    let mut local = FxHashMap::default();
    if let Some(cond) = &step.cond {
        let ets = domain.as_ref().expect("variant steps rejected above");
        for &et in ets {
            let table = ctx.etable(et).ok_or_else(|| {
                GraqlError::type_error(format!(
                    "edge type '{display}' has no attributes; conditions are not applicable"
                ))
            })?;
            let quals: Vec<&str> = vec![&display];
            local.insert(
                et,
                compile_single_table(cond, table.schema(), &quals, ctx.params)?,
            );
        }
    }
    Ok(CEStep {
        domain,
        dir: step.dir,
        local,
        label_def: step.label_def.as_ref().map(|l| (l.kind, l.name.clone())),
        display,
    })
}

/// Narrows variant vertex domains through edge endpoint types, iterating
/// to a fixpoint (a variant step between two concrete edges can only hold
/// types those edges connect).
fn narrow_domains(g: &Graph, path: &mut CPath) -> Result<()> {
    loop {
        let mut changed = false;
        for (i, link) in path.links.iter().enumerate() {
            let CLink::Edge(e) = link else { continue };
            let (src_of_link, tgt_of_link) = match e.dir {
                Dir::Out => (i, i + 1),
                Dir::In => (i + 1, i),
            };
            // Skip narrowing around label references (resolved later).
            if path.vsteps[src_of_link].label_ref.is_some()
                || path.vsteps[tgt_of_link].label_ref.is_some()
            {
                continue;
            }
            let etypes: Vec<ETypeId> = match &e.domain {
                Some(d) => d.clone(),
                None => g.etype_ids().collect(),
            };
            let src_dom: Vec<VTypeId> = path.vsteps[src_of_link].domain.clone();
            let tgt_dom: Vec<VTypeId> = path.vsteps[tgt_of_link].domain.clone();
            let feasible: Vec<ETypeId> = etypes
                .iter()
                .copied()
                .filter(|&et| {
                    let es = g.eset(et);
                    src_dom.contains(&es.src_type) && tgt_dom.contains(&es.tgt_type)
                })
                .collect();
            let new_src: Vec<VTypeId> = src_dom
                .iter()
                .copied()
                .filter(|&vt| feasible.iter().any(|&et| g.eset(et).src_type == vt))
                .collect();
            let new_tgt: Vec<VTypeId> = tgt_dom
                .iter()
                .copied()
                .filter(|&vt| feasible.iter().any(|&et| g.eset(et).tgt_type == vt))
                .collect();
            if new_src.len() != src_dom.len() {
                path.vsteps[src_of_link].domain = new_src;
                changed = true;
            }
            if new_tgt.len() != tgt_dom.len() {
                path.vsteps[tgt_of_link].domain = new_tgt;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // A concrete (named) step whose domain emptied means the edge cannot
    // connect the declared types — a static path error.
    for (i, v) in path.vsteps.iter().enumerate() {
        if v.domain.is_empty() && v.label_ref.is_none() {
            return Err(GraqlError::path(format!(
                "step {} ({}) cannot be reached by any edge type in the path",
                i, v.display
            )));
        }
    }
    Ok(())
}

/// Compiles vertex-step conditions: conjuncts over the step's own
/// attributes become per-type physical predicates; conjuncts referencing
/// labels become binding conditions.
fn compile_local_conds(
    ctx: &CompileCtx<'_>,
    cpath: &mut CPath,
    path: &ast::PathQuery,
    path_idx: usize,
    labels: &FxHashMap<String, LabelInfo>,
) -> Result<()> {
    // Collect the surface vertex steps aligned with cpath.vsteps.
    let mut surface: Vec<Option<&ast::VertexStep>> = Vec::new();
    surface.push(Some(&path.head));
    for seg in &path.segments {
        match seg {
            Segment::Hop { vertex, .. } => surface.push(Some(vertex)),
            Segment::Group { exit, .. } => surface.push(exit.as_ref()),
        }
    }
    debug_assert_eq!(surface.len(), cpath.vsteps.len());

    for (vi, (cv, sv)) in cpath.vsteps.iter_mut().zip(&surface).enumerate() {
        let Some(sv) = sv else { continue };
        let Some(cond) = &sv.cond else { continue };
        if cv.is_any {
            // §II-B4 again, vertex flavor.
            return Err(GraqlError::path(
                "conditions are not allowed on variant ([ ]) vertex steps",
            ));
        }
        let addr = StepAddr {
            path: path_idx,
            vstep: vi,
        };
        let mut conjuncts = Vec::new();
        flatten_and(cond, &mut conjuncts);
        let mut local_parts: Vec<&ast::Expr> = Vec::new();
        for c in conjuncts {
            if references_label(c, labels) {
                cv.binding_conds
                    .push(compile_binding_cond(ctx, c, addr, labels)?);
            } else {
                local_parts.push(c);
            }
        }
        if !local_parts.is_empty() {
            let merged = ast::Expr::And(local_parts.into_iter().cloned().collect());
            // Conditions on a label-reference step are rejected below, so
            // an empty domain simply skips the per-type compilation loop.
            let domain = if cv.label_ref.is_some() {
                Vec::new()
            } else {
                cv.domain.clone()
            };
            for vt in domain {
                let table = ctx.vtable(vt);
                let vset = ctx.graph.vset(vt);
                check_many_to_one_cols(&merged, vset, table)?;
                let quals: Vec<&str> = vec![&cv.display];
                cv.local.insert(
                    vt,
                    compile_single_table(&merged, table.schema(), &quals, ctx.params)?,
                );
            }
            if cv.label_ref.is_some() {
                return Err(GraqlError::path(format!(
                    "conditions on label-reference step {:?} are not supported; \
                     put them on the defining step",
                    cv.display
                )));
            }
        }
    }
    Ok(())
}

/// Many-to-one vertex types only expose their key columns (the other
/// attributes are not single-valued per vertex).
fn check_many_to_one_cols(
    expr: &ast::Expr,
    vset: &graql_graph::VertexSet,
    table: &Table,
) -> Result<()> {
    if vset.mapping.is_one_to_one() {
        return Ok(());
    }
    let mut err = None;
    for_each_attr(expr, &mut |_, name| {
        if err.is_none() {
            if let Some(c) = table.schema().index_of(name) {
                if !vset.key_cols.contains(&c) {
                    err = Some(GraqlError::type_error(format!(
                        "attribute '{name}' of many-to-one vertex type {} is not single-valued",
                        vset.name
                    )));
                }
            }
        }
    });
    err.map_or(Ok(()), Err)
}

fn compile_binding_cond(
    ctx: &CompileCtx<'_>,
    expr: &ast::Expr,
    here: StepAddr,
    labels: &FxHashMap<String, LabelInfo>,
) -> Result<BindingCond> {
    let ast::Expr::Cmp { op, lhs, rhs, .. } = expr else {
        return Err(GraqlError::path(
            "label references must appear in simple comparisons (no nested and/or/not)",
        ));
    };
    let comp = |o: &ast::Operand| -> Result<BOperand> {
        Ok(match o {
            ast::Operand::Attr {
                qualifier: Some(q),
                name,
            } => {
                let info = labels
                    .get(q)
                    .ok_or_else(|| GraqlError::name(format!("unknown label '{q}' in condition")))?;
                BOperand::Attr {
                    addr: info.def,
                    name: name.clone(),
                }
            }
            ast::Operand::Attr {
                qualifier: None,
                name,
            } => BOperand::Attr {
                addr: here,
                name: name.clone(),
            },
            ast::Operand::Lit(l) => BOperand::Const(lit_value(l, ctx.params)?),
        })
    };
    Ok(BindingCond {
        op: *op,
        lhs: comp(lhs)?,
        rhs: comp(rhs)?,
    })
}

fn references_label(expr: &ast::Expr, labels: &FxHashMap<String, LabelInfo>) -> bool {
    let mut found = false;
    for_each_attr(expr, &mut |q, _| {
        if let Some(q) = q {
            if labels.contains_key(q) {
                found = true;
            }
        }
    });
    found
}

fn flatten_and<'e>(e: &'e ast::Expr, out: &mut Vec<&'e ast::Expr>) {
    match e {
        ast::Expr::And(parts) => parts.iter().for_each(|p| flatten_and(p, out)),
        other => out.push(other),
    }
}

fn for_each_attr(e: &ast::Expr, f: &mut dyn FnMut(&Option<String>, &str)) {
    match e {
        ast::Expr::And(parts) | ast::Expr::Or(parts) => {
            parts.iter().for_each(|p| for_each_attr(p, f))
        }
        ast::Expr::Not(inner) => for_each_attr(inner, f),
        ast::Expr::Cmp { lhs, rhs, .. } => {
            for o in [lhs, rhs] {
                if let ast::Operand::Attr { qualifier, name } = o {
                    f(qualifier, name);
                }
            }
        }
    }
}

/// Gives label-reference steps the domain of their defining step, and
/// checks every reference resolves.
fn propagate_label_domains(q: &mut CQuery) -> Result<()> {
    let mut domains: FxHashMap<String, Vec<VTypeId>> = FxHashMap::default();
    for (name, info) in &q.labels {
        domains.insert(
            name.clone(),
            q.paths[info.def.path].vsteps[info.def.vstep].domain.clone(),
        );
    }
    for p in &mut q.paths {
        for v in &mut p.vsteps {
            if let Some(name) = &v.label_ref {
                let dom = domains.get(name).ok_or_else(|| {
                    GraqlError::path(format!("label '{name}' referenced before definition"))
                })?;
                v.domain = dom.clone();
            }
        }
    }
    Ok(())
}

/// Splits a composition into its `or` branches, each an and-flattened list
/// of simple paths. `or` nested under `and` is rejected (not required by
/// any paper construct).
pub fn or_branches(comp: &ast::PathComposition) -> Result<Vec<Vec<&ast::PathQuery>>> {
    fn and_paths<'a>(c: &'a ast::PathComposition, out: &mut Vec<&'a ast::PathQuery>) -> Result<()> {
        match c {
            ast::PathComposition::Single(p) => {
                out.push(p);
                Ok(())
            }
            ast::PathComposition::And(parts) => parts.iter().try_for_each(|p| and_paths(p, out)),
            ast::PathComposition::Or(_) => Err(GraqlError::path(
                "'or' may not be nested under 'and' in a path composition",
            )),
        }
    }
    match comp {
        ast::PathComposition::Or(parts) => parts
            .iter()
            .map(|p| {
                let mut out = Vec::new();
                and_paths(p, &mut out)?;
                Ok(out)
            })
            .collect(),
        other => {
            let mut out = Vec::new();
            and_paths(other, &mut out)?;
            Ok(vec![out])
        }
    }
}

/// Upper bound applied to unbounded (`*`/`+`) regex quantifiers. Frontier
/// expansion also stops early at a fixpoint, so this only matters for
/// pathological graphs with longer simple paths.
pub const REGEX_CAP: u32 = 64;
