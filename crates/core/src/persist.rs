//! Saving and loading a database to/from a directory.
//!
//! The paper trades "data capacity and persistence of storage" for DRAM
//! performance — GEMS assumes sources live on a parallel filesystem and
//! the database is rebuilt by ingest. This module implements exactly that
//! model: `save_dir` writes the catalog back out as a GraQL DDL script
//! (via the pretty-printer) plus one CSV per base table; `load_dir`
//! replays them. Graph views and named results are *not* persisted — they
//! regenerate from the definitions, which is the design's point.
//!
//! Saves are crash-safe. `save_dir` stages the whole snapshot in a
//! temporary sibling directory, fsyncs every file and the directory
//! itself, then commits with a rename — a crash at any point leaves the
//! previous snapshot loadable (mid-commit, the worst case is a leftover
//! `.old`/`.tmp` sibling next to an intact snapshot). Each snapshot
//! carries a `MANIFEST` of FNV-1a content checksums that [`load_dir`]
//! verifies before replaying anything, so a torn or tampered snapshot is
//! a typed [`GraqlError::Ingest`], never a half-loaded database.

use std::io::Write;
use std::path::{Path, PathBuf};

use graql_parser::ast;
use graql_types::{GraqlError, Result};

use crate::database::Database;

const CATALOG_FILE: &str = "catalog.graql";
const MANIFEST_FILE: &str = "MANIFEST";
const STATS_FILE: &str = "catalog.stats";

/// FNV-1a over a file's contents — the same cheap, dependency-free hash
/// the failpoint registry uses for site seeds. Not cryptographic; it
/// detects torn writes and bit rot, not adversaries.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` and fsyncs the file, so the data is durable
/// before the commit rename makes it visible.
fn write_synced(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Fsyncs a directory so that renames/creates inside it are durable.
/// Directory fsync is a unix-ism; elsewhere this is a best-effort no-op.
pub(crate) fn sync_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(path)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Writes `db`'s schema (as GraQL DDL) and every base table (as CSV) into
/// `dir`, creating it if needed. The snapshot is staged in a temporary
/// sibling directory and committed atomically; on any error (including an
/// injected `core/persist/save-commit` fault) the previous contents of
/// `dir` are untouched.
pub fn save_dir(db: &Database, dir: &Path) -> Result<()> {
    graql_types::failpoint!("core/persist/save-io", GraqlError::ingest);
    let io = |e: std::io::Error| GraqlError::ingest(format!("save: {e}"));

    // Reconstruct the DDL script from the catalog.
    let mut script = ast::Script::default();
    let catalog = db.catalog();
    for name in catalog.table_names() {
        let schema = catalog.table(name).expect("listed tables exist");
        script
            .statements
            .push(ast::Stmt::CreateTable(ast::CreateTable {
                name: name.clone(),
                columns: schema
                    .columns()
                    .iter()
                    .map(|c| Ok((c.name.clone(), type_name(name, &c.name, c.dtype)?)))
                    .collect::<Result<Vec<_>>>()?,
                span: ast::Span::default(),
            }));
    }
    for name in catalog.vertex_names() {
        let def = catalog.vertex(name).expect("listed vertices exist");
        script
            .statements
            .push(ast::Stmt::CreateVertex(ast::CreateVertex {
                name: def.name.clone(),
                key: def.key.clone(),
                from_table: def.table.clone(),
                where_clause: def.where_clause.clone(),
                span: ast::Span::default(),
            }));
    }
    for name in catalog.edge_names() {
        let def = catalog.edge(name).expect("listed edges exist");
        script
            .statements
            .push(ast::Stmt::CreateEdge(ast::CreateEdge {
                name: def.name.clone(),
                source: ast::EdgeEndpoint {
                    vertex_type: def.src_type.clone(),
                    alias: def.src_alias.clone(),
                },
                target: ast::EdgeEndpoint {
                    vertex_type: def.tgt_type.clone(),
                    alias: def.tgt_alias.clone(),
                },
                from_tables: def.from_tables.clone(),
                where_clause: def.where_clause.clone(),
                span: ast::Span::default(),
            }));
    }
    // Ingest statements replay the data on load.
    for name in catalog.table_names() {
        script.statements.push(ast::Stmt::Ingest(ast::Ingest {
            table: name.clone(),
            path: format!("{name}.csv"),
            span: ast::Span::default(),
        }));
    }
    // Materialize every snapshot file in memory first, so any encoding
    // error aborts before a byte touches disk.
    let mut files: Vec<(String, Vec<u8>)> =
        vec![(CATALOG_FILE.to_string(), script.to_string().into_bytes())];
    for name in catalog.table_names() {
        let table = db.table(name).expect("catalog and storage are consistent");
        let mut buf = Vec::new();
        graql_table::csv::write_csv(table, &mut buf)?;
        files.push((format!("{name}.csv"), buf));
    }
    // The catalog statistics store rides along when populated, so a
    // loaded snapshot can feed degree-based lints and cost estimates
    // without rebuilding the graph first.
    if let Some(stats) = db.catalog_stats_ref() {
        files.push((STATS_FILE.to_string(), stats.to_text().into_bytes()));
    }
    let mut manifest = String::new();
    for (name, bytes) in &files {
        manifest.push_str(&format!("{:016x}  {name}\n", fnv1a64(bytes)));
    }

    // Stage in a sibling directory so the commit rename never crosses a
    // filesystem boundary.
    let staged = stage_paths(dir)?;
    if let Some(parent) = dir.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(io)?;
    }
    let _ = std::fs::remove_dir_all(&staged.tmp);
    std::fs::create_dir_all(&staged.tmp).map_err(io)?;
    let staged_result = (|| -> Result<()> {
        for (name, bytes) in &files {
            write_synced(&staged.tmp.join(name), bytes).map_err(io)?;
        }
        write_synced(&staged.tmp.join(MANIFEST_FILE), manifest.as_bytes()).map_err(io)?;
        sync_dir(&staged.tmp).map_err(io)?;
        // The fault site sits between "snapshot fully staged" and "commit
        // rename": a crash here must leave any previous snapshot intact.
        graql_types::failpoint!("core/persist/save-commit", GraqlError::ingest);
        commit(&staged, dir).map_err(io)
    })();
    if staged_result.is_err() {
        let _ = std::fs::remove_dir_all(&staged.tmp);
    }
    staged_result
}

struct StagePaths {
    tmp: PathBuf,
    old: PathBuf,
}

/// The temporary and graveyard siblings of `dir` used by the staged
/// commit. Process-id suffixes keep concurrent savers out of each other's
/// way.
fn stage_paths(dir: &Path) -> Result<StagePaths> {
    let name = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| GraqlError::ingest(format!("save: bad snapshot path {}", dir.display())))?;
    let parent = dir.parent().unwrap_or(Path::new("."));
    let pid = std::process::id();
    Ok(StagePaths {
        tmp: parent.join(format!("{name}.tmp.{pid}")),
        old: parent.join(format!("{name}.old.{pid}")),
    })
}

/// Swaps the staged snapshot into place. `rename` cannot replace a
/// non-empty directory, so an existing snapshot is moved aside first; the
/// window between the two renames is the only non-atomic instant, and a
/// crash inside it leaves the complete old snapshot under `.old.<pid>`
/// rather than losing data.
fn commit(staged: &StagePaths, dir: &Path) -> std::io::Result<()> {
    let had_old = dir.exists();
    if had_old {
        std::fs::rename(dir, &staged.old)?;
    }
    std::fs::rename(&staged.tmp, dir)?;
    sync_dir(dir.parent().unwrap_or(Path::new(".")))?;
    if had_old {
        std::fs::remove_dir_all(&staged.old)?;
    }
    Ok(())
}

/// Loads a database previously written by [`save_dir`].
///
/// If the snapshot carries a `MANIFEST` (every snapshot written by this
/// version does), each listed file's FNV-1a checksum is verified before a
/// single statement is replayed; a missing or corrupt file is a typed
/// [`GraqlError::Ingest`]. Manifest-less directories are accepted as
/// legacy/hand-authored snapshots and loaded unverified.
pub fn load_dir(dir: &Path) -> Result<Database> {
    graql_types::failpoint!("core/persist/load-io", GraqlError::ingest);
    if let Ok(manifest) = std::fs::read_to_string(dir.join(MANIFEST_FILE)) {
        verify_manifest(dir, &manifest)?;
    }
    let script = std::fs::read_to_string(dir.join(CATALOG_FILE))
        .map_err(|e| GraqlError::ingest(format!("load: {e}")))?;
    let mut db = Database::new();
    db.set_data_dir(dir);
    db.execute_script(&script)?;
    // Statistics are optional (older snapshots don't carry them); when
    // present they restore the degree/NDV store without a graph build.
    if let Ok(text) = std::fs::read_to_string(dir.join(STATS_FILE)) {
        db.install_catalog_stats(crate::catalog::CatalogStats::parse(&text)?);
    }
    Ok(db)
}

fn verify_manifest(dir: &Path, manifest: &str) -> Result<()> {
    for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
        let (want, name) = line
            .split_once("  ")
            .ok_or_else(|| GraqlError::ingest(format!("load: malformed manifest line {line:?}")))?;
        let want = u64::from_str_radix(want, 16)
            .map_err(|_| GraqlError::ingest(format!("load: malformed manifest line {line:?}")))?;
        let bytes = std::fs::read(dir.join(name)).map_err(|e| {
            GraqlError::ingest(format!("load: torn snapshot: cannot read {name}: {e}"))
        })?;
        let got = fnv1a64(&bytes);
        if got != want {
            return Err(GraqlError::ingest(format!(
                "load: torn snapshot: {name} checksum mismatch \
                 (manifest {want:016x}, file {got:016x})"
            )));
        }
    }
    Ok(())
}

/// Maps a catalog column type back to DDL. Inferred string columns carry
/// the internal width-0 sentinel (`varchar(0)`), which the grammar cannot
/// express — persisting it as `varchar(1)` would silently change the
/// schema on round-trip, so it is rejected instead.
fn type_name(table: &str, col: &str, dt: graql_types::DataType) -> Result<ast::TypeName> {
    match dt {
        graql_types::DataType::Integer => Ok(ast::TypeName::Integer),
        graql_types::DataType::Float => Ok(ast::TypeName::Float),
        graql_types::DataType::Varchar(0) => Err(GraqlError::ingest(format!(
            "save: column {table}.{col} has an inferred string type (varchar width 0) \
             that DDL cannot express; declare an explicit varchar(n) width"
        ))),
        graql_types::DataType::Varchar(n) => Ok(ast::TypeName::Varchar(n)),
        graql_types::DataType::Date => Ok(ast::TypeName::Date),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("graql_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "create table P(id varchar(8), parent varchar(8), score float, born date)
             create vertex PV(id) from table P where score > 0.0
             create edge up with vertices (PV as A, PV as B) where A.parent = B.id",
        )
        .unwrap();
        db.ingest_str(
            "P",
            "a,,1.5,2001-01-01\nb,a,2.25,2002-02-02\nc,a,-1.0,2003-03-03\n\"d,x\",b,0.5,2004-04-04\n",
        )
        .unwrap();
        db
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("rt");
        let mut db = sample();
        save_dir(&db, &dir).unwrap();
        let mut back = load_dir(&dir).unwrap();
        // Tables equal.
        let (t1, t2) = (db.table("P").unwrap(), back.table("P").unwrap());
        assert_eq!(t1.n_rows(), t2.n_rows());
        for r in 0..t1.n_rows() {
            assert_eq!(t1.row(r), t2.row(r), "row {r}");
        }
        // Views regenerate identically — including the vertex filter
        // (score > 0 excludes c) and the FK edge.
        let g1 = db.graph().unwrap();
        let n1 = (g1.n_vertices(), g1.n_edges());
        let g2 = back.graph().unwrap();
        assert_eq!(n1, (g2.n_vertices(), g2.n_edges()));
        assert_eq!(g2.vset(g2.vtype("PV").unwrap()).len(), 3, "c filtered out");
        // And queries agree.
        let q = "select B.id from graph PV() --up--> def B: PV()";
        let crate::database::StmtOutput::Table(r1) = db.execute_str(q).unwrap() else {
            panic!()
        };
        let crate::database::StmtOutput::Table(r2) = back.execute_str(q).unwrap() else {
            panic!()
        };
        assert_eq!(r1.n_rows(), r2.n_rows());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_catalog_is_valid_graql() {
        let dir = tmpdir("ddl");
        save_dir(&sample(), &dir).unwrap();
        let text = std::fs::read_to_string(dir.join(CATALOG_FILE)).unwrap();
        let script = graql_parser::parse(&text).unwrap();
        // 1 table + 1 vertex + 1 edge + 1 ingest.
        assert_eq!(script.statements.len(), 4);
        assert!(
            text.contains("where score > 0.0"),
            "filters persist: {text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_fails_cleanly() {
        let err = load_dir(Path::new("/nonexistent-graql-persist")).unwrap_err();
        assert!(matches!(err, GraqlError::Ingest(_)));
    }

    #[test]
    fn save_writes_manifest_and_load_verifies_it() {
        let dir = tmpdir("manifest");
        save_dir(&sample(), &dir).unwrap();
        let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        assert!(manifest.contains("catalog.graql"), "{manifest}");
        assert!(manifest.contains("P.csv"), "{manifest}");
        load_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_snapshot_is_a_typed_error() {
        let dir = tmpdir("torn");
        save_dir(&sample(), &dir).unwrap();
        // Tear the data file the way a crash mid-write would: truncate it.
        let csv = dir.join("P.csv");
        let bytes = std::fs::read(&csv).unwrap();
        std::fs::write(&csv, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(matches!(err, GraqlError::Ingest(_)), "{err}");
        assert!(err.to_string().contains("torn snapshot"), "{err}");
        // A missing file is the same class of failure.
        std::fs::remove_file(&csv).unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("torn snapshot"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_previous_snapshot_atomically() {
        let dir = tmpdir("replace");
        let mut db = sample();
        save_dir(&db, &dir).unwrap();
        db.ingest_str("P", "e,a,9.0,2005-05-05\n").unwrap();
        save_dir(&db, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.table("P").unwrap().n_rows(), 5);
        // No staging litter survives a successful save.
        let parent = dir.parent().unwrap();
        for entry in std::fs::read_dir(parent).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                !(name.contains(".tmp.") || name.contains(".old.")),
                "staging litter: {name}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inferred_varchar0_is_rejected_not_widened() {
        // The grammar cannot write `varchar(0)`, so persisting the
        // internal sentinel would corrupt the schema on round-trip.
        let err = type_name("T", "c", graql_types::DataType::Varchar(0)).unwrap_err();
        assert!(matches!(err, GraqlError::Ingest(_)));
        assert!(err.to_string().contains("T.c"), "{err}");
        assert_eq!(
            type_name("T", "c", graql_types::DataType::Varchar(7)).unwrap(),
            ast::TypeName::Varchar(7)
        );
    }

    /// The crash-safety contract: a save that dies after staging but
    /// before the commit rename leaves the previous snapshot fully
    /// loadable and no staging directory behind.
    #[cfg(feature = "failpoints")]
    #[test]
    fn crash_during_save_keeps_old_snapshot() {
        let dir = tmpdir("crash");
        let mut db = sample();
        save_dir(&db, &dir).unwrap();
        db.ingest_str("P", "e,a,9.0,2005-05-05\n").unwrap();
        graql_types::failpoints::configure("core/persist/save-commit", "1*err").unwrap();
        let err = save_dir(&db, &dir).unwrap_err();
        graql_types::failpoints::disarm("core/persist/save-commit");
        assert!(matches!(err, GraqlError::Ingest(_)), "{err}");
        // The old 4-row snapshot survives, checksums intact.
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.table("P").unwrap().n_rows(), 4);
        assert!(
            !dir.parent()
                .unwrap()
                .join(format!(
                    "{}.tmp.{}",
                    dir.file_name().unwrap().to_string_lossy(),
                    std::process::id()
                ))
                .exists(),
            "staging dir cleaned up after failed commit"
        );
        // And a retry (fault cleared) commits the new snapshot.
        save_dir(&db, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert_eq!(back.table("P").unwrap().n_rows(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn results_are_not_persisted() {
        let dir = tmpdir("res");
        let mut db = sample();
        db.execute_str("select id from table P into table Snapshot")
            .unwrap();
        assert!(db.result_table("Snapshot").is_some());
        save_dir(&db, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert!(
            back.result_table("Snapshot").is_none(),
            "results regenerate, not persist"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
