//! Saving and loading a database to/from a directory.
//!
//! The paper trades "data capacity and persistence of storage" for DRAM
//! performance — GEMS assumes sources live on a parallel filesystem and
//! the database is rebuilt by ingest. This module implements exactly that
//! model: `save_dir` writes the catalog back out as a GraQL DDL script
//! (via the pretty-printer) plus one CSV per base table; `load_dir`
//! replays them. Graph views and named results are *not* persisted — they
//! regenerate from the definitions, which is the design's point.

use std::path::Path;

use graql_parser::ast;
use graql_types::{GraqlError, Result};

use crate::database::Database;

const CATALOG_FILE: &str = "catalog.graql";

/// Writes `db`'s schema (as GraQL DDL) and every base table (as CSV) into
/// `dir`, creating it if needed.
pub fn save_dir(db: &Database, dir: &Path) -> Result<()> {
    graql_types::failpoint!("core/persist/save-io", GraqlError::ingest);
    let io = |e: std::io::Error| GraqlError::ingest(format!("save: {e}"));
    std::fs::create_dir_all(dir).map_err(io)?;

    // Reconstruct the DDL script from the catalog.
    let mut script = ast::Script::default();
    let catalog = db.catalog();
    for name in catalog.table_names() {
        let schema = catalog.table(name).expect("listed tables exist");
        script
            .statements
            .push(ast::Stmt::CreateTable(ast::CreateTable {
                name: name.clone(),
                columns: schema
                    .columns()
                    .iter()
                    .map(|c| (c.name.clone(), type_name(c.dtype)))
                    .collect(),
                span: ast::Span::default(),
            }));
    }
    for name in catalog.vertex_names() {
        let def = catalog.vertex(name).expect("listed vertices exist");
        script
            .statements
            .push(ast::Stmt::CreateVertex(ast::CreateVertex {
                name: def.name.clone(),
                key: def.key.clone(),
                from_table: def.table.clone(),
                where_clause: def.where_clause.clone(),
                span: ast::Span::default(),
            }));
    }
    for name in catalog.edge_names() {
        let def = catalog.edge(name).expect("listed edges exist");
        script
            .statements
            .push(ast::Stmt::CreateEdge(ast::CreateEdge {
                name: def.name.clone(),
                source: ast::EdgeEndpoint {
                    vertex_type: def.src_type.clone(),
                    alias: def.src_alias.clone(),
                },
                target: ast::EdgeEndpoint {
                    vertex_type: def.tgt_type.clone(),
                    alias: def.tgt_alias.clone(),
                },
                from_tables: def.from_tables.clone(),
                where_clause: def.where_clause.clone(),
                span: ast::Span::default(),
            }));
    }
    // Ingest statements replay the data on load.
    for name in catalog.table_names() {
        script.statements.push(ast::Stmt::Ingest(ast::Ingest {
            table: name.clone(),
            path: format!("{name}.csv"),
            span: ast::Span::default(),
        }));
    }
    std::fs::write(dir.join(CATALOG_FILE), script.to_string()).map_err(io)?;

    for name in catalog.table_names() {
        let table = db.table(name).expect("catalog and storage are consistent");
        let mut buf = Vec::new();
        graql_table::csv::write_csv(table, &mut buf)?;
        std::fs::write(dir.join(format!("{name}.csv")), buf).map_err(io)?;
    }
    Ok(())
}

/// Loads a database previously written by [`save_dir`].
pub fn load_dir(dir: &Path) -> Result<Database> {
    graql_types::failpoint!("core/persist/load-io", GraqlError::ingest);
    let script = std::fs::read_to_string(dir.join(CATALOG_FILE))
        .map_err(|e| GraqlError::ingest(format!("load: {e}")))?;
    let mut db = Database::new();
    db.set_data_dir(dir);
    db.execute_script(&script)?;
    Ok(db)
}

fn type_name(dt: graql_types::DataType) -> ast::TypeName {
    match dt {
        graql_types::DataType::Integer => ast::TypeName::Integer,
        graql_types::DataType::Float => ast::TypeName::Float,
        graql_types::DataType::Varchar(n) => ast::TypeName::Varchar(n.max(1)),
        graql_types::DataType::Date => ast::TypeName::Date,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("graql_persist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "create table P(id varchar(8), parent varchar(8), score float, born date)
             create vertex PV(id) from table P where score > 0.0
             create edge up with vertices (PV as A, PV as B) where A.parent = B.id",
        )
        .unwrap();
        db.ingest_str(
            "P",
            "a,,1.5,2001-01-01\nb,a,2.25,2002-02-02\nc,a,-1.0,2003-03-03\n\"d,x\",b,0.5,2004-04-04\n",
        )
        .unwrap();
        db
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmpdir("rt");
        let mut db = sample();
        save_dir(&db, &dir).unwrap();
        let mut back = load_dir(&dir).unwrap();
        // Tables equal.
        let (t1, t2) = (db.table("P").unwrap(), back.table("P").unwrap());
        assert_eq!(t1.n_rows(), t2.n_rows());
        for r in 0..t1.n_rows() {
            assert_eq!(t1.row(r), t2.row(r), "row {r}");
        }
        // Views regenerate identically — including the vertex filter
        // (score > 0 excludes c) and the FK edge.
        let g1 = db.graph().unwrap();
        let n1 = (g1.n_vertices(), g1.n_edges());
        let g2 = back.graph().unwrap();
        assert_eq!(n1, (g2.n_vertices(), g2.n_edges()));
        assert_eq!(g2.vset(g2.vtype("PV").unwrap()).len(), 3, "c filtered out");
        // And queries agree.
        let q = "select B.id from graph PV() --up--> def B: PV()";
        let crate::database::StmtOutput::Table(r1) = db.execute_str(q).unwrap() else {
            panic!()
        };
        let crate::database::StmtOutput::Table(r2) = back.execute_str(q).unwrap() else {
            panic!()
        };
        assert_eq!(r1.n_rows(), r2.n_rows());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_catalog_is_valid_graql() {
        let dir = tmpdir("ddl");
        save_dir(&sample(), &dir).unwrap();
        let text = std::fs::read_to_string(dir.join(CATALOG_FILE)).unwrap();
        let script = graql_parser::parse(&text).unwrap();
        // 1 table + 1 vertex + 1 edge + 1 ingest.
        assert_eq!(script.statements.len(), 4);
        assert!(
            text.contains("where score > 0.0"),
            "filters persist: {text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_dir_fails_cleanly() {
        let err = load_dir(Path::new("/nonexistent-graql-persist")).unwrap_err();
        assert!(matches!(err, GraqlError::Ingest(_)));
    }

    #[test]
    fn results_are_not_persisted() {
        let dir = tmpdir("res");
        let mut db = sample();
        db.execute_str("select id from table P into table Snapshot")
            .unwrap();
        assert!(db.result_table("Snapshot").is_some());
        save_dir(&db, &dir).unwrap();
        let back = load_dir(&dir).unwrap();
        assert!(
            back.result_table("Snapshot").is_none(),
            "results regenerate, not persist"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
