//! The metadata catalog (paper §III: "a central metadata repository
//! (catalog) of all existing database objects (tables, vertices, edges)").
//!
//! The catalog holds *definitions only* — schemas and declaration ASTs —
//! so static analysis (§III-A) can run without touching data. Instance
//! counts live in [`graql_graph::GraphStats`], refreshed after ingest.

use graql_parser::ast;
use graql_table::TableSchema;
use graql_types::{GraqlError, Result};
use rustc_hash::FxHashMap;

/// Declaration of a vertex type (Eq. 1 ingredients).
#[derive(Debug, Clone, PartialEq)]
pub struct VertexDef {
    pub name: String,
    pub table: String,
    pub key: Vec<String>,
    pub where_clause: Option<ast::Expr>,
}

/// Declaration of an edge type (Eq. 2 ingredients).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDef {
    pub name: String,
    pub src_type: String,
    pub src_alias: Option<String>,
    pub tgt_type: String,
    pub tgt_alias: Option<String>,
    pub from_tables: Vec<String>,
    pub where_clause: Option<ast::Expr>,
}

/// Kind of a named database entity, for §III-A "entity of correct type"
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    Table,
    VertexType,
    EdgeType,
    /// A named result registered by `into table`.
    ResultTable,
    /// A named result registered by `into subgraph`.
    ResultSubgraph,
}

impl std::fmt::Display for EntityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EntityKind::Table => "table",
            EntityKind::VertexType => "vertex type",
            EntityKind::EdgeType => "edge type",
            EntityKind::ResultTable => "result table",
            EntityKind::ResultSubgraph => "result subgraph",
        };
        write!(f, "{s}")
    }
}

/// The front-end metadata catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: FxHashMap<String, TableSchema>,
    table_order: Vec<String>,
    vertices: FxHashMap<String, VertexDef>,
    vertex_order: Vec<String>,
    edges: FxHashMap<String, EdgeDef>,
    edge_order: Vec<String>,
    /// Schemas of named `into table` results (registered as statements are
    /// analyzed/executed, so later statements can be checked).
    result_tables: FxHashMap<String, TableSchema>,
    /// Names of registered `into subgraph` results.
    result_subgraphs: FxHashMap<String, ()>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// What kind of entity `name` denotes, if any.
    pub fn kind_of(&self, name: &str) -> Option<EntityKind> {
        if self.tables.contains_key(name) {
            Some(EntityKind::Table)
        } else if self.vertices.contains_key(name) {
            Some(EntityKind::VertexType)
        } else if self.edges.contains_key(name) {
            Some(EntityKind::EdgeType)
        } else if self.result_tables.contains_key(name) {
            Some(EntityKind::ResultTable)
        } else if self.result_subgraphs.contains_key(name) {
            Some(EntityKind::ResultSubgraph)
        } else {
            None
        }
    }

    fn check_fresh(&self, name: &str) -> Result<()> {
        if let Some(kind) = self.kind_of(name) {
            return Err(GraqlError::name(format!(
                "'{name}' already exists as a {kind}"
            )));
        }
        Ok(())
    }

    // -- tables --------------------------------------------------------------

    pub fn add_table(&mut self, name: &str, schema: TableSchema) -> Result<()> {
        self.check_fresh(name)?;
        self.tables.insert(name.to_string(), schema);
        self.table_order.push(name.to_string());
        Ok(())
    }

    /// Schema of a base table (not results).
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(name)
    }

    /// Schema of a base table *or* a named result table — what a
    /// `from table X` reference may denote.
    pub fn any_table(&self, name: &str) -> Option<&TableSchema> {
        self.tables
            .get(name)
            .or_else(|| self.result_tables.get(name))
    }

    pub fn require_any_table(&self, name: &str) -> Result<&TableSchema> {
        self.any_table(name)
            .ok_or_else(|| match self.kind_of(name) {
                Some(kind) => GraqlError::type_error(format!("'{name}' is a {kind}, not a table")),
                None => GraqlError::name(format!("unknown table '{name}'")),
            })
    }

    pub fn table_names(&self) -> &[String] {
        &self.table_order
    }

    // -- vertex / edge types ---------------------------------------------------

    pub fn add_vertex(&mut self, def: VertexDef) -> Result<()> {
        self.check_fresh(&def.name)?;
        self.vertex_order.push(def.name.clone());
        self.vertices.insert(def.name.clone(), def);
        Ok(())
    }

    pub fn vertex(&self, name: &str) -> Option<&VertexDef> {
        self.vertices.get(name)
    }

    pub fn require_vertex(&self, name: &str) -> Result<&VertexDef> {
        self.vertex(name).ok_or_else(|| match self.kind_of(name) {
            Some(kind) => {
                GraqlError::type_error(format!("'{name}' is a {kind}, not a vertex type"))
            }
            None => GraqlError::name(format!("unknown vertex type '{name}'")),
        })
    }

    pub fn vertex_names(&self) -> &[String] {
        &self.vertex_order
    }

    pub fn add_edge(&mut self, def: EdgeDef) -> Result<()> {
        self.check_fresh(&def.name)?;
        self.edge_order.push(def.name.clone());
        self.edges.insert(def.name.clone(), def);
        Ok(())
    }

    pub fn edge(&self, name: &str) -> Option<&EdgeDef> {
        self.edges.get(name)
    }

    pub fn require_edge(&self, name: &str) -> Result<&EdgeDef> {
        self.edge(name).ok_or_else(|| match self.kind_of(name) {
            Some(kind) => GraqlError::type_error(format!("'{name}' is a {kind}, not an edge type")),
            None => GraqlError::name(format!("unknown edge type '{name}'")),
        })
    }

    pub fn edge_names(&self) -> &[String] {
        &self.edge_order
    }

    // -- named results ----------------------------------------------------------

    /// Registers (or replaces) a named `into table` result schema.
    /// Re-registration under the same result name is allowed (re-running a
    /// query), but shadowing a base table is not.
    pub fn add_result_table(&mut self, name: &str, schema: TableSchema) -> Result<()> {
        match self.kind_of(name) {
            None | Some(EntityKind::ResultTable) => {
                self.result_tables.insert(name.to_string(), schema);
                Ok(())
            }
            Some(kind) => Err(GraqlError::name(format!(
                "'{name}' already exists as a {kind}"
            ))),
        }
    }

    pub fn add_result_subgraph(&mut self, name: &str) -> Result<()> {
        match self.kind_of(name) {
            None | Some(EntityKind::ResultSubgraph) => {
                self.result_subgraphs.insert(name.to_string(), ());
                Ok(())
            }
            Some(kind) => Err(GraqlError::name(format!(
                "'{name}' already exists as a {kind}"
            ))),
        }
    }

    pub fn has_result_subgraph(&self, name: &str) -> bool {
        self.result_subgraphs.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_types::DataType;

    fn schema() -> TableSchema {
        TableSchema::of(&[("id", DataType::Varchar(10))])
    }

    #[test]
    fn entity_kinds_share_a_namespace() {
        let mut c = Catalog::new();
        c.add_table("Products", schema()).unwrap();
        c.add_vertex(VertexDef {
            name: "ProductVtx".into(),
            table: "Products".into(),
            key: vec!["id".into()],
            where_clause: None,
        })
        .unwrap();
        assert_eq!(c.kind_of("Products"), Some(EntityKind::Table));
        assert_eq!(c.kind_of("ProductVtx"), Some(EntityKind::VertexType));
        // A vertex type may not reuse a table name and vice versa.
        assert!(c.add_table("ProductVtx", schema()).is_err());
        assert!(c
            .add_vertex(VertexDef {
                name: "Products".into(),
                table: "Products".into(),
                key: vec!["id".into()],
                where_clause: None,
            })
            .is_err());
    }

    #[test]
    fn wrong_kind_errors_mention_actual_kind() {
        let mut c = Catalog::new();
        c.add_table("T", schema()).unwrap();
        let err = c.require_vertex("T").unwrap_err();
        assert!(err.to_string().contains("is a table"), "{err}");
        let err = c.require_any_table("nope").unwrap_err();
        assert!(matches!(err, GraqlError::Name(_)));
    }

    #[test]
    fn result_tables_are_visible_as_tables() {
        let mut c = Catalog::new();
        c.add_result_table("T1", schema()).unwrap();
        assert!(c.any_table("T1").is_some());
        assert!(c.table("T1").is_none(), "results are not base tables");
        // Re-registration is fine (query re-run)…
        c.add_result_table("T1", schema()).unwrap();
        // …but shadowing a base table is not.
        c.add_table("Base", schema()).unwrap();
        assert!(c.add_result_table("Base", schema()).is_err());
    }

    #[test]
    fn result_subgraphs_tracked() {
        let mut c = Catalog::new();
        c.add_result_subgraph("resQ1").unwrap();
        assert!(c.has_result_subgraph("resQ1"));
        assert_eq!(c.kind_of("resQ1"), Some(EntityKind::ResultSubgraph));
        assert!(c.add_table("resQ1", schema()).is_err());
    }
}
