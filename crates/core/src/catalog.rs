//! The metadata catalog (paper §III: "a central metadata repository
//! (catalog) of all existing database objects (tables, vertices, edges)").
//!
//! The catalog holds *definitions only* — schemas and declaration ASTs —
//! so static analysis (§III-A) can run without touching data. Instance
//! counts live in [`graql_graph::GraphStats`], refreshed after ingest.

use graql_parser::ast;
use graql_table::TableSchema;
use graql_types::{GraqlError, Result};
use rustc_hash::FxHashMap;

/// Declaration of a vertex type (Eq. 1 ingredients).
#[derive(Debug, Clone, PartialEq)]
pub struct VertexDef {
    pub name: String,
    pub table: String,
    pub key: Vec<String>,
    pub where_clause: Option<ast::Expr>,
}

/// Declaration of an edge type (Eq. 2 ingredients).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDef {
    pub name: String,
    pub src_type: String,
    pub src_alias: Option<String>,
    pub tgt_type: String,
    pub tgt_alias: Option<String>,
    pub from_tables: Vec<String>,
    pub where_clause: Option<ast::Expr>,
}

/// Kind of a named database entity, for §III-A "entity of correct type"
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    Table,
    VertexType,
    EdgeType,
    /// A named result registered by `into table`.
    ResultTable,
    /// A named result registered by `into subgraph`.
    ResultSubgraph,
}

impl std::fmt::Display for EntityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EntityKind::Table => "table",
            EntityKind::VertexType => "vertex type",
            EntityKind::EdgeType => "edge type",
            EntityKind::ResultTable => "result table",
            EntityKind::ResultSubgraph => "result subgraph",
        };
        write!(f, "{s}")
    }
}

/// The DDL-defined sections of the catalog: base tables and vertex/edge
/// type declarations. Kept behind an `Arc` inside [`Catalog`] so cloning
/// a catalog (the MVCC server snapshots the database per write script)
/// is a reference bump; only DDL — rare by construction — pays the
/// copy-on-write.
#[derive(Debug, Clone, Default)]
struct CatalogBase {
    tables: FxHashMap<String, TableSchema>,
    table_order: Vec<String>,
    vertices: FxHashMap<String, VertexDef>,
    vertex_order: Vec<String>,
    edges: FxHashMap<String, EdgeDef>,
    edge_order: Vec<String>,
}

/// The front-end metadata catalog.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// Copy-on-write DDL sections (see [`CatalogBase`]).
    base: std::sync::Arc<CatalogBase>,
    /// Schemas of named `into table` results (registered as statements are
    /// analyzed/executed, so later statements can be checked). Directly
    /// owned: result registration happens on the query hot path, where a
    /// deep catalog copy would dominate the statement's own cost.
    result_tables: FxHashMap<String, TableSchema>,
    /// Names of registered `into subgraph` results.
    result_subgraphs: FxHashMap<String, ()>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// What kind of entity `name` denotes, if any.
    pub fn kind_of(&self, name: &str) -> Option<EntityKind> {
        if self.base.tables.contains_key(name) {
            Some(EntityKind::Table)
        } else if self.base.vertices.contains_key(name) {
            Some(EntityKind::VertexType)
        } else if self.base.edges.contains_key(name) {
            Some(EntityKind::EdgeType)
        } else if self.result_tables.contains_key(name) {
            Some(EntityKind::ResultTable)
        } else if self.result_subgraphs.contains_key(name) {
            Some(EntityKind::ResultSubgraph)
        } else {
            None
        }
    }

    fn check_fresh(&self, name: &str) -> Result<()> {
        if let Some(kind) = self.kind_of(name) {
            return Err(GraqlError::name(format!(
                "'{name}' already exists as a {kind}"
            )));
        }
        Ok(())
    }

    // -- tables --------------------------------------------------------------

    pub fn add_table(&mut self, name: &str, schema: TableSchema) -> Result<()> {
        self.check_fresh(name)?;
        let base = std::sync::Arc::make_mut(&mut self.base);
        base.tables.insert(name.to_string(), schema);
        base.table_order.push(name.to_string());
        Ok(())
    }

    /// Schema of a base table (not results).
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.base.tables.get(name)
    }

    /// Schema of a base table *or* a named result table — what a
    /// `from table X` reference may denote.
    pub fn any_table(&self, name: &str) -> Option<&TableSchema> {
        self.base
            .tables
            .get(name)
            .or_else(|| self.result_tables.get(name))
    }

    pub fn require_any_table(&self, name: &str) -> Result<&TableSchema> {
        self.any_table(name)
            .ok_or_else(|| match self.kind_of(name) {
                Some(kind) => GraqlError::type_error(format!("'{name}' is a {kind}, not a table")),
                None => GraqlError::name(format!("unknown table '{name}'")),
            })
    }

    pub fn table_names(&self) -> &[String] {
        &self.base.table_order
    }

    // -- vertex / edge types ---------------------------------------------------

    pub fn add_vertex(&mut self, def: VertexDef) -> Result<()> {
        self.check_fresh(&def.name)?;
        let base = std::sync::Arc::make_mut(&mut self.base);
        base.vertex_order.push(def.name.clone());
        base.vertices.insert(def.name.clone(), def);
        Ok(())
    }

    pub fn vertex(&self, name: &str) -> Option<&VertexDef> {
        self.base.vertices.get(name)
    }

    pub fn require_vertex(&self, name: &str) -> Result<&VertexDef> {
        self.vertex(name).ok_or_else(|| match self.kind_of(name) {
            Some(kind) => {
                GraqlError::type_error(format!("'{name}' is a {kind}, not a vertex type"))
            }
            None => GraqlError::name(format!("unknown vertex type '{name}'")),
        })
    }

    pub fn vertex_names(&self) -> &[String] {
        &self.base.vertex_order
    }

    pub fn add_edge(&mut self, def: EdgeDef) -> Result<()> {
        self.check_fresh(&def.name)?;
        let base = std::sync::Arc::make_mut(&mut self.base);
        base.edge_order.push(def.name.clone());
        base.edges.insert(def.name.clone(), def);
        Ok(())
    }

    pub fn edge(&self, name: &str) -> Option<&EdgeDef> {
        self.base.edges.get(name)
    }

    pub fn require_edge(&self, name: &str) -> Result<&EdgeDef> {
        self.edge(name).ok_or_else(|| match self.kind_of(name) {
            Some(kind) => GraqlError::type_error(format!("'{name}' is a {kind}, not an edge type")),
            None => GraqlError::name(format!("unknown edge type '{name}'")),
        })
    }

    pub fn edge_names(&self) -> &[String] {
        &self.base.edge_order
    }

    // -- named results ----------------------------------------------------------

    /// Registers (or replaces) a named `into table` result schema.
    /// Re-registration under the same result name is allowed (re-running a
    /// query), but shadowing a base table is not.
    pub fn add_result_table(&mut self, name: &str, schema: TableSchema) -> Result<()> {
        match self.kind_of(name) {
            None | Some(EntityKind::ResultTable) => {
                self.result_tables.insert(name.to_string(), schema);
                Ok(())
            }
            Some(kind) => Err(GraqlError::name(format!(
                "'{name}' already exists as a {kind}"
            ))),
        }
    }

    pub fn add_result_subgraph(&mut self, name: &str) -> Result<()> {
        match self.kind_of(name) {
            None | Some(EntityKind::ResultSubgraph) => {
                self.result_subgraphs.insert(name.to_string(), ());
                Ok(())
            }
            Some(kind) => Err(GraqlError::name(format!(
                "'{name}' already exists as a {kind}"
            ))),
        }
    }

    pub fn has_result_subgraph(&self, name: &str) -> bool {
        self.result_subgraphs.contains_key(name)
    }
}

// ---------------------------------------------------------------------------
// Catalog statistics store
// ---------------------------------------------------------------------------

/// Statistics for one base table: row count and per-column NDV (number of
/// distinct values), in schema column order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableCard {
    pub rows: u64,
    /// `(column name, distinct value count)` per column. Nulls count as
    /// one distinct value, matching the selectivity model's use.
    pub columns: Vec<(String, u64)>,
}

impl TableCard {
    /// NDV of a column by name.
    pub fn ndv(&self, column: &str) -> Option<u64> {
        self.columns
            .iter()
            .find(|(n, _)| n == column)
            .map(|&(_, n)| n)
    }
}

/// Statistics for one vertex type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VertexCard {
    pub count: u64,
}

/// Statistics for one edge type: instance count, mean/max degrees and
/// log₂ degree histograms in both directions (mirrors
/// [`graql_graph::EdgeTypeStats`], but keyed by name so it survives
/// graph rebuilds and snapshot round-trips).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeCard {
    pub count: u64,
    pub mean_out_degree: f64,
    pub mean_in_degree: f64,
    pub max_out_degree: u64,
    pub max_in_degree: u64,
    pub out_degree_histogram: Vec<u64>,
    pub in_degree_histogram: Vec<u64>,
}

/// The persistent catalog statistics store (paper §III-B): per-type
/// cardinalities, edge-degree histograms and attribute NDV, keyed by
/// entity *name*. One source of truth shared by the path-cost lints
/// (`W0301`/`H0202`), the dataflow analyzer's cost annotation, `explain`
/// estimates and (eventually) the cost-based planner.
///
/// Populated incrementally: the table section refreshes at ingest, the
/// vertex/edge sections when the graph views build ([`CatalogStats::graph_complete`]
/// says whether they have). Snapshot-persisted by `persist::save_dir`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CatalogStats {
    /// Per-card `Arc`s keep cloning the whole store cheap: the MVCC
    /// server copy-on-writes it on every `into`-registering statement,
    /// and the NDV/histogram payloads are the expensive part.
    pub tables: FxHashMap<String, std::sync::Arc<TableCard>>,
    pub vertices: FxHashMap<String, std::sync::Arc<VertexCard>>,
    pub edges: FxHashMap<String, std::sync::Arc<EdgeCard>>,
    /// True once the vertex/edge sections reflect a built graph.
    pub graph_complete: bool,
}

impl CatalogStats {
    /// Computes the table section entry for one table: row count plus an
    /// NDV per column (exact, via value hashing — cheap at ingest scale).
    pub fn table_card(table: &graql_table::Table) -> TableCard {
        use std::hash::{Hash, Hasher};
        let schema = table.schema();
        let mut columns = Vec::with_capacity(schema.columns().len());
        for (ci, col) in schema.columns().iter().enumerate() {
            let mut seen = rustc_hash::FxHashSet::default();
            for ri in 0..table.n_rows() {
                let mut h = rustc_hash::FxHasher::default();
                table.get(ri, ci).hash(&mut h);
                seen.insert(h.finish());
            }
            columns.push((col.name.clone(), seen.len() as u64));
        }
        TableCard {
            rows: table.n_rows() as u64,
            columns,
        }
    }

    /// Folds a [`graql_graph::GraphStats`] snapshot into the store,
    /// re-keying by type name, and marks the graph sections complete.
    pub fn absorb_graph(&mut self, g: &graql_graph::Graph, stats: &graql_graph::GraphStats) {
        self.vertices.clear();
        self.edges.clear();
        for vs in &stats.vertices {
            self.vertices.insert(
                g.vset(vs.vtype).name.clone(),
                std::sync::Arc::new(VertexCard {
                    count: vs.count as u64,
                }),
            );
        }
        for es in &stats.edges {
            self.edges.insert(
                g.eset(es.etype).name.clone(),
                std::sync::Arc::new(EdgeCard {
                    count: es.count as u64,
                    mean_out_degree: es.mean_out_degree,
                    mean_in_degree: es.mean_in_degree,
                    max_out_degree: es.max_out_degree as u64,
                    max_in_degree: es.max_in_degree as u64,
                    out_degree_histogram: es
                        .out_degree_histogram
                        .iter()
                        .map(|&c| c as u64)
                        .collect(),
                    in_degree_histogram: es.in_degree_histogram.iter().map(|&c| c as u64).collect(),
                }),
            );
        }
        self.graph_complete = true;
    }

    /// Mean (out, in) degree of an edge type, the fanout fact behind the
    /// `W0301`/`H0202` lints.
    pub fn mean_degrees(&self, edge: &str) -> Option<(f64, f64)> {
        self.edges
            .get(edge)
            .map(|e| (e.mean_out_degree, e.mean_in_degree))
    }

    /// Instance count of a vertex type.
    pub fn vertex_count(&self, vtype: &str) -> Option<u64> {
        self.vertices.get(vtype).map(|v| v.count)
    }

    /// Serializes the store as a line-oriented text file (the snapshot
    /// format; see `persist`). Entries are emitted in sorted-name order so
    /// the bytes — and the snapshot manifest checksum — are deterministic.
    pub fn to_text(&self) -> String {
        fn join(h: &[u64]) -> String {
            h.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        let mut out = String::from("# graql catalog statistics v1\n");
        out.push_str(&format!("graph_complete {}\n", self.graph_complete));
        let mut tables: Vec<_> = self.tables.iter().collect();
        tables.sort_by(|a, b| a.0.cmp(b.0));
        for (name, t) in tables {
            out.push_str(&format!("table {name} rows={}\n", t.rows));
            for (col, ndv) in &t.columns {
                out.push_str(&format!("col {name} {col} ndv={ndv}\n"));
            }
        }
        let mut vertices: Vec<_> = self.vertices.iter().collect();
        vertices.sort_by(|a, b| a.0.cmp(b.0));
        for (name, v) in vertices {
            out.push_str(&format!("vertex {name} count={}\n", v.count));
        }
        let mut edges: Vec<_> = self.edges.iter().collect();
        edges.sort_by(|a, b| a.0.cmp(b.0));
        for (name, e) in edges {
            out.push_str(&format!(
                "edge {name} count={} mean_out={:?} mean_in={:?} max_out={} max_in={} \
                 out_hist={} in_hist={}\n",
                e.count,
                e.mean_out_degree,
                e.mean_in_degree,
                e.max_out_degree,
                e.max_in_degree,
                join(&e.out_degree_histogram),
                join(&e.in_degree_histogram),
            ));
        }
        out
    }

    /// Parses the [`CatalogStats::to_text`] format. Unknown directives
    /// are rejected — a corrupt statistics file must not load silently.
    pub fn parse(text: &str) -> Result<CatalogStats> {
        fn kv<'a>(tok: &'a str, key: &str) -> Result<&'a str> {
            tok.strip_prefix(key)
                .and_then(|t| t.strip_prefix('='))
                .ok_or_else(|| GraqlError::ingest(format!("stats: expected {key}=…, got {tok:?}")))
        }
        fn num<T: std::str::FromStr>(s: &str) -> Result<T> {
            s.parse()
                .map_err(|_| GraqlError::ingest(format!("stats: bad number {s:?}")))
        }
        fn hist(s: &str) -> Result<Vec<u64>> {
            if s.is_empty() {
                return Ok(Vec::new());
            }
            s.split(',').map(num::<u64>).collect()
        }
        let mut stats = CatalogStats::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks.as_slice() {
                ["graph_complete", flag] => stats.graph_complete = *flag == "true",
                ["table", name, rows] => {
                    std::sync::Arc::make_mut(stats.tables.entry(name.to_string()).or_default())
                        .rows = num(kv(rows, "rows")?)?;
                }
                ["col", table, col, ndv] => {
                    std::sync::Arc::make_mut(stats.tables.entry(table.to_string()).or_default())
                        .columns
                        .push((col.to_string(), num(kv(ndv, "ndv")?)?));
                }
                ["vertex", name, count] => {
                    stats.vertices.insert(
                        name.to_string(),
                        std::sync::Arc::new(VertexCard {
                            count: num(kv(count, "count")?)?,
                        }),
                    );
                }
                ["edge", name, count, mean_out, mean_in, max_out, max_in, out_hist, in_hist] => {
                    stats.edges.insert(
                        name.to_string(),
                        std::sync::Arc::new(EdgeCard {
                            count: num(kv(count, "count")?)?,
                            mean_out_degree: num(kv(mean_out, "mean_out")?)?,
                            mean_in_degree: num(kv(mean_in, "mean_in")?)?,
                            max_out_degree: num(kv(max_out, "max_out")?)?,
                            max_in_degree: num(kv(max_in, "max_in")?)?,
                            out_degree_histogram: hist(kv(out_hist, "out_hist")?)?,
                            in_degree_histogram: hist(kv(in_hist, "in_hist")?)?,
                        }),
                    );
                }
                _ => {
                    return Err(GraqlError::ingest(format!(
                        "stats: unrecognized line {line:?}"
                    )))
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_types::DataType;

    fn schema() -> TableSchema {
        TableSchema::of(&[("id", DataType::Varchar(10))])
    }

    #[test]
    fn entity_kinds_share_a_namespace() {
        let mut c = Catalog::new();
        c.add_table("Products", schema()).unwrap();
        c.add_vertex(VertexDef {
            name: "ProductVtx".into(),
            table: "Products".into(),
            key: vec!["id".into()],
            where_clause: None,
        })
        .unwrap();
        assert_eq!(c.kind_of("Products"), Some(EntityKind::Table));
        assert_eq!(c.kind_of("ProductVtx"), Some(EntityKind::VertexType));
        // A vertex type may not reuse a table name and vice versa.
        assert!(c.add_table("ProductVtx", schema()).is_err());
        assert!(c
            .add_vertex(VertexDef {
                name: "Products".into(),
                table: "Products".into(),
                key: vec!["id".into()],
                where_clause: None,
            })
            .is_err());
    }

    #[test]
    fn wrong_kind_errors_mention_actual_kind() {
        let mut c = Catalog::new();
        c.add_table("T", schema()).unwrap();
        let err = c.require_vertex("T").unwrap_err();
        assert!(err.to_string().contains("is a table"), "{err}");
        let err = c.require_any_table("nope").unwrap_err();
        assert!(matches!(err, GraqlError::Name(_)));
    }

    #[test]
    fn result_tables_are_visible_as_tables() {
        let mut c = Catalog::new();
        c.add_result_table("T1", schema()).unwrap();
        assert!(c.any_table("T1").is_some());
        assert!(c.table("T1").is_none(), "results are not base tables");
        // Re-registration is fine (query re-run)…
        c.add_result_table("T1", schema()).unwrap();
        // …but shadowing a base table is not.
        c.add_table("Base", schema()).unwrap();
        assert!(c.add_result_table("Base", schema()).is_err());
    }

    #[test]
    fn result_subgraphs_tracked() {
        let mut c = Catalog::new();
        c.add_result_subgraph("resQ1").unwrap();
        assert!(c.has_result_subgraph("resQ1"));
        assert_eq!(c.kind_of("resQ1"), Some(EntityKind::ResultSubgraph));
        assert!(c.add_table("resQ1", schema()).is_err());
    }
}
