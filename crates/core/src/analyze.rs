//! Static query analysis (paper §III-A): catalog-only checks, no data
//! access.
//!
//! "Correctness checks include a number of different type checking issues:
//! is the query comparing an attribute with a constant (or other
//! attribute) of the wrong type? … is the query using an entity of
//! correct type for certain operations? … is a path query correctly
//! formulated?"
//!
//! The analyzer threads a *working catalog* through the script so that a
//! statement can reference entities (including `into` results) created by
//! earlier statements — the front-end server's evolving metadata.
//!
//! Two reporting modes share one code path:
//!
//! * [`analyze_script`] is **fail-fast**: it stops at the first error and
//!   returns it as a classified [`GraqlError`] (the legacy contract that
//!   execution paths rely on).
//! * [`check_script`] **collects**: it records every problem as a located
//!   [`Diagnostic`] in a [`Diagnostics`] sink, recovering where it can
//!   (e.g. an unknown attribute in a `where` clause does not stop the
//!   rest of the clause from being checked), and then runs the lint
//!   passes in [`crate::lint`].

use graql_parser::ast::{self, SelectExpr, SelectTargets, StepName, Stmt};
use graql_table::{ColumnDef, TableSchema};
use graql_types::{codes, DataType, Diagnostic, Diagnostics, GraqlError, Result, Span};
use rustc_hash::FxHashMap;

use crate::catalog::{Catalog, EdgeDef, VertexDef};
use crate::cond::lit_type;
use crate::lint;

/// Result of the span-aware checks: the error side is a located
/// [`Diagnostic`], converted back to [`GraqlError`] only at the public
/// fail-fast boundary.
pub(crate) type DResult<T> = std::result::Result<T, Diagnostic>;

/// How a check run reports problems.
///
/// In fail-fast mode (no sink) [`Ctx::emit`] aborts with the diagnostic;
/// in collecting mode it records the diagnostic and analysis continues,
/// so one pass surfaces every problem it can reach.
pub(crate) struct Ctx<'a> {
    sink: Option<&'a mut Diagnostics>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn fail_fast() -> Ctx<'static> {
        Ctx { sink: None }
    }

    pub(crate) fn collecting(sink: &'a mut Diagnostics) -> Ctx<'a> {
        Ctx { sink: Some(sink) }
    }

    /// Reports a recoverable problem: recorded (analysis continues) in
    /// collecting mode, aborts the enclosing statement in fail-fast mode.
    pub(crate) fn emit(&mut self, d: Diagnostic) -> DResult<()> {
        match self.sink.as_deref_mut() {
            Some(s) => {
                s.push(d);
                Ok(())
            }
            None => Err(d),
        }
    }
}

/// Locates a bubbled catalog/schema error, recoding plain name errors as
/// "unknown entity" and type errors as "wrong kind".
pub(crate) fn entity_err(e: &GraqlError, span: Span) -> Diagnostic {
    let d = Diagnostic::from_error(e, span);
    match e {
        GraqlError::Name(_) => d.with_code(codes::UNKNOWN_NAME),
        GraqlError::Type(_) => d.with_code(codes::WRONG_KIND),
        _ => d,
    }
}

/// Locates a bubbled column/attribute lookup error.
pub(crate) fn attr_err(e: &GraqlError, span: Span) -> Diagnostic {
    let d = Diagnostic::from_error(e, span);
    match e {
        GraqlError::Name(_) => d.with_code(codes::UNKNOWN_ATTR),
        _ => d,
    }
}

/// Locates a duplicate-definition error from the catalog.
fn dup_err(e: &GraqlError, span: Span) -> Diagnostic {
    let d = Diagnostic::from_error(e, span);
    match e {
        GraqlError::Name(_) => d.with_code(codes::DUPLICATE),
        _ => d,
    }
}

/// Statically checks a whole script against (a working copy of) the
/// catalog, stopping at the first error. Returns the catalog state after
/// the script, so callers can inspect inferred result schemas.
pub fn analyze_script(catalog: &Catalog, script: &ast::Script) -> Result<Catalog> {
    let mut work = catalog.clone();
    for stmt in &script.statements {
        check_statement(&mut work, stmt, &mut Ctx::fail_fast()).map_err(Diagnostic::into_error)?;
    }
    Ok(work)
}

/// Statically checks one statement (fail-fast), updating the working
/// catalog.
pub fn analyze_statement(work: &mut Catalog, stmt: &Stmt) -> Result<()> {
    check_statement(work, stmt, &mut Ctx::fail_fast()).map_err(Diagnostic::into_error)
}

/// Statically checks a whole script, collecting *every* diagnostic —
/// errors, lint warnings and hints — instead of stopping at the first
/// error. Statements that fail still leave later statements checked
/// (against the catalog state that did materialize), so one call reports
/// the full damage of a bad script.
pub fn check_script(catalog: &Catalog, script: &ast::Script) -> (Catalog, Diagnostics) {
    check_script_with_stats(catalog, script, None, None)
}

/// [`check_script`] with execution context: the catalog statistics store
/// (degree means per edge type) enables the path-cost lints (`W0301`,
/// `H0202`) and the dataflow cost hints (`H0203`), and `governed` — when
/// known — says whether any query budget is configured, enabling the
/// ungoverned-repetition lint (`W0303`). Pass `stats: None` / `governed:
/// None` when the checker has no knowledge of the execution environment.
pub fn check_script_with_stats(
    catalog: &Catalog,
    script: &ast::Script,
    stats: Option<&crate::catalog::CatalogStats>,
    governed: Option<bool>,
) -> (Catalog, Diagnostics) {
    let mut sink = Diagnostics::new();
    let mut work = catalog.clone();
    for stmt in &script.statements {
        let res = check_statement(&mut work, stmt, &mut Ctx::collecting(&mut sink));
        if let Err(d) = res {
            sink.push(d);
        }
    }
    lint::run(&work, script, stats, governed, &mut sink);
    crate::analysis::dataflow::run(&work, script, stats, &mut sink);
    (work, sink)
}

/// Checks one statement, updating the working catalog. A returned `Err`
/// is a problem the statement could not recover from (the entity was not
/// registered); recoverable problems go through `ctx`.
fn check_statement(work: &mut Catalog, stmt: &Stmt, ctx: &mut Ctx) -> DResult<()> {
    match stmt {
        Stmt::CreateTable(ct) => {
            let schema = TableSchema::new(
                ct.columns
                    .iter()
                    .map(|(n, t)| ColumnDef::new(n, t.to_data_type()))
                    .collect(),
            )
            .map_err(|e| Diagnostic::from_error(&e, ct.span))?;
            work.add_table(&ct.name, schema)
                .map_err(|e| dup_err(&e, ct.span))
        }
        Stmt::CreateVertex(cv) => {
            let Some(schema) = work.table(&cv.from_table).cloned() else {
                return Err(match work.kind_of(&cv.from_table) {
                    Some(k) => Diagnostic::error(
                        codes::WRONG_KIND,
                        format!("'{}' is a {k}, not a table", cv.from_table),
                        cv.span,
                    ),
                    None => Diagnostic::error(
                        codes::UNKNOWN_NAME,
                        format!("unknown table '{}'", cv.from_table),
                        cv.span,
                    ),
                });
            };
            if cv.key.is_empty() {
                ctx.emit(Diagnostic::error(
                    codes::BAD_PATH,
                    format!("vertex '{}' has an empty key", cv.name),
                    cv.span,
                ))?;
            }
            for k in &cv.key {
                if let Err(e) = schema.require(k) {
                    ctx.emit(attr_err(&e, cv.span))?;
                }
            }
            if let Some(w) = &cv.where_clause {
                crate::cond::typecheck_single_table_ctx(
                    w,
                    &schema,
                    &[&cv.from_table, &cv.name],
                    ctx,
                )?;
            }
            work.add_vertex(VertexDef {
                name: cv.name.clone(),
                table: cv.from_table.clone(),
                key: cv.key.clone(),
                where_clause: cv.where_clause.clone(),
            })
            .map_err(|e| dup_err(&e, cv.span))
        }
        Stmt::CreateEdge(ce) => {
            let src = work
                .require_vertex(&ce.source.vertex_type)
                .map_err(|e| entity_err(&e, ce.span))?
                .clone();
            let tgt = work
                .require_vertex(&ce.target.vertex_type)
                .map_err(|e| entity_err(&e, ce.span))?
                .clone();
            for t in &ce.from_tables {
                if let Err(e) = work.require_any_table(t) {
                    ctx.emit(entity_err(&e, ce.span))?;
                }
            }
            if let Some(w) = &ce.where_clause {
                typecheck_edge_where(work, ce, &src, &tgt, w, ctx)?;
            }
            work.add_edge(EdgeDef {
                name: ce.name.clone(),
                src_type: ce.source.vertex_type.clone(),
                src_alias: ce.source.alias.clone(),
                tgt_type: ce.target.vertex_type.clone(),
                tgt_alias: ce.target.alias.clone(),
                from_tables: ce.from_tables.clone(),
                where_clause: ce.where_clause.clone(),
            })
            .map_err(|e| dup_err(&e, ce.span))
        }
        Stmt::Ingest(ing) => {
            if work.table(&ing.table).is_none() {
                let d = match work.kind_of(&ing.table) {
                    Some(k) => Diagnostic::error(
                        codes::WRONG_KIND,
                        format!(
                            "cannot ingest into '{}': it is a {k}, not a base table",
                            ing.table
                        ),
                        ing.span,
                    ),
                    None => Diagnostic::error(
                        codes::UNKNOWN_NAME,
                        format!("unknown table '{}'", ing.table),
                        ing.span,
                    ),
                };
                ctx.emit(d)?;
            }
            Ok(())
        }
        Stmt::Select(sel) => check_select(work, sel, ctx),
        // `profile` is analyzed exactly like the select underneath (the
        // parser already rejected `into`).
        Stmt::Profile(sel) => check_select(work, sel, ctx),
    }
}

/// Type environment of an edge `where` clause: qualifier → schema.
fn typecheck_edge_where(
    work: &Catalog,
    ce: &ast::CreateEdge,
    src: &VertexDef,
    tgt: &VertexDef,
    w: &ast::Expr,
    ctx: &mut Ctx,
) -> DResult<()> {
    let mut env: FxHashMap<String, TableSchema> = FxHashMap::default();
    let src_schema = work
        .table(&src.table)
        .expect("vertex defs reference tables")
        .clone();
    let tgt_schema = work
        .table(&tgt.table)
        .expect("vertex defs reference tables")
        .clone();
    let src_qual = ce
        .source
        .alias
        .clone()
        .unwrap_or_else(|| ce.source.vertex_type.clone());
    let tgt_qual = ce
        .target
        .alias
        .clone()
        .unwrap_or_else(|| ce.target.vertex_type.clone());
    if src_qual == tgt_qual {
        // The environment would be ambiguous; skip the clause walk.
        return ctx.emit(Diagnostic::error(
            codes::DUPLICATE,
            format!(
                "edge '{}' endpoints are both referred to as '{src_qual}'; \
                 disambiguate with 'as' aliases",
                ce.name
            ),
            ce.span,
        ));
    }
    env.insert(src_qual, src_schema.clone());
    env.insert(tgt_qual, tgt_schema.clone());
    if src.table != tgt.table {
        env.entry(src.table.clone()).or_insert(src_schema);
        env.entry(tgt.table.clone()).or_insert(tgt_schema);
    }
    for t in &ce.from_tables {
        // Unknown from-tables were already reported by the caller.
        if let Ok(s) = work.require_any_table(t) {
            env.insert(t.clone(), s.clone());
        }
    }

    // Walk comparisons, resolving operand types.
    fn operand_type(
        work: &Catalog,
        env: &mut FxHashMap<String, TableSchema>,
        o: &ast::Operand,
        span: Span,
    ) -> DResult<Option<DataType>> {
        match o {
            ast::Operand::Lit(l) => Ok(lit_type(l)),
            ast::Operand::Attr {
                qualifier: Some(q),
                name,
            } => {
                if !env.contains_key(q) {
                    // Implicit associated table (the Fig. 3 `feature` case).
                    let schema = work
                        .table(q)
                        .ok_or_else(|| {
                            Diagnostic::error(
                                codes::BAD_QUALIFIER,
                                format!("unknown qualifier '{q}'"),
                                span,
                            )
                        })?
                        .clone();
                    env.insert(q.clone(), schema);
                }
                let schema = &env[q];
                let ci = schema.require(name).map_err(|e| attr_err(&e, span))?;
                Ok(Some(schema.column(ci).dtype))
            }
            ast::Operand::Attr {
                qualifier: None,
                name,
            } => {
                let hits: Vec<DataType> = env
                    .values()
                    .filter_map(|s| s.index_of(name).map(|c| s.column(c).dtype))
                    .collect();
                match hits.len() {
                    1 => Ok(Some(hits[0])),
                    0 => Err(Diagnostic::error(
                        codes::UNKNOWN_ATTR,
                        format!("unknown attribute '{name}'"),
                        span,
                    )),
                    _ => Err(Diagnostic::error(
                        codes::AMBIGUOUS,
                        format!("ambiguous attribute '{name}'; qualify it"),
                        span,
                    )),
                }
            }
        }
    }
    fn walk(
        work: &Catalog,
        env: &mut FxHashMap<String, TableSchema>,
        e: &ast::Expr,
        ctx: &mut Ctx,
    ) -> DResult<()> {
        match e {
            ast::Expr::And(ps) | ast::Expr::Or(ps) => {
                ps.iter().try_for_each(|p| walk(work, env, p, ctx))
            }
            ast::Expr::Not(inner) => walk(work, env, inner, ctx),
            ast::Expr::Cmp { lhs, rhs, span, .. } => {
                let a = match operand_type(work, env, lhs, *span) {
                    Ok(t) => t,
                    Err(d) => {
                        ctx.emit(d)?;
                        None
                    }
                };
                let b = match operand_type(work, env, rhs, *span) {
                    Ok(t) => t,
                    Err(d) => {
                        ctx.emit(d)?;
                        None
                    }
                };
                if let (Some(a), Some(b)) = (a, b) {
                    if !a.comparable_with(b) {
                        ctx.emit(Diagnostic::error(
                            codes::INCOMPARABLE,
                            format!("cannot compare {a} with {b}"),
                            *span,
                        ))?;
                    }
                }
                Ok(())
            }
        }
    }
    walk(work, &mut env, w, ctx)
}

// ---------------------------------------------------------------------------
// Select analysis
// ---------------------------------------------------------------------------

fn check_select(work: &mut Catalog, sel: &ast::SelectStmt, ctx: &mut Ctx) -> DResult<()> {
    match &sel.source {
        ast::SelectSource::Table(t) => check_table_select(work, sel, t, ctx),
        ast::SelectSource::Graph(comp) => check_graph_select(work, sel, comp, ctx),
    }
}

fn check_table_select(
    work: &mut Catalog,
    sel: &ast::SelectStmt,
    table: &str,
    ctx: &mut Ctx,
) -> DResult<()> {
    let schema = work
        .require_any_table(table)
        .map_err(|e| entity_err(&e, sel.span))?
        .clone();
    // An empty schema marks a result table whose columns could not be
    // inferred statically (e.g. edge-label projections); skip column-level
    // checks and let execution validate.
    if schema.is_empty() {
        return register_into(work, sel, None);
    }
    if let Some(w) = &sel.where_clause {
        crate::cond::typecheck_single_table_ctx(w, &schema, &[table], ctx)?;
    }
    let col = |c: &ast::ColRef| -> DResult<usize> {
        if let Some(q) = &c.qualifier {
            if q != table {
                return Err(Diagnostic::error(
                    codes::BAD_QUALIFIER,
                    format!("unknown qualifier '{q}'; the table is '{table}'"),
                    sel.span,
                ));
            }
        }
        schema.require(&c.name).map_err(|e| attr_err(&e, sel.span))
    };
    for g in &sel.group_by {
        if let Err(d) = col(g) {
            ctx.emit(d)?;
        }
    }
    // Output schema inference. `complete` drops to false when a problem
    // leaves a column's type unknown; the result is then registered with
    // an empty schema (checked at execution instead).
    let mut out_defs: Vec<ColumnDef> = Vec::new();
    let mut complete = true;
    match &sel.targets {
        SelectTargets::Star => {
            if !sel.group_by.is_empty() {
                ctx.emit(Diagnostic::error(
                    codes::BAD_AGGREGATE,
                    "'select *' cannot be grouped",
                    sel.span,
                ))?;
            }
            out_defs = schema.columns().to_vec();
        }
        SelectTargets::Items(items) => {
            let grouped = sel.has_aggregates() || !sel.group_by.is_empty();
            for (i, item) in items.iter().enumerate() {
                match &item.expr {
                    SelectExpr::Col(c) => {
                        let ci = match col(c) {
                            Ok(ci) => ci,
                            Err(d) => {
                                ctx.emit(d)?;
                                complete = false;
                                continue;
                            }
                        };
                        if grouped && !sel.group_by.iter().any(|g| col(g).is_ok_and(|gi| gi == ci))
                        {
                            ctx.emit(Diagnostic::error(
                                codes::BAD_AGGREGATE,
                                format!(
                                    "column '{}' must appear in 'group by' or inside an aggregate",
                                    c.name
                                ),
                                sel.span,
                            ))?;
                        }
                        let name = item.alias.clone().unwrap_or_else(|| c.name.clone());
                        out_defs.push(ColumnDef::new(name, schema.column(ci).dtype));
                    }
                    SelectExpr::Agg(a) => {
                        let needs_numeric =
                            matches!(a, ast::AggCall::Sum(_) | ast::AggCall::Avg(_));
                        let arg = match a {
                            ast::AggCall::CountStar => None,
                            ast::AggCall::Count(c)
                            | ast::AggCall::Sum(c)
                            | ast::AggCall::Avg(c)
                            | ast::AggCall::Min(c)
                            | ast::AggCall::Max(c) => Some(c),
                        };
                        let mut arg_dtype = None;
                        if let Some(c) = arg {
                            match col(c) {
                                Ok(ci) => {
                                    let dt = schema.column(ci).dtype;
                                    arg_dtype = Some(dt);
                                    if needs_numeric && !dt.is_numeric() {
                                        ctx.emit(Diagnostic::error(
                                            codes::BAD_AGGREGATE,
                                            format!(
                                                "aggregate over non-numeric column '{}'",
                                                c.name
                                            ),
                                            sel.span,
                                        ))?;
                                    }
                                }
                                Err(d) => {
                                    ctx.emit(d)?;
                                }
                            }
                        }
                        let dtype = match a {
                            ast::AggCall::CountStar | ast::AggCall::Count(_) => {
                                Some(DataType::Integer)
                            }
                            ast::AggCall::Avg(_) => Some(DataType::Float),
                            ast::AggCall::Sum(_) | ast::AggCall::Min(_) | ast::AggCall::Max(_) => {
                                arg_dtype
                            }
                        };
                        match dtype {
                            Some(dt) => {
                                let name = item.alias.clone().unwrap_or_else(|| format!("agg_{i}"));
                                out_defs.push(ColumnDef::new(name, dt));
                            }
                            None => complete = false,
                        }
                    }
                }
            }
        }
    }
    let out_schema = if complete {
        Some(TableSchema::new(out_defs).map_err(|e| Diagnostic::from_error(&e, sel.span))?)
    } else {
        None
    };
    if let Some(os) = &out_schema {
        for k in &sel.order_by {
            if os.require(&k.col.name).is_err() {
                ctx.emit(Diagnostic::error(
                    codes::UNKNOWN_ATTR,
                    format!(
                        "'order by' column '{}' is not in the select output",
                        k.col.name
                    ),
                    sel.span,
                ))?;
            }
        }
    }
    register_into(work, sel, out_schema)
}

/// One `or` branch's name scope: vertex labels (kind + optional concrete
/// type), edge labels (optional concrete edge type), and named steps.
type BranchScope = (
    FxHashMap<String, (ast::LabelKind, Option<String>)>,
    FxHashMap<String, Option<String>>,
    FxHashMap<String, Vec<StepInfo>>,
);

/// Static per-step type info for a graph select.
#[derive(Clone)]
struct StepInfo {
    /// `None` = variant (unknown concrete types statically).
    vtype: Option<String>,
    display: String,
}

fn check_graph_select(
    work: &mut Catalog,
    sel: &ast::SelectStmt,
    comp: &ast::PathComposition,
    ctx: &mut Ctx,
) -> DResult<()> {
    if sel.where_clause.is_some() {
        ctx.emit(Diagnostic::error(
            codes::MISPLACED_CLAUSE,
            "graph selects place conditions on steps, not in a 'where' clause",
            sel.span,
        ))?;
    }
    if sel.has_aggregates() || !sel.group_by.is_empty() {
        ctx.emit(Diagnostic::error(
            codes::MISPLACED_CLAUSE,
            "aggregates and 'group by' apply to table sources; capture 'into table' first",
            sel.span,
        ))?;
    }
    if !sel.order_by.is_empty() || sel.top.is_some() || sel.distinct {
        ctx.emit(Diagnostic::error(
            codes::MISPLACED_CLAUSE,
            "'order by'/'top'/'distinct' apply to table sources; capture 'into table' first",
            sel.span,
        ))?;
    }

    let branches = crate::compile::or_branches(comp)
        .map_err(|e| Diagnostic::from_error(&e, sel.span).with_code(codes::BAD_PATH))?;
    // Per-branch scopes: labels name → (kind, vtype option); edge labels
    // tracked separately (they resolve in projections but not in step
    // conditions). `or` branches are independent queries, so each gets a
    // fresh scope; projections must resolve in *every* branch.
    let mut branch_scopes: Vec<BranchScope> = Vec::new();

    for branch in &branches {
        if branch.len() > 1 {
            // and-composition must share a label (§II-B3).
            let mut shares = false;
            let mut seen: FxHashMap<&str, usize> = FxHashMap::default();
            for (pi, p) in branch.iter().enumerate() {
                for v in p.vertex_steps() {
                    if let Some(l) = &v.label_def {
                        seen.insert(l.name.as_str(), pi);
                    }
                }
            }
            for (pi, p) in branch.iter().enumerate() {
                for v in p.vertex_steps() {
                    if let StepName::Named(n) = &v.name {
                        if let Some(&def_pi) = seen.get(n.as_str()) {
                            if def_pi != pi {
                                shares = true;
                            }
                        }
                    }
                }
            }
            if !shares {
                ctx.emit(Diagnostic::error(
                    codes::BAD_PATH,
                    "'and' composition requires the paths to share a label (§II-B3)",
                    sel.span,
                ))?;
            }
        }
        let mut labels: FxHashMap<String, (ast::LabelKind, Option<String>)> = FxHashMap::default();
        let mut edge_labels: FxHashMap<String, Option<String>> = FxHashMap::default();
        let mut steps_by_name: FxHashMap<String, Vec<StepInfo>> = FxHashMap::default();
        for path in branch {
            check_path(
                work,
                path,
                &mut labels,
                &mut edge_labels,
                &mut steps_by_name,
                ctx,
            )?;
        }
        branch_scopes.push((labels, edge_labels, steps_by_name));
    }

    // Targets + into consistency.
    let to_table = matches!(sel.into, Some(ast::IntoClause::Table(_)))
        || (sel.into.is_none() && !matches!(sel.targets, SelectTargets::Star));
    let mut out_schema: Option<TableSchema> = None;
    if let SelectTargets::Items(items) = &sel.targets {
        // Each `or` branch projects independently, so every item must
        // resolve in every branch; the schema is inferred from the first.
        for (bi, (labels, edge_labels, steps_by_name)) in branch_scopes.iter().enumerate() {
            let mut defs: Vec<ColumnDef> = Vec::new();
            let mut complete = true;
            for item in items {
                let SelectExpr::Col(c) = &item.expr else {
                    ctx.emit(Diagnostic::error(
                        codes::MISPLACED_CLAUSE,
                        "aggregates are not allowed over a graph source",
                        sel.span,
                    ))?;
                    complete = false;
                    continue;
                };
                let lookup_name = c.qualifier.as_ref().unwrap_or(&c.name);
                if let Some(et) = edge_labels.get(lookup_name) {
                    // Labeled edge step: attributes resolve through its
                    // associated table when the type is concrete.
                    if to_table {
                        if c.qualifier.is_none() {
                            ctx.emit(Diagnostic::error(
                                codes::WRONG_KIND,
                                "a bare edge label selects edges into a subgraph; \
                                 project an attribute (label.attr) for tables",
                                sel.span,
                            ))?;
                            complete = false;
                            continue;
                        }
                        if let Some(et) = et {
                            let assoc = match work.require_edge(et) {
                                Ok(def) => def.from_tables.first().cloned(),
                                Err(_) => None, // reported during path checks
                            };
                            if let Some(assoc) = assoc {
                                let schema = work
                                    .require_any_table(&assoc)
                                    .map_err(|e| entity_err(&e, sel.span))?;
                                if let Err(e) = schema.require(&c.name) {
                                    ctx.emit(attr_err(&e, sel.span))?;
                                }
                            }
                        }
                        complete = false; // dtype inference skipped for edge attrs
                    }
                    continue;
                }
                // Resolve to a step: label first, then unique step name.
                let vtype: Option<String> = if let Some((_, vt)) = labels.get(lookup_name) {
                    vt.clone()
                } else {
                    match steps_by_name.get(lookup_name).map(Vec::as_slice) {
                        Some([only]) => only.vtype.clone(),
                        Some(_) => {
                            ctx.emit(Diagnostic::error(
                                codes::BAD_PATH,
                                format!(
                                    "step name '{lookup_name}' is ambiguous; \
                                     label it to disambiguate"
                                ),
                                sel.span,
                            ))?;
                            complete = false;
                            continue;
                        }
                        None => {
                            ctx.emit(Diagnostic::error(
                                codes::UNKNOWN_NAME,
                                format!("unknown step or label '{lookup_name}'"),
                                sel.span,
                            ))?;
                            complete = false;
                            continue;
                        }
                    }
                };
                if to_table && complete {
                    let dtype = match (&c.qualifier, &vtype) {
                        (Some(_), Some(vt)) => {
                            // step.attr: attr must exist on the step's table.
                            let def = work
                                .require_vertex(vt)
                                .map_err(|e| entity_err(&e, sel.span))?;
                            let schema = work
                                .table(&def.table)
                                .expect("vertex defs reference tables");
                            match schema.require(&c.name) {
                                Ok(ci) => Some(schema.column(ci).dtype),
                                Err(_) => {
                                    ctx.emit(Diagnostic::error(
                                        codes::UNKNOWN_ATTR,
                                        format!("vertex type {vt} has no attribute '{}'", c.name),
                                        sel.span,
                                    ))?;
                                    complete = false;
                                    continue;
                                }
                            }
                        }
                        (None, Some(vt)) => {
                            let def = work
                                .require_vertex(vt)
                                .map_err(|e| entity_err(&e, sel.span))?;
                            if def.key.len() == 1 {
                                let schema = work
                                    .table(&def.table)
                                    .expect("vertex defs reference tables");
                                let ci = schema
                                    .require(&def.key[0])
                                    .map_err(|e| attr_err(&e, sel.span))?;
                                Some(schema.column(ci).dtype)
                            } else {
                                None // multi-key: schema widens; skip inference
                            }
                        }
                        _ => None, // variant step: defer to execution
                    };
                    match dtype {
                        Some(dt) => {
                            let name = item.alias.clone().unwrap_or_else(|| c.name.clone());
                            defs.push(ColumnDef::new(name, dt));
                        }
                        None => complete = false, // partial inference
                    }
                }
            }
            if bi == 0 && to_table && complete && !defs.is_empty() {
                // Uniquify like the executor does.
                let mut seen: FxHashMap<String, usize> = FxHashMap::default();
                let defs = defs
                    .into_iter()
                    .map(|d| {
                        let n = seen.entry(d.name.clone()).or_insert(0);
                        *n += 1;
                        if *n == 1 {
                            d
                        } else {
                            ColumnDef::new(format!("{}_{n}", d.name), d.dtype)
                        }
                    })
                    .collect();
                out_schema =
                    Some(TableSchema::new(defs).map_err(|e| Diagnostic::from_error(&e, sel.span))?);
            }
        }
    }
    if let (Some(ast::IntoClause::Table(_)), false) = (&sel.into, to_table) {
        ctx.emit(Diagnostic::error(
            codes::MISPLACED_CLAUSE,
            "'select *' over a graph captures 'into subgraph', not 'into table'",
            sel.span,
        ))?;
    }
    register_into(work, sel, out_schema)
}

/// Checks one vertex step and returns its static info. With a collecting
/// context, unknown vertex types degrade to a variant (`vtype: None`)
/// step so the rest of the path is still checked.
#[allow(clippy::too_many_arguments)]
fn check_vstep(
    work: &Catalog,
    v: &ast::VertexStep,
    labels: &mut FxHashMap<String, (ast::LabelKind, Option<String>)>,
    steps_by_name: &mut FxHashMap<String, Vec<StepInfo>>,
    register: bool,
    ctx: &mut Ctx,
) -> DResult<StepInfo> {
    let info = match &v.name {
        StepName::Any => {
            if v.cond.is_some() {
                ctx.emit(Diagnostic::error(
                    codes::BAD_LABEL,
                    "conditions are not allowed on variant ([ ]) vertex steps",
                    v.span,
                ))?;
            }
            StepInfo {
                vtype: None,
                display: "[]".into(),
            }
        }
        StepName::Named(n) => {
            if let Some((_, vt)) = labels.get(n) {
                StepInfo {
                    vtype: vt.clone(),
                    display: n.clone(),
                }
            } else {
                match work.require_vertex(n) {
                    Ok(def) => StepInfo {
                        vtype: Some(def.name.clone()),
                        display: n.clone(),
                    },
                    Err(e) => {
                        ctx.emit(entity_err(&e, v.span))?;
                        StepInfo {
                            vtype: None,
                            display: n.clone(),
                        }
                    }
                }
            }
        }
    };
    if let Some(l) = &v.label_def {
        if labels.contains_key(&l.name) {
            ctx.emit(Diagnostic::error(
                codes::BAD_LABEL,
                format!("label '{}' defined twice", l.name),
                l.span,
            ))?;
        } else {
            labels.insert(l.name.clone(), (l.kind, info.vtype.clone()));
        }
    }
    if let Some(seed) = &v.seed {
        if !work.has_result_subgraph(seed) {
            let d = match work.kind_of(seed) {
                Some(k) => Diagnostic::error(
                    codes::WRONG_KIND,
                    format!("'{seed}' is a {k}, not a result subgraph"),
                    v.span,
                ),
                None => Diagnostic::error(
                    codes::UNKNOWN_NAME,
                    format!("unknown result subgraph '{seed}'"),
                    v.span,
                ),
            };
            ctx.emit(d)?;
        }
    }
    // Condition type checking against the step's source table (only
    // for concrete steps; label-qualified operands checked loosely).
    if let (Some(cond), Some(vt)) = (&v.cond, &info.vtype) {
        let def = work
            .require_vertex(vt)
            .map_err(|e| entity_err(&e, v.span))?;
        let schema = work
            .table(&def.table)
            .expect("vertex defs reference tables");
        typecheck_step_cond(work, cond, schema, &info.display, labels, ctx)?;
    }
    if register && matches!(v.name, StepName::Named(_)) {
        steps_by_name
            .entry(info.display.clone())
            .or_default()
            .push(info.clone());
    }
    Ok(info)
}

fn check_path(
    work: &Catalog,
    path: &ast::PathQuery,
    labels: &mut FxHashMap<String, (ast::LabelKind, Option<String>)>,
    edge_labels: &mut FxHashMap<String, Option<String>>,
    steps_by_name: &mut FxHashMap<String, Vec<StepInfo>>,
    ctx: &mut Ctx,
) -> DResult<()> {
    // Walk the path: top-level steps build `infos` (aligned with hop
    // endpoint indices); group hops are checked but not positional.
    let mut infos: Vec<StepInfo> = vec![check_vstep(
        work,
        &path.head,
        labels,
        steps_by_name,
        true,
        ctx,
    )?];
    let mut hop_edges: Vec<(usize, &ast::EdgeStep)> = Vec::new();
    for seg in &path.segments {
        match seg {
            ast::Segment::Hop { edge, vertex } => {
                if let Some(l) = &edge.label_def {
                    if labels.contains_key(&l.name) || edge_labels.contains_key(&l.name) {
                        ctx.emit(Diagnostic::error(
                            codes::BAD_LABEL,
                            format!("label '{}' defined twice", l.name),
                            l.span,
                        ))?;
                    } else {
                        let et = match &edge.name {
                            StepName::Named(n) => Some(n.clone()),
                            StepName::Any => None,
                        };
                        edge_labels.insert(l.name.clone(), et);
                    }
                }
                hop_edges.push((infos.len() - 1, edge));
                infos.push(check_vstep(work, vertex, labels, steps_by_name, true, ctx)?);
            }
            ast::Segment::Group { hops, exit, .. } => {
                for (e, hv) in hops {
                    if matches!(e.name, StepName::Any) && e.cond.is_some() {
                        ctx.emit(Diagnostic::error(
                            codes::BAD_LABEL,
                            "conditions are not allowed on variant ([ ]) edge steps",
                            e.span,
                        ))?;
                    }
                    if let StepName::Named(n) = &e.name {
                        if let Err(err) = work.require_edge(n) {
                            ctx.emit(entity_err(&err, e.span))?;
                        }
                    }
                    // Hop vertex: full step checks, but not addressable.
                    check_vstep(work, hv, labels, steps_by_name, false, ctx)?;
                }
                match exit {
                    Some(v) => infos.push(check_vstep(work, v, labels, steps_by_name, true, ctx)?),
                    None => infos.push(StepInfo {
                        vtype: None,
                        display: format!("exit{}", infos.len()),
                    }),
                }
            }
        }
    }

    // Edge existence + endpoint compatibility for plain hops.
    for (i, e) in hop_edges {
        match &e.name {
            StepName::Any => {
                if e.cond.is_some() {
                    ctx.emit(Diagnostic::error(
                        codes::BAD_LABEL,
                        "conditions are not allowed on variant ([ ]) edge steps",
                        e.span,
                    ))?;
                }
            }
            StepName::Named(n) => {
                let def = match work.require_edge(n) {
                    Ok(def) => def,
                    Err(err) => {
                        ctx.emit(entity_err(&err, e.span))?;
                        continue;
                    }
                };
                let (from, to) = (&infos[i], &infos[i + 1]);
                let (want_src, want_tgt) = match e.dir {
                    ast::Dir::Out => (from, to),
                    ast::Dir::In => (to, from),
                };
                if let Some(vt) = &want_src.vtype {
                    if *vt != def.src_type {
                        ctx.emit(Diagnostic::error(
                            codes::BAD_ENDPOINT,
                            format!("edge '{n}' starts at '{}', not '{vt}'", def.src_type),
                            e.span,
                        ))?;
                    }
                }
                if let Some(vt) = &want_tgt.vtype {
                    if *vt != def.tgt_type {
                        ctx.emit(Diagnostic::error(
                            codes::BAD_ENDPOINT,
                            format!("edge '{n}' ends at '{}', not '{vt}'", def.tgt_type),
                            e.span,
                        ))?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Type-checks a step condition: unqualified attributes against the step's
/// own schema, label-qualified attributes against the label's step schema
/// (when concrete).
fn typecheck_step_cond(
    work: &Catalog,
    cond: &ast::Expr,
    schema: &TableSchema,
    display: &str,
    labels: &FxHashMap<String, (ast::LabelKind, Option<String>)>,
    ctx: &mut Ctx,
) -> DResult<()> {
    fn operand_type(
        work: &Catalog,
        schema: &TableSchema,
        display: &str,
        labels: &FxHashMap<String, (ast::LabelKind, Option<String>)>,
        o: &ast::Operand,
        span: Span,
    ) -> DResult<Option<DataType>> {
        match o {
            ast::Operand::Lit(l) => Ok(lit_type(l)),
            ast::Operand::Attr {
                qualifier: None,
                name,
            } => {
                let ci = schema.require(name).map_err(|_| {
                    Diagnostic::error(
                        codes::UNKNOWN_ATTR,
                        format!("step '{display}' has no attribute '{name}'"),
                        span,
                    )
                })?;
                Ok(Some(schema.column(ci).dtype))
            }
            ast::Operand::Attr {
                qualifier: Some(q),
                name,
            } => {
                if q == display {
                    let ci = schema.require(name).map_err(|e| attr_err(&e, span))?;
                    return Ok(Some(schema.column(ci).dtype));
                }
                let Some((_, vt)) = labels.get(q) else {
                    return Err(Diagnostic::error(
                        codes::BAD_QUALIFIER,
                        format!("unknown label '{q}' in step condition"),
                        span,
                    ));
                };
                match vt {
                    None => Ok(None), // variant label: checked at runtime
                    Some(vt) => {
                        let def = work.require_vertex(vt).map_err(|e| entity_err(&e, span))?;
                        let s = work
                            .table(&def.table)
                            .expect("vertex defs reference tables");
                        let ci = s.require(name).map_err(|e| attr_err(&e, span))?;
                        Ok(Some(s.column(ci).dtype))
                    }
                }
            }
        }
    }
    fn walk(
        work: &Catalog,
        schema: &TableSchema,
        display: &str,
        labels: &FxHashMap<String, (ast::LabelKind, Option<String>)>,
        e: &ast::Expr,
        ctx: &mut Ctx,
    ) -> DResult<()> {
        match e {
            ast::Expr::And(ps) | ast::Expr::Or(ps) => ps
                .iter()
                .try_for_each(|p| walk(work, schema, display, labels, p, ctx)),
            ast::Expr::Not(inner) => walk(work, schema, display, labels, inner, ctx),
            ast::Expr::Cmp { lhs, rhs, span, .. } => {
                let a = match operand_type(work, schema, display, labels, lhs, *span) {
                    Ok(t) => t,
                    Err(d) => {
                        ctx.emit(d)?;
                        None
                    }
                };
                let b = match operand_type(work, schema, display, labels, rhs, *span) {
                    Ok(t) => t,
                    Err(d) => {
                        ctx.emit(d)?;
                        None
                    }
                };
                if let (Some(a), Some(b)) = (a, b) {
                    if !a.comparable_with(b) {
                        ctx.emit(Diagnostic::error(
                            codes::INCOMPARABLE,
                            format!("cannot compare {a} with {b}"),
                            *span,
                        ))?;
                    }
                }
                Ok(())
            }
        }
    }
    walk(work, schema, display, labels, cond, ctx)
}

fn register_into(
    work: &mut Catalog,
    sel: &ast::SelectStmt,
    schema: Option<TableSchema>,
) -> DResult<()> {
    match &sel.into {
        Some(ast::IntoClause::Table(name)) => {
            let schema = schema.unwrap_or_else(|| TableSchema::new(Vec::new()).expect("empty ok"));
            work.add_result_table(name, schema)
                .map_err(|e| dup_err(&e, sel.span))
        }
        Some(ast::IntoClause::Subgraph(name)) => work
            .add_result_subgraph(name)
            .map_err(|e| dup_err(&e, sel.span)),
        None => Ok(()),
    }
}
