//! Static query analysis (paper §III-A): catalog-only checks, no data
//! access.
//!
//! "Correctness checks include a number of different type checking issues:
//! is the query comparing an attribute with a constant (or other
//! attribute) of the wrong type? … is the query using an entity of
//! correct type for certain operations? … is a path query correctly
//! formulated?"
//!
//! The analyzer threads a *working catalog* through the script so that a
//! statement can reference entities (including `into` results) created by
//! earlier statements — the front-end server's evolving metadata.

use graql_parser::ast::{self, SelectExpr, SelectTargets, StepName, Stmt};
use graql_table::{ColumnDef, TableSchema};
use graql_types::{DataType, GraqlError, Result};
use rustc_hash::FxHashMap;

use crate::catalog::{Catalog, EdgeDef, VertexDef};
use crate::cond::{lit_type, typecheck_single_table};

/// Statically checks a whole script against (a working copy of) the
/// catalog. Returns the catalog state after the script, so callers can
/// inspect inferred result schemas.
pub fn analyze_script(catalog: &Catalog, script: &ast::Script) -> Result<Catalog> {
    let mut work = catalog.clone();
    for stmt in &script.statements {
        analyze_statement(&mut work, stmt)?;
    }
    Ok(work)
}

/// Statically checks one statement, updating the working catalog.
pub fn analyze_statement(work: &mut Catalog, stmt: &Stmt) -> Result<()> {
    match stmt {
        Stmt::CreateTable(ct) => {
            let schema = TableSchema::new(
                ct.columns
                    .iter()
                    .map(|(n, t)| ColumnDef::new(n, t.to_data_type()))
                    .collect(),
            )?;
            work.add_table(&ct.name, schema)
        }
        Stmt::CreateVertex(cv) => {
            let schema = work
                .table(&cv.from_table)
                .ok_or_else(|| match work.kind_of(&cv.from_table) {
                    Some(k) => GraqlError::type_error(format!(
                        "{:?} is a {k}, not a table",
                        cv.from_table
                    )),
                    None => GraqlError::name(format!("unknown table {:?}", cv.from_table)),
                })?
                .clone();
            if cv.key.is_empty() {
                return Err(GraqlError::path(format!("vertex {:?} has an empty key", cv.name)));
            }
            for k in &cv.key {
                schema.require(k)?;
            }
            if let Some(w) = &cv.where_clause {
                typecheck_single_table(w, &schema, &[&cv.from_table, &cv.name])?;
            }
            work.add_vertex(VertexDef {
                name: cv.name.clone(),
                table: cv.from_table.clone(),
                key: cv.key.clone(),
                where_clause: cv.where_clause.clone(),
            })
        }
        Stmt::CreateEdge(ce) => {
            let src = work.require_vertex(&ce.source.vertex_type)?.clone();
            let tgt = work.require_vertex(&ce.target.vertex_type)?.clone();
            for t in &ce.from_tables {
                work.require_any_table(t)?;
            }
            if let Some(w) = &ce.where_clause {
                typecheck_edge_where(work, ce, &src, &tgt, w)?;
            }
            work.add_edge(EdgeDef {
                name: ce.name.clone(),
                src_type: ce.source.vertex_type.clone(),
                src_alias: ce.source.alias.clone(),
                tgt_type: ce.target.vertex_type.clone(),
                tgt_alias: ce.target.alias.clone(),
                from_tables: ce.from_tables.clone(),
                where_clause: ce.where_clause.clone(),
            })
        }
        Stmt::Ingest(ing) => {
            if work.table(&ing.table).is_none() {
                return Err(match work.kind_of(&ing.table) {
                    Some(k) => GraqlError::type_error(format!(
                        "cannot ingest into {:?}: it is a {k}, not a base table",
                        ing.table
                    )),
                    None => GraqlError::name(format!("unknown table {:?}", ing.table)),
                });
            }
            Ok(())
        }
        Stmt::Select(sel) => analyze_select(work, sel),
    }
}

/// Type environment of an edge `where` clause: qualifier → schema.
fn typecheck_edge_where(
    work: &Catalog,
    ce: &ast::CreateEdge,
    src: &VertexDef,
    tgt: &VertexDef,
    w: &ast::Expr,
) -> Result<()> {
    let mut env: FxHashMap<String, TableSchema> = FxHashMap::default();
    let src_schema = work.table(&src.table).expect("vertex defs reference tables").clone();
    let tgt_schema = work.table(&tgt.table).expect("vertex defs reference tables").clone();
    let src_qual = ce.source.alias.clone().unwrap_or_else(|| ce.source.vertex_type.clone());
    let tgt_qual = ce.target.alias.clone().unwrap_or_else(|| ce.target.vertex_type.clone());
    if src_qual == tgt_qual {
        return Err(GraqlError::name(format!(
            "edge {:?} endpoints are both referred to as {:?}; disambiguate with 'as' aliases",
            ce.name, src_qual
        )));
    }
    env.insert(src_qual, src_schema.clone());
    env.insert(tgt_qual, tgt_schema.clone());
    if src.table != tgt.table {
        env.entry(src.table.clone()).or_insert(src_schema);
        env.entry(tgt.table.clone()).or_insert(tgt_schema);
    }
    for t in &ce.from_tables {
        env.insert(t.clone(), work.require_any_table(t)?.clone());
    }

    // Walk comparisons, resolving operand types.
    fn operand_type(
        work: &Catalog,
        env: &mut FxHashMap<String, TableSchema>,
        o: &ast::Operand,
    ) -> Result<Option<DataType>> {
        match o {
            ast::Operand::Lit(l) => Ok(lit_type(l)),
            ast::Operand::Attr { qualifier: Some(q), name } => {
                if !env.contains_key(q) {
                    // Implicit associated table (the Fig. 3 `feature` case).
                    let schema = work
                        .table(q)
                        .ok_or_else(|| GraqlError::name(format!("unknown qualifier {q:?}")))?
                        .clone();
                    env.insert(q.clone(), schema);
                }
                let schema = &env[q];
                Ok(Some(schema.column(schema.require(name)?).dtype))
            }
            ast::Operand::Attr { qualifier: None, name } => {
                let hits: Vec<DataType> = env
                    .values()
                    .filter_map(|s| s.index_of(name).map(|c| s.column(c).dtype))
                    .collect();
                match hits.len() {
                    1 => Ok(Some(hits[0])),
                    0 => Err(GraqlError::name(format!("unknown attribute {name:?}"))),
                    _ => Err(GraqlError::name(format!("ambiguous attribute {name:?}; qualify it"))),
                }
            }
        }
    }
    fn walk(
        work: &Catalog,
        env: &mut FxHashMap<String, TableSchema>,
        e: &ast::Expr,
    ) -> Result<()> {
        match e {
            ast::Expr::And(ps) | ast::Expr::Or(ps) => ps.iter().try_for_each(|p| walk(work, env, p)),
            ast::Expr::Not(inner) => walk(work, env, inner),
            ast::Expr::Cmp { lhs, rhs, .. } => {
                let a = operand_type(work, env, lhs)?;
                let b = operand_type(work, env, rhs)?;
                if let (Some(a), Some(b)) = (a, b) {
                    if !a.comparable_with(b) {
                        return Err(GraqlError::type_error(format!("cannot compare {a} with {b}")));
                    }
                }
                Ok(())
            }
        }
    }
    walk(work, &mut env, w)
}

// ---------------------------------------------------------------------------
// Select analysis
// ---------------------------------------------------------------------------

fn analyze_select(work: &mut Catalog, sel: &ast::SelectStmt) -> Result<()> {
    match &sel.source {
        ast::SelectSource::Table(t) => analyze_table_select(work, sel, t),
        ast::SelectSource::Graph(comp) => analyze_graph_select(work, sel, comp),
    }
}

fn analyze_table_select(work: &mut Catalog, sel: &ast::SelectStmt, table: &str) -> Result<()> {
    let schema = work.require_any_table(table)?.clone();
    // An empty schema marks a result table whose columns could not be
    // inferred statically (e.g. edge-label projections); skip column-level
    // checks and let execution validate.
    if schema.is_empty() {
        return register_into(work, sel, None);
    }
    if let Some(w) = &sel.where_clause {
        typecheck_single_table(w, &schema, &[table])?;
    }
    let col = |c: &ast::ColRef| -> Result<usize> {
        if let Some(q) = &c.qualifier {
            if q != table {
                return Err(GraqlError::name(format!(
                    "unknown qualifier {q:?}; the table is {table:?}"
                )));
            }
        }
        schema.require(&c.name)
    };
    for g in &sel.group_by {
        col(g)?;
    }
    // Output schema inference.
    let mut out_defs: Vec<ColumnDef> = Vec::new();
    match &sel.targets {
        SelectTargets::Star => {
            if !sel.group_by.is_empty() {
                return Err(GraqlError::type_error("'select *' cannot be grouped"));
            }
            out_defs = schema.columns().to_vec();
        }
        SelectTargets::Items(items) => {
            let grouped = sel.has_aggregates() || !sel.group_by.is_empty();
            for (i, item) in items.iter().enumerate() {
                match &item.expr {
                    SelectExpr::Col(c) => {
                        let ci = col(c)?;
                        if grouped
                            && !sel
                                .group_by
                                .iter()
                                .any(|g| col(g).is_ok_and(|gi| gi == ci))
                        {
                            return Err(GraqlError::type_error(format!(
                                "column {:?} must appear in 'group by' or inside an aggregate",
                                c.name
                            )));
                        }
                        let name = item.alias.clone().unwrap_or_else(|| c.name.clone());
                        out_defs.push(ColumnDef::new(name, schema.column(ci).dtype));
                    }
                    SelectExpr::Agg(a) => {
                        let (dtype, arg) = match a {
                            ast::AggCall::CountStar => (DataType::Integer, None),
                            ast::AggCall::Count(c) => (DataType::Integer, Some(c)),
                            ast::AggCall::Sum(c) => {
                                (schema.column(col(c)?).dtype, Some(c))
                            }
                            ast::AggCall::Avg(c) => (DataType::Float, Some(c)),
                            ast::AggCall::Min(c) | ast::AggCall::Max(c) => {
                                (schema.column(col(c)?).dtype, Some(c))
                            }
                        };
                        if let Some(c) = arg {
                            let ci = col(c)?;
                            let dt = schema.column(ci).dtype;
                            let needs_numeric =
                                matches!(a, ast::AggCall::Sum(_) | ast::AggCall::Avg(_));
                            if needs_numeric && !dt.is_numeric() {
                                return Err(GraqlError::type_error(format!(
                                    "aggregate over non-numeric column {:?}",
                                    c.name
                                )));
                            }
                        }
                        let name = item.alias.clone().unwrap_or_else(|| format!("agg_{i}"));
                        out_defs.push(ColumnDef::new(name, dtype));
                    }
                }
            }
        }
    }
    let out_schema = TableSchema::new(out_defs)?;
    for k in &sel.order_by {
        out_schema.require(&k.col.name).map_err(|_| {
            GraqlError::name(format!(
                "'order by' column {:?} is not in the select output",
                k.col.name
            ))
        })?;
    }
    register_into(work, sel, Some(out_schema))
}

/// One `or` branch's name scope: vertex labels (kind + optional concrete
/// type), edge labels (optional concrete edge type), and named steps.
type BranchScope = (
    FxHashMap<String, (ast::LabelKind, Option<String>)>,
    FxHashMap<String, Option<String>>,
    FxHashMap<String, Vec<StepInfo>>,
);

/// Static per-step type info for a graph select.
#[derive(Clone)]
struct StepInfo {
    /// `None` = variant (unknown concrete types statically).
    vtype: Option<String>,
    display: String,
}

fn analyze_graph_select(
    work: &mut Catalog,
    sel: &ast::SelectStmt,
    comp: &ast::PathComposition,
) -> Result<()> {
    if sel.where_clause.is_some() {
        return Err(GraqlError::type_error(
            "graph selects place conditions on steps, not in a 'where' clause",
        ));
    }
    if sel.has_aggregates() || !sel.group_by.is_empty() {
        return Err(GraqlError::type_error(
            "aggregates and 'group by' apply to table sources; capture 'into table' first",
        ));
    }
    if !sel.order_by.is_empty() || sel.top.is_some() || sel.distinct {
        return Err(GraqlError::type_error(
            "'order by'/'top'/'distinct' apply to table sources; capture 'into table' first",
        ));
    }

    let branches = crate::compile::or_branches(comp)?;
    // Per-branch scopes: labels name → (kind, vtype option); edge labels
    // tracked separately (they resolve in projections but not in step
    // conditions). `or` branches are independent queries, so each gets a
    // fresh scope; projections must resolve in *every* branch.
    let mut branch_scopes: Vec<BranchScope> = Vec::new();

    for branch in &branches {
        if branch.len() > 1 {
            // and-composition must share a label (§II-B3).
            let mut shares = false;
            let mut seen: FxHashMap<&str, usize> = FxHashMap::default();
            for (pi, p) in branch.iter().enumerate() {
                for v in p.vertex_steps() {
                    if let Some(l) = &v.label_def {
                        seen.insert(l.name.as_str(), pi);
                    }
                }
            }
            for (pi, p) in branch.iter().enumerate() {
                for v in p.vertex_steps() {
                    if let StepName::Named(n) = &v.name {
                        if let Some(&def_pi) = seen.get(n.as_str()) {
                            if def_pi != pi {
                                shares = true;
                            }
                        }
                    }
                }
            }
            if !shares {
                return Err(GraqlError::path(
                    "'and' composition requires the paths to share a label (§II-B3)",
                ));
            }
        }
        let mut labels: FxHashMap<String, (ast::LabelKind, Option<String>)> =
            FxHashMap::default();
        let mut edge_labels: FxHashMap<String, Option<String>> = FxHashMap::default();
        let mut steps_by_name: FxHashMap<String, Vec<StepInfo>> = FxHashMap::default();
        for path in branch {
            analyze_path(work, path, &mut labels, &mut edge_labels, &mut steps_by_name)?;
        }
        branch_scopes.push((labels, edge_labels, steps_by_name));
    }

    // Targets + into consistency.
    let to_table = matches!(sel.into, Some(ast::IntoClause::Table(_)))
        || (sel.into.is_none() && !matches!(sel.targets, SelectTargets::Star));
    let mut out_schema: Option<TableSchema> = None;
    if let SelectTargets::Items(items) = &sel.targets {
        // Each `or` branch projects independently, so every item must
        // resolve in every branch; the schema is inferred from the first.
        for (bi, (labels, edge_labels, steps_by_name)) in branch_scopes.iter().enumerate() {
            let mut defs: Vec<ColumnDef> = Vec::new();
            let mut complete = true;
            for item in items {
                let SelectExpr::Col(c) = &item.expr else {
                    return Err(GraqlError::type_error(
                        "aggregates are not allowed over a graph source",
                    ));
                };
                let lookup_name = c.qualifier.as_ref().unwrap_or(&c.name);
                if let Some(et) = edge_labels.get(lookup_name) {
                    // Labeled edge step: attributes resolve through its
                    // associated table when the type is concrete.
                    if to_table {
                        if c.qualifier.is_none() {
                            return Err(GraqlError::type_error(
                                "a bare edge label selects edges into a subgraph; \
                                 project an attribute (label.attr) for tables",
                            ));
                        }
                        if let Some(et) = et {
                            let def = work.require_edge(et)?;
                            if let Some(assoc) = def.from_tables.first().cloned() {
                                let schema = work.require_any_table(&assoc)?;
                                schema.require(&c.name)?;
                            }
                        }
                        complete = false; // dtype inference skipped for edge attrs
                    }
                    continue;
                }
                // Resolve to a step: label first, then unique step name.
                let vtype: Option<String> = if let Some((_, vt)) = labels.get(lookup_name) {
                    vt.clone()
                } else {
                    match steps_by_name.get(lookup_name).map(Vec::as_slice) {
                        Some([only]) => only.vtype.clone(),
                        Some(_) => {
                            return Err(GraqlError::path(format!(
                                "step name {lookup_name:?} is ambiguous; label it to disambiguate"
                            )))
                        }
                        None => {
                            return Err(GraqlError::name(format!(
                                "unknown step or label {lookup_name:?}"
                            )))
                        }
                    }
                };
                if to_table && complete {
                    let dtype = match (&c.qualifier, &vtype) {
                        (Some(_), Some(vt)) => {
                            // step.attr: attr must exist on the step's table.
                            let def = work.require_vertex(vt)?;
                            let schema =
                                work.table(&def.table).expect("vertex defs reference tables");
                            Some(schema.column(schema.require(&c.name).map_err(|_| {
                                GraqlError::name(format!(
                                    "vertex type {vt} has no attribute {:?}",
                                    c.name
                                ))
                            })?).dtype)
                        }
                        (None, Some(vt)) => {
                            let def = work.require_vertex(vt)?;
                            if def.key.len() == 1 {
                                let schema = work
                                    .table(&def.table)
                                    .expect("vertex defs reference tables");
                                Some(schema.column(schema.require(&def.key[0])?).dtype)
                            } else {
                                None // multi-key: schema widens; skip inference
                            }
                        }
                        _ => None, // variant step: defer to execution
                    };
                    match dtype {
                        Some(dt) => {
                            let name = item.alias.clone().unwrap_or_else(|| c.name.clone());
                            defs.push(ColumnDef::new(name, dt));
                        }
                        None => complete = false, // partial inference
                    }
                }
            }
            if bi == 0 && to_table && complete && !defs.is_empty() {
                // Uniquify like the executor does.
                let mut seen: FxHashMap<String, usize> = FxHashMap::default();
                let defs = defs
                    .into_iter()
                    .map(|d| {
                        let n = seen.entry(d.name.clone()).or_insert(0);
                        *n += 1;
                        if *n == 1 {
                            d
                        } else {
                            ColumnDef::new(format!("{}_{n}", d.name), d.dtype)
                        }
                    })
                    .collect();
                out_schema = Some(TableSchema::new(defs)?);
            }
        }
    }
    match (&sel.into, to_table) {
        (Some(ast::IntoClause::Table(_)), false) => {
            return Err(GraqlError::type_error(
                "'select *' over a graph captures 'into subgraph', not 'into table'",
            ))
        }
        (Some(ast::IntoClause::Subgraph(_)), true) => {
            // Items → subgraph is fine when the items are bare steps; the
            // executor enforces the rest.
        }
        _ => {}
    }
    register_into(work, sel, out_schema)
}

fn analyze_path(
    work: &Catalog,
    path: &ast::PathQuery,
    labels: &mut FxHashMap<String, (ast::LabelKind, Option<String>)>,
    edge_labels: &mut FxHashMap<String, Option<String>>,
    steps_by_name: &mut FxHashMap<String, Vec<StepInfo>>,
) -> Result<()> {
    // Checks one vertex step and returns its static info.
    let mut check_vstep = |v: &ast::VertexStep,
                           labels: &mut FxHashMap<String, (ast::LabelKind, Option<String>)>,
                           register: bool|
     -> Result<StepInfo> {
        let info = match &v.name {
            StepName::Any => {
                if v.cond.is_some() {
                    return Err(GraqlError::path(
                        "conditions are not allowed on variant ([ ]) vertex steps",
                    ));
                }
                StepInfo { vtype: None, display: "[]".into() }
            }
            StepName::Named(n) => {
                if let Some((_, vt)) = labels.get(n) {
                    StepInfo { vtype: vt.clone(), display: n.clone() }
                } else {
                    let def = work.require_vertex(n)?;
                    StepInfo { vtype: Some(def.name.clone()), display: n.clone() }
                }
            }
        };
        if let Some(l) = &v.label_def {
            if labels.contains_key(&l.name) {
                return Err(GraqlError::path(format!("label {:?} defined twice", l.name)));
            }
            labels.insert(l.name.clone(), (l.kind, info.vtype.clone()));
        }
        if let Some(seed) = &v.seed {
            if !work.has_result_subgraph(seed) {
                return Err(match work.kind_of(seed) {
                    Some(k) => GraqlError::type_error(format!(
                        "{seed:?} is a {k}, not a result subgraph"
                    )),
                    None => GraqlError::name(format!("unknown result subgraph {seed:?}")),
                });
            }
        }
        // Condition type checking against the step's source table (only
        // for concrete steps; label-qualified operands checked loosely).
        if let (Some(cond), Some(vt)) = (&v.cond, &info.vtype) {
            let def = work.require_vertex(vt)?;
            let schema = work.table(&def.table).expect("vertex defs reference tables");
            typecheck_step_cond(work, cond, schema, &info.display, labels)?;
        }
        if register && matches!(v.name, StepName::Named(_)) {
            steps_by_name.entry(info.display.clone()).or_default().push(info.clone());
        }
        Ok(info)
    };

    // Walk the path: top-level steps build `infos` (aligned with hop
    // endpoint indices); group hops are checked but not positional.
    let mut infos: Vec<StepInfo> = vec![check_vstep(&path.head, labels, true)?];
    let mut hop_edges: Vec<(usize, &ast::EdgeStep)> = Vec::new();
    for seg in &path.segments {
        match seg {
            ast::Segment::Hop { edge, vertex } => {
                if let Some(l) = &edge.label_def {
                    if labels.contains_key(&l.name) || edge_labels.contains_key(&l.name) {
                        return Err(GraqlError::path(format!(
                            "label {:?} defined twice",
                            l.name
                        )));
                    }
                    let et = match &edge.name {
                        StepName::Named(n) => Some(n.clone()),
                        StepName::Any => None,
                    };
                    edge_labels.insert(l.name.clone(), et);
                }
                hop_edges.push((infos.len() - 1, edge));
                infos.push(check_vstep(vertex, labels, true)?);
            }
            ast::Segment::Group { hops, exit, .. } => {
                for (e, hv) in hops {
                    if matches!(e.name, StepName::Any) && e.cond.is_some() {
                        return Err(GraqlError::path(
                            "conditions are not allowed on variant ([ ]) edge steps",
                        ));
                    }
                    if let StepName::Named(n) = &e.name {
                        work.require_edge(n)?;
                    }
                    // Hop vertex: full step checks, but not addressable.
                    check_vstep(hv, labels, false)?;
                }
                match exit {
                    Some(v) => infos.push(check_vstep(v, labels, true)?),
                    None => infos.push(StepInfo {
                        vtype: None,
                        display: format!("exit{}", infos.len()),
                    }),
                }
            }
        }
    }

    // Edge existence + endpoint compatibility for plain hops.
    for (i, e) in hop_edges {
        match &e.name {
            StepName::Any => {
                if e.cond.is_some() {
                    return Err(GraqlError::path(
                        "conditions are not allowed on variant ([ ]) edge steps",
                    ));
                }
            }
            StepName::Named(n) => {
                let def = work.require_edge(n)?;
                let (from, to) = (&infos[i], &infos[i + 1]);
                let (want_src, want_tgt) = match e.dir {
                    ast::Dir::Out => (from, to),
                    ast::Dir::In => (to, from),
                };
                if let Some(vt) = &want_src.vtype {
                    if *vt != def.src_type {
                        return Err(GraqlError::path(format!(
                            "edge {n:?} starts at {:?}, not {:?}",
                            def.src_type, vt
                        )));
                    }
                }
                if let Some(vt) = &want_tgt.vtype {
                    if *vt != def.tgt_type {
                        return Err(GraqlError::path(format!(
                            "edge {n:?} ends at {:?}, not {:?}",
                            def.tgt_type, vt
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Type-checks a step condition: unqualified attributes against the step's
/// own schema, label-qualified attributes against the label's step schema
/// (when concrete).
fn typecheck_step_cond(
    work: &Catalog,
    cond: &ast::Expr,
    schema: &TableSchema,
    display: &str,
    labels: &FxHashMap<String, (ast::LabelKind, Option<String>)>,
) -> Result<()> {
    fn operand_type(
        work: &Catalog,
        schema: &TableSchema,
        display: &str,
        labels: &FxHashMap<String, (ast::LabelKind, Option<String>)>,
        o: &ast::Operand,
    ) -> Result<Option<DataType>> {
        match o {
            ast::Operand::Lit(l) => Ok(lit_type(l)),
            ast::Operand::Attr { qualifier: None, name } => {
                Ok(Some(schema.column(schema.require(name).map_err(|_| {
                    GraqlError::name(format!("step {display:?} has no attribute {name:?}"))
                })?).dtype))
            }
            ast::Operand::Attr { qualifier: Some(q), name } => {
                if q == display {
                    return Ok(Some(schema.column(schema.require(name)?).dtype));
                }
                let Some((_, vt)) = labels.get(q) else {
                    return Err(GraqlError::name(format!(
                        "unknown label {q:?} in step condition"
                    )));
                };
                match vt {
                    None => Ok(None), // variant label: checked at runtime
                    Some(vt) => {
                        let def = work.require_vertex(vt)?;
                        let s = work.table(&def.table).expect("vertex defs reference tables");
                        Ok(Some(s.column(s.require(name)?).dtype))
                    }
                }
            }
        }
    }
    fn walk(
        work: &Catalog,
        schema: &TableSchema,
        display: &str,
        labels: &FxHashMap<String, (ast::LabelKind, Option<String>)>,
        e: &ast::Expr,
    ) -> Result<()> {
        match e {
            ast::Expr::And(ps) | ast::Expr::Or(ps) => {
                ps.iter().try_for_each(|p| walk(work, schema, display, labels, p))
            }
            ast::Expr::Not(inner) => walk(work, schema, display, labels, inner),
            ast::Expr::Cmp { lhs, rhs, .. } => {
                let a = operand_type(work, schema, display, labels, lhs)?;
                let b = operand_type(work, schema, display, labels, rhs)?;
                if let (Some(a), Some(b)) = (a, b) {
                    if !a.comparable_with(b) {
                        return Err(GraqlError::type_error(format!(
                            "cannot compare {a} with {b}"
                        )));
                    }
                }
                Ok(())
            }
        }
    }
    walk(work, schema, display, labels, cond)
}

fn register_into(
    work: &mut Catalog,
    sel: &ast::SelectStmt,
    schema: Option<TableSchema>,
) -> Result<()> {
    match &sel.into {
        Some(ast::IntoClause::Table(name)) => {
            let schema = schema.unwrap_or_else(|| TableSchema::new(Vec::new()).expect("empty ok"));
            work.add_result_table(name, schema)
        }
        Some(ast::IntoClause::Subgraph(name)) => work.add_result_subgraph(name),
        None => Ok(()),
    }
}
