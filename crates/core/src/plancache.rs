//! Compiled-plan cache for the serve path (ROADMAP item 4).
//!
//! Every remote request used to pay the full front half of the pipeline —
//! IR decode, static analysis, rewrite passes — even when the same query
//! text arrives thousands of times per second against an unchanged
//! database. This cache memoizes the expensive middle: an
//! analysis-validated script whose select statements already have their
//! semantics-preserving rewrites applied, ready to hand straight to the
//! executor via [`crate::Database::execute_select_prepared`].
//!
//! ## Keying and MVCC correctness
//!
//! The key is `(epoch_seq, normalized query text)`:
//!
//! * **normalized text** is the script's canonical [`std::fmt::Display`]
//!   rendering, so `select a from table T` and `SELECT  a FROM table T`
//!   share an entry once parsed;
//! * **epoch_seq** is the publish sequence number stamped *inside* each
//!   [`crate::Database`] epoch by the server's install path. Readers key
//!   lookups by the epoch they actually pinned, so a cached plan can
//!   never be replayed against a catalog it was not validated on — a
//!   concurrent DDL publishes a new epoch with a new sequence and the
//!   old entries simply stop matching.
//!
//! Invalidation is belt-and-braces on top of the keying: every epoch
//! publish drops entries from older epochs (they can only be reached by
//! already-in-flight readers, which at worst re-insert and are then
//! reclaimed by LRU), and replica promotion clears the cache outright.
//!
//! Only read-only scripts (selects without `into`, profiles) are cached:
//! writes publish a new epoch anyway, so their plans are dead on arrival.
//!
//! Eviction is least-recently-used by a monotonic touch tick. Capacity 0
//! disables the cache entirely (the `--plan-cache 0` escape hatch).

use std::sync::Arc;

use graql_parser::ast::Stmt;
use graql_types::PlanCacheMetrics;
use parking_lot::Mutex;
use rustc_hash::FxHashMap;

/// Default number of cached plans (`gems-serve --plan-cache` overrides).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

#[derive(Debug)]
struct Entry {
    /// The script's statements with analysis validated and select
    /// rewrites pre-applied (profiles are stored verbatim — the profile
    /// path re-renders its own plan and must measure the rewrite too).
    stmts: Arc<Vec<Stmt>>,
    /// Monotonic touch tick for LRU eviction.
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    map: FxHashMap<(u64, String), Entry>,
    capacity: usize,
    tick: u64,
}

/// The plan cache. Shared by every session of a server; all operations
/// take one short mutex hold (the map stores `Arc`s, so hits clone a
/// pointer, never a plan).
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    metrics: Arc<PlanCacheMetrics>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                capacity,
                tick: 0,
            }),
            metrics: Arc::new(PlanCacheMetrics::new()),
        }
    }

    /// The hit/miss/eviction counters (attached to the server's
    /// [`graql_types::MetricsRegistry`] so `describe` and Prometheus see
    /// the same atomics).
    pub fn metrics(&self) -> &Arc<PlanCacheMetrics> {
        &self.metrics
    }

    /// False when capacity is 0 — callers then skip normalization
    /// entirely, so a disabled cache costs nothing.
    pub fn enabled(&self) -> bool {
        self.inner.lock().capacity > 0
    }

    /// Resizes the cache, evicting LRU entries if shrinking. Capacity 0
    /// disables it and drops everything.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity;
        while inner.map.len() > capacity {
            evict_lru(&mut inner);
            self.metrics.evictions.inc();
        }
        self.metrics.set_entries(inner.map.len() as u64);
    }

    /// Looks up the plan for `text` compiled against epoch `epoch_seq`.
    /// Counts a hit or a miss.
    pub fn lookup(&self, epoch_seq: u64, text: &str) -> Option<Arc<Vec<Stmt>>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        // Borrow dance: the key is only materialized on the miss path.
        match inner.map.get_mut(&(epoch_seq, text.to_string())) {
            Some(entry) => {
                entry.last_used = tick;
                let stmts = Arc::clone(&entry.stmts);
                drop(inner);
                self.metrics.hits.inc();
                Some(stmts)
            }
            None => {
                drop(inner);
                self.metrics.misses.inc();
                None
            }
        }
    }

    /// Inserts a compiled plan, evicting the least-recently-used entry
    /// when full. No-op when disabled.
    pub fn insert(&self, epoch_seq: u64, text: String, stmts: Arc<Vec<Stmt>>) {
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(
            (epoch_seq, text),
            Entry {
                stmts,
                last_used: tick,
            },
        );
        while inner.map.len() > inner.capacity {
            evict_lru(&mut inner);
            self.metrics.evictions.inc();
        }
        self.metrics.set_entries(inner.map.len() as u64);
    }

    /// Drops every entry compiled against an epoch older than `seq` —
    /// called on each epoch publish, so DDL/ingest (and even the
    /// graph-build publishes of the read path) retire stale plans
    /// promptly instead of leaving them to LRU.
    pub fn invalidate_epochs_before(&self, seq: u64) {
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner.map.retain(|(e, _), _| *e >= seq);
        let dropped = before - inner.map.len();
        if dropped > 0 {
            self.metrics.evictions.add(dropped as u64);
        }
        self.metrics.set_entries(inner.map.len() as u64);
    }

    /// Drops everything (replica promotion, tests).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.map.len();
        inner.map.clear();
        self.metrics.evictions.add(dropped as u64);
        self.metrics.set_entries(0);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn evict_lru(inner: &mut Inner) {
    let victim = inner
        .map
        .iter()
        .min_by_key(|(_, e)| e.last_used)
        .map(|(k, _)| k.clone());
    if let Some(k) = victim {
        inner.map.remove(&k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmts(text: &str) -> Arc<Vec<Stmt>> {
        Arc::new(graql_parser::parse(text).unwrap().statements)
    }

    #[test]
    fn hit_miss_and_entry_accounting() {
        let c = PlanCache::new(8);
        assert!(c.lookup(1, "select a from table T").is_none());
        c.insert(
            1,
            "select a from table T".into(),
            stmts("select a from table T"),
        );
        assert!(c.lookup(1, "select a from table T").is_some());
        // Same text, different epoch: distinct entry.
        assert!(c.lookup(2, "select a from table T").is_none());
        assert_eq!(c.metrics().hits.get(), 1);
        assert_eq!(c.metrics().misses.get(), 2);
        assert_eq!(c.metrics().entries(), 1);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let c = PlanCache::new(2);
        c.insert(1, "a".into(), stmts("select a from table T"));
        c.insert(1, "b".into(), stmts("select a from table T"));
        c.lookup(1, "a"); // touch "a" so "b" is the LRU victim
        c.insert(1, "c".into(), stmts("select a from table T"));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(1, "a").is_some());
        assert!(c.lookup(1, "b").is_none(), "LRU victim evicted");
        assert!(c.lookup(1, "c").is_some());
        assert_eq!(c.metrics().evictions.get(), 1);
    }

    #[test]
    fn epoch_invalidation_and_clear() {
        let c = PlanCache::new(8);
        c.insert(1, "a".into(), stmts("select a from table T"));
        c.insert(2, "a".into(), stmts("select a from table T"));
        c.invalidate_epochs_before(2);
        assert_eq!(c.len(), 1);
        assert!(c.lookup(1, "a").is_none());
        assert!(c.lookup(2, "a").is_some());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.metrics().entries(), 0);
    }

    #[test]
    fn capacity_zero_disables() {
        let c = PlanCache::new(0);
        assert!(!c.enabled());
        c.insert(1, "a".into(), stmts("select a from table T"));
        assert!(c.is_empty());
        // And shrinking to zero drops live entries.
        let c = PlanCache::new(4);
        c.insert(1, "a".into(), stmts("select a from table T"));
        c.set_capacity(0);
        assert!(c.is_empty());
    }
}
