//! # graql-core
//!
//! The GraQL front-end and execution engine — the paper's primary
//! contribution, realized on top of the tabular substrate (`graql-table`)
//! and the graph views (`graql-graph`).
//!
//! Pipeline (paper §III):
//!
//! ```text
//! GraQL text ──parse──▶ AST ──static analysis──▶ checked AST
//!          ──compile──▶ binary IR ──▶ (ship to backend) ──▶ plan ──▶ execute
//! ```
//!
//! * [`catalog`] — the metadata repository of tables, vertex and edge
//!   definitions held by the GEMS front-end server.
//! * [`analyze`] — static query analysis (§III-A): pure catalog checks,
//!   no data access.
//! * [`analysis`] — the IR-level pass framework layered above it: typed
//!   dataflow over per-binding domains, semantics-preserving rewrites
//!   (constant folding, dead-branch elimination, composition flattening)
//!   and statistics-backed cardinality estimation.
//! * [`ir`] — the "high-level binary intermediate representation" a script
//!   compiles into before moving to the backend.
//! * [`ddl`] — executable semantics of vertex/edge creation (Eq. 1–2),
//!   including the left-deep join construction for multi-table edge
//!   declarations (the Fig. 4 `export` edge).
//! * [`plan`] — dynamic query planning (§III-B): statistics-driven choice
//!   of the enumeration start step and traversal directions over the
//!   bidirectional edge index.
//! * [`exec`] — path-query execution: per-step candidates, semi-join
//!   culling, binding enumeration, labels, multi-path composition, variant
//!   steps, path regexes, and the Table-1 relational statements.
//! * [`database`] — the embedded [`Database`] façade (catalog + storage +
//!   graph + named results).
//! * [`script`] — multi-statement scripts with dependence-based parallel
//!   scheduling (§III-B1).

pub mod analysis;
pub mod analyze;
pub mod catalog;
pub mod compile;
pub mod cond;
pub mod database;
pub mod ddl;
pub mod exec;
pub mod ir;
pub mod lint;
pub mod persist;
pub mod plan;
pub mod plancache;
pub mod script;
pub mod server;
pub mod wal;

pub use catalog::{Catalog, CatalogStats};
pub use database::{Database, PlanMode, StmtOutput};
pub use exec::results::QueryOutput;
pub use persist::{load_dir, save_dir};
pub use plan::ExecConfig;
pub use plancache::PlanCache;
pub use script::{run_script, run_script_pipelined, ScriptReport};
pub use server::{ReplRole, Role, Server, Session, SessionOutput};
pub use wal::{
    decode_frames, DurabilityOptions, RecoveryReport, ReplBootstrap, ShippedBatch, Wal, WalPayload,
};
