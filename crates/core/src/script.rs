//! Multi-statement GraQL scripts with dependence-based scheduling
//! (paper §III-B1): "this representation enables the query planner to
//! determine whether two separate query statements q_i and q_j can be
//! executed in parallel … or need to be executed in sequence."
//!
//! Dependences come from the explicit `into table` / `into subgraph`
//! outputs and the named inputs of each statement. DDL and ingest
//! statements act as barriers (they reshape the catalog and regenerate the
//! graph views). Independent selects within a window run concurrently on
//! scoped threads against the immutable database snapshot.

use graql_parser::ast::{self, Stmt};
use graql_types::{GraqlError, Result};
use rustc_hash::FxHashSet;

use crate::database::{Database, StmtOutput};

/// Execution trace of a scheduled script run.
#[derive(Debug)]
pub struct ScriptReport {
    /// One output per statement, in statement order.
    pub outputs: Vec<StmtOutput>,
    /// The parallel windows that were formed (statement indices).
    pub windows: Vec<Vec<usize>>,
}

/// Read/write name sets of a statement, for hazard detection.
#[derive(Debug, Default)]
struct Effects {
    reads: FxHashSet<String>,
    writes: FxHashSet<String>,
    /// DDL / ingest: serializes with everything.
    barrier: bool,
}

fn effects(stmt: &Stmt) -> Effects {
    let mut e = Effects::default();
    match stmt {
        Stmt::CreateTable(_) | Stmt::CreateVertex(_) | Stmt::CreateEdge(_) | Stmt::Ingest(_) => {
            e.barrier = true;
        }
        Stmt::Select(sel) => {
            match &sel.source {
                ast::SelectSource::Table(t) => {
                    e.reads.insert(t.clone());
                }
                ast::SelectSource::Graph(comp) => {
                    // The graph itself is immutable between barriers; only
                    // named seeds are read dependences.
                    for p in comp.paths() {
                        for v in p.vertex_steps() {
                            if let Some(seed) = &v.seed {
                                e.reads.insert(seed.clone());
                            }
                        }
                    }
                }
            }
            match &sel.into {
                Some(ast::IntoClause::Table(n)) | Some(ast::IntoClause::Subgraph(n)) => {
                    e.writes.insert(n.clone());
                }
                None => {}
            }
        }
        // `profile` is read-only but runs as its own serial window: stage
        // timings measured while unrelated selects saturate the cores
        // would be noise, not a profile.
        Stmt::Profile(_) => {
            e.barrier = true;
        }
    }
    e
}

fn conflicts(a: &Effects, b: &Effects) -> bool {
    if a.barrier || b.barrier {
        return true;
    }
    // RAW / WAR / WAW on named results.
    a.writes
        .iter()
        .any(|w| b.reads.contains(w) || b.writes.contains(w))
        || b.writes.iter().any(|w| a.reads.contains(w))
}

/// Groups statement indices into windows of mutually independent selects
/// (barriers get singleton windows). Original order is preserved within
/// and across windows.
pub fn schedule(statements: &[Stmt]) -> Vec<Vec<usize>> {
    let fx: Vec<Effects> = statements.iter().map(effects).collect();
    let mut windows: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for (i, f) in fx.iter().enumerate() {
        let clash = f.barrier || current.iter().any(|&j| conflicts(&fx[j], f));
        if clash && !current.is_empty() {
            windows.push(std::mem::take(&mut current));
        }
        if f.barrier {
            windows.push(vec![i]);
        } else {
            current.push(i);
        }
    }
    if !current.is_empty() {
        windows.push(current);
    }
    windows
}

/// Parses, analyzes, schedules and executes a script, running independent
/// select statements in parallel.
pub fn run_script(db: &mut Database, text: &str) -> Result<ScriptReport> {
    let script = graql_parser::parse(text)?;
    crate::analyze::analyze_script(db.catalog(), &script)?;
    let windows = schedule(&script.statements);
    let mut outputs: Vec<Option<StmtOutput>> = (0..script.statements.len()).map(|_| None).collect();
    for window in &windows {
        if window.len() == 1 {
            let i = window[0];
            outputs[i] = Some(db.execute(&script.statements[i])?);
            continue;
        }
        // Parallel window: all selects, all independent. Build the graph
        // once, then fan out read-only executions.
        db.graph()?;
        let sels: Vec<(usize, &ast::SelectStmt)> = window
            .iter()
            .map(|&i| match &script.statements[i] {
                Stmt::Select(s) => (i, s),
                _ => unreachable!("non-select statements are barriers"),
            })
            .collect();
        let results: Vec<(usize, Result<crate::exec::results::QueryOutput>)> =
            std::thread::scope(|scope| {
                let db_ref: &Database = db;
                let handles: Vec<_> = sels
                    .iter()
                    .map(|&(i, sel)| scope.spawn(move || (i, db_ref.execute_select(sel))))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
        // Register results sequentially, in statement order.
        let mut sorted = results;
        sorted.sort_by_key(|(i, _)| *i);
        for (i, r) in sorted {
            let Stmt::Select(sel) = &script.statements[i] else {
                unreachable!()
            };
            outputs[i] = Some(db.register_result(sel, r?)?);
        }
    }
    Ok(ScriptReport {
        outputs: outputs
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| GraqlError::exec("internal: statement skipped by scheduler"))?,
        windows,
    })
}

/// Sequential script execution with §III-B1 *pipelined* statement fusion:
/// a graph select `into table T` immediately followed by a grouped
/// aggregation over `T` executes as one streaming operator, never
/// materializing `T` (the producer's slot reports
/// [`StmtOutput::Pipelined`]). Non-fusable statements run normally.
pub fn run_script_pipelined(db: &mut Database, text: &str) -> Result<Vec<StmtOutput>> {
    let script = graql_parser::parse(text)?;
    crate::analyze::analyze_script(db.catalog(), &script)?;
    let stmts = &script.statements;
    let mut outputs: Vec<StmtOutput> = Vec::with_capacity(stmts.len());
    let mut i = 0;
    while i < stmts.len() {
        let fusable = i + 1 < stmts.len()
            && crate::exec::pipeline::can_fuse(&stmts[i], &stmts[i + 1])
            // The fused intermediate is never materialized, so no later
            // statement may read (or re-write) it.
            && !later_statements_touch(&stmts[i + 2..], producer_output(&stmts[i]));
        if fusable {
            let (Stmt::Select(p), Stmt::Select(c)) = (&stmts[i], &stmts[i + 1]) else {
                unreachable!("can_fuse only accepts select pairs")
            };
            db.graph()?;
            let guard = graql_types::QueryGuard::new(db.config().budget);
            let table = {
                let ctx = db.exec_ctx(&guard)?;
                crate::exec::pipeline::execute_fused(&ctx, p, c)?
            };
            outputs.push(StmtOutput::Pipelined);
            outputs.push(db.register_result(c, crate::exec::results::QueryOutput::Table(table))?);
            i += 2;
        } else {
            outputs.push(db.execute(&stmts[i])?);
            i += 1;
        }
    }
    Ok(outputs)
}

/// The `into table` name a statement produces, if any.
fn producer_output(stmt: &Stmt) -> Option<&str> {
    match stmt {
        Stmt::Select(s) => match &s.into {
            Some(ast::IntoClause::Table(n)) => Some(n),
            _ => None,
        },
        _ => None,
    }
}

/// Does any of `rest` read from or write to table `name`?
fn later_statements_touch(rest: &[Stmt], name: Option<&str>) -> bool {
    let Some(name) = name else { return true };
    rest.iter().any(|s| {
        let e = effects(s);
        e.barrier || e.reads.contains(name) || e.writes.contains(name)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_parser::parse_script;

    fn stmts(src: &str) -> Vec<Stmt> {
        parse_script(src).unwrap().statements
    }

    #[test]
    fn independent_selects_share_a_window() {
        let s = stmts(
            "select a from table T into table A\n\
             select b from table T into table B\n\
             select c from table T into table C",
        );
        assert_eq!(schedule(&s), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn raw_dependence_splits_windows() {
        let s = stmts(
            "select a from table T into table A\n\
             select x from table A into table B",
        );
        assert_eq!(schedule(&s), vec![vec![0], vec![1]]);
    }

    #[test]
    fn waw_and_war_dependences_split() {
        let s = stmts(
            "select a from table T into table A\n\
             select b from table U into table A",
        );
        assert_eq!(schedule(&s), vec![vec![0], vec![1]], "WAW");
        let s = stmts(
            "select x from table A into table B\n\
             select a from table T into table A",
        );
        assert_eq!(schedule(&s), vec![vec![0], vec![1]], "WAR");
    }

    #[test]
    fn ddl_and_ingest_are_barriers() {
        let s = stmts(
            "select a from table T into table A\n\
             create table X(a integer)\n\
             select b from table T into table B\n\
             ingest table X 'x.csv'\n\
             select c from table T",
        );
        assert_eq!(
            schedule(&s),
            vec![vec![0], vec![1], vec![2], vec![3], vec![4]]
        );
    }

    #[test]
    fn graph_seeds_are_read_dependences() {
        let s = stmts(
            "select * from graph V() --e--> W into subgraph G1\n\
             select * from graph G1.W() --f--> X into subgraph G2",
        );
        assert_eq!(schedule(&s), vec![vec![0], vec![1]]);
        // Two seed-free graph queries are independent.
        let s = stmts(
            "select * from graph V() --e--> W into subgraph G1\n\
             select * from graph X() --f--> Y into subgraph G2",
        );
        assert_eq!(schedule(&s), vec![vec![0, 1]]);
    }
}
