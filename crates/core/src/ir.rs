//! The binary intermediate representation (paper §III): "a GraQL script is
//! parsed and compiled into a high-level binary intermediate
//! representation (IR) that is a convenient mechanism for moving the query
//! script from the front-end portion of the GEMS system to the backend for
//! execution."
//!
//! Hand-rolled tagged binary codec over [`bytes`]: little-endian scalars,
//! length-prefixed strings, one tag byte per variant. Round-trip
//! (`decode(encode(s)) == s`) is property-tested.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graql_parser::ast::*;
use graql_types::{CmpOp, Date, GraqlError, Result};

/// Magic + version header so stale blobs fail loudly.
const MAGIC: &[u8; 4] = b"GQIR";
const VERSION: u8 = 1;

/// Encodes a parsed script into its binary IR.
pub fn encode(script: &Script) -> Bytes {
    let mut b = BytesMut::new();
    b.put_slice(MAGIC);
    b.put_u8(VERSION);
    b.put_u32_le(script.statements.len() as u32);
    for s in &script.statements {
        enc_stmt(&mut b, s);
    }
    b.freeze()
}

/// Decodes a binary IR blob back into a script.
pub fn decode(mut data: &[u8]) -> Result<Script> {
    let buf = &mut data;
    let mut magic = [0u8; 4];
    if buf.remaining() < 5 {
        return Err(GraqlError::ir("truncated IR header"));
    }
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraqlError::ir("bad IR magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(GraqlError::ir(format!("unsupported IR version {version}")));
    }
    let n = get_u32(buf)? as usize;
    let mut statements = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        statements.push(dec_stmt(buf)?);
    }
    if buf.has_remaining() {
        return Err(GraqlError::ir("trailing bytes after IR script"));
    }
    Ok(Script { statements })
}

// -- low-level helpers -------------------------------------------------------

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(GraqlError::ir("truncated IR"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(GraqlError::ir("truncated IR"));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(GraqlError::ir("truncated IR"));
    }
    Ok(buf.get_u64_le())
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n {
        return Err(GraqlError::ir("truncated IR string"));
    }
    let mut v = vec![0u8; n];
    buf.copy_to_slice(&mut v);
    String::from_utf8(v).map_err(|_| GraqlError::ir("invalid UTF-8 in IR string"))
}

fn put_opt_str(b: &mut BytesMut, s: &Option<String>) {
    match s {
        Some(s) => {
            b.put_u8(1);
            put_str(b, s);
        }
        None => b.put_u8(0),
    }
}

fn get_opt_str(buf: &mut &[u8]) -> Result<Option<String>> {
    Ok(if get_u8(buf)? == 1 {
        Some(get_str(buf)?)
    } else {
        None
    })
}

fn put_opt_expr(b: &mut BytesMut, e: &Option<Expr>) {
    match e {
        Some(e) => {
            b.put_u8(1);
            enc_expr(b, e);
        }
        None => b.put_u8(0),
    }
}

fn get_opt_expr(buf: &mut &[u8]) -> Result<Option<Expr>> {
    Ok(if get_u8(buf)? == 1 {
        Some(dec_expr(buf)?)
    } else {
        None
    })
}

// -- statements --------------------------------------------------------------

fn enc_stmt(b: &mut BytesMut, s: &Stmt) {
    match s {
        Stmt::CreateTable(t) => {
            b.put_u8(0);
            put_str(b, &t.name);
            b.put_u32_le(t.columns.len() as u32);
            for (n, ty) in &t.columns {
                put_str(b, n);
                match ty {
                    TypeName::Integer => b.put_u8(0),
                    TypeName::Float => b.put_u8(1),
                    TypeName::Varchar(n) => {
                        b.put_u8(2);
                        b.put_u32_le(*n);
                    }
                    TypeName::Date => b.put_u8(3),
                }
            }
        }
        Stmt::CreateVertex(v) => {
            b.put_u8(1);
            put_str(b, &v.name);
            b.put_u32_le(v.key.len() as u32);
            for k in &v.key {
                put_str(b, k);
            }
            put_str(b, &v.from_table);
            put_opt_expr(b, &v.where_clause);
        }
        Stmt::CreateEdge(e) => {
            b.put_u8(2);
            put_str(b, &e.name);
            put_str(b, &e.source.vertex_type);
            put_opt_str(b, &e.source.alias);
            put_str(b, &e.target.vertex_type);
            put_opt_str(b, &e.target.alias);
            b.put_u32_le(e.from_tables.len() as u32);
            for t in &e.from_tables {
                put_str(b, t);
            }
            put_opt_expr(b, &e.where_clause);
        }
        Stmt::Ingest(i) => {
            b.put_u8(3);
            put_str(b, &i.table);
            put_str(b, &i.path);
        }
        Stmt::Select(s) => {
            b.put_u8(4);
            enc_select(b, s);
        }
        Stmt::Profile(s) => {
            b.put_u8(5);
            enc_select(b, s);
        }
    }
}

fn dec_stmt(buf: &mut &[u8]) -> Result<Stmt> {
    Ok(match get_u8(buf)? {
        0 => {
            let name = get_str(buf)?;
            let n = get_u32(buf)? as usize;
            let mut columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let cname = get_str(buf)?;
                let ty = match get_u8(buf)? {
                    0 => TypeName::Integer,
                    1 => TypeName::Float,
                    2 => TypeName::Varchar(get_u32(buf)?),
                    3 => TypeName::Date,
                    t => return Err(GraqlError::ir(format!("bad type tag {t}"))),
                };
                columns.push((cname, ty));
            }
            Stmt::CreateTable(CreateTable {
                name,
                columns,
                span: Span::default(),
            })
        }
        1 => {
            let name = get_str(buf)?;
            let n = get_u32(buf)? as usize;
            let mut key = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                key.push(get_str(buf)?);
            }
            let from_table = get_str(buf)?;
            let where_clause = get_opt_expr(buf)?;
            Stmt::CreateVertex(CreateVertex {
                name,
                key,
                from_table,
                where_clause,
                span: Span::default(),
            })
        }
        2 => {
            let name = get_str(buf)?;
            let source = EdgeEndpoint {
                vertex_type: get_str(buf)?,
                alias: get_opt_str(buf)?,
            };
            let target = EdgeEndpoint {
                vertex_type: get_str(buf)?,
                alias: get_opt_str(buf)?,
            };
            let n = get_u32(buf)? as usize;
            let mut from_tables = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                from_tables.push(get_str(buf)?);
            }
            let where_clause = get_opt_expr(buf)?;
            Stmt::CreateEdge(CreateEdge {
                name,
                source,
                target,
                from_tables,
                where_clause,
                span: Span::default(),
            })
        }
        3 => Stmt::Ingest(Ingest {
            table: get_str(buf)?,
            path: get_str(buf)?,
            span: Span::default(),
        }),
        4 => Stmt::Select(dec_select(buf)?),
        5 => Stmt::Profile(dec_select(buf)?),
        t => return Err(GraqlError::ir(format!("bad statement tag {t}"))),
    })
}

// -- expressions --------------------------------------------------------------

fn enc_expr(b: &mut BytesMut, e: &Expr) {
    match e {
        Expr::And(ps) => {
            b.put_u8(0);
            b.put_u32_le(ps.len() as u32);
            ps.iter().for_each(|p| enc_expr(b, p));
        }
        Expr::Or(ps) => {
            b.put_u8(1);
            b.put_u32_le(ps.len() as u32);
            ps.iter().for_each(|p| enc_expr(b, p));
        }
        Expr::Not(x) => {
            b.put_u8(2);
            enc_expr(b, x);
        }
        Expr::Cmp { op, lhs, rhs, .. } => {
            b.put_u8(3);
            b.put_u8(cmp_tag(*op));
            enc_operand(b, lhs);
            enc_operand(b, rhs);
        }
    }
}

fn dec_expr(buf: &mut &[u8]) -> Result<Expr> {
    Ok(match get_u8(buf)? {
        0 => {
            let n = get_u32(buf)? as usize;
            Expr::And((0..n).map(|_| dec_expr(buf)).collect::<Result<_>>()?)
        }
        1 => {
            let n = get_u32(buf)? as usize;
            Expr::Or((0..n).map(|_| dec_expr(buf)).collect::<Result<_>>()?)
        }
        2 => Expr::Not(Box::new(dec_expr(buf)?)),
        3 => {
            let op = cmp_untag(get_u8(buf)?)?;
            let lhs = dec_operand(buf)?;
            let rhs = dec_operand(buf)?;
            Expr::Cmp {
                op,
                lhs,
                rhs,
                span: Span::default(),
            }
        }
        t => return Err(GraqlError::ir(format!("bad expr tag {t}"))),
    })
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_untag(t: u8) -> Result<CmpOp> {
    Ok(match t {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(GraqlError::ir(format!("bad cmp tag {t}"))),
    })
}

fn enc_operand(b: &mut BytesMut, o: &Operand) {
    match o {
        Operand::Attr { qualifier, name } => {
            b.put_u8(0);
            put_opt_str(b, qualifier);
            put_str(b, name);
        }
        Operand::Lit(l) => {
            b.put_u8(1);
            match l {
                Lit::Int(i) => {
                    b.put_u8(0);
                    b.put_i64_le(*i);
                }
                Lit::Float(f) => {
                    b.put_u8(1);
                    b.put_f64_le(*f);
                }
                Lit::Str(s) => {
                    b.put_u8(2);
                    put_str(b, s);
                }
                Lit::Date(d) => {
                    b.put_u8(3);
                    b.put_i32_le(d.days());
                }
                Lit::Param(p) => {
                    b.put_u8(4);
                    put_str(b, p);
                }
            }
        }
    }
}

fn dec_operand(buf: &mut &[u8]) -> Result<Operand> {
    Ok(match get_u8(buf)? {
        0 => Operand::Attr {
            qualifier: get_opt_str(buf)?,
            name: get_str(buf)?,
        },
        1 => Operand::Lit(match get_u8(buf)? {
            0 => Lit::Int(get_u64(buf)? as i64),
            1 => Lit::Float(f64::from_bits(get_u64(buf)?)),
            2 => Lit::Str(get_str(buf)?),
            3 => Lit::Date(Date(get_u32(buf)? as i32)),
            4 => Lit::Param(get_str(buf)?),
            t => return Err(GraqlError::ir(format!("bad literal tag {t}"))),
        }),
        t => return Err(GraqlError::ir(format!("bad operand tag {t}"))),
    })
}

// -- select statements ---------------------------------------------------------

fn enc_select(b: &mut BytesMut, s: &SelectStmt) {
    b.put_u8(s.distinct as u8);
    match s.top {
        Some(n) => {
            b.put_u8(1);
            b.put_u64_le(n);
        }
        None => b.put_u8(0),
    }
    match &s.targets {
        SelectTargets::Star => b.put_u8(0),
        SelectTargets::Items(items) => {
            b.put_u8(1);
            b.put_u32_le(items.len() as u32);
            for it in items {
                match &it.expr {
                    SelectExpr::Col(c) => {
                        b.put_u8(0);
                        enc_colref(b, c);
                    }
                    SelectExpr::Agg(a) => {
                        b.put_u8(1);
                        match a {
                            AggCall::CountStar => b.put_u8(0),
                            AggCall::Count(c) => {
                                b.put_u8(1);
                                enc_colref(b, c);
                            }
                            AggCall::Sum(c) => {
                                b.put_u8(2);
                                enc_colref(b, c);
                            }
                            AggCall::Avg(c) => {
                                b.put_u8(3);
                                enc_colref(b, c);
                            }
                            AggCall::Min(c) => {
                                b.put_u8(4);
                                enc_colref(b, c);
                            }
                            AggCall::Max(c) => {
                                b.put_u8(5);
                                enc_colref(b, c);
                            }
                        }
                    }
                }
                put_opt_str(b, &it.alias);
            }
        }
    }
    match &s.source {
        SelectSource::Table(t) => {
            b.put_u8(0);
            put_str(b, t);
        }
        SelectSource::Graph(p) => {
            b.put_u8(1);
            enc_comp(b, p);
        }
    }
    put_opt_expr(b, &s.where_clause);
    b.put_u32_le(s.group_by.len() as u32);
    for c in &s.group_by {
        enc_colref(b, c);
    }
    b.put_u32_le(s.order_by.len() as u32);
    for k in &s.order_by {
        enc_colref(b, &k.col);
        b.put_u8(k.desc as u8);
    }
    match &s.into {
        None => b.put_u8(0),
        Some(IntoClause::Table(n)) => {
            b.put_u8(1);
            put_str(b, n);
        }
        Some(IntoClause::Subgraph(n)) => {
            b.put_u8(2);
            put_str(b, n);
        }
    }
}

fn dec_select(buf: &mut &[u8]) -> Result<SelectStmt> {
    let distinct = get_u8(buf)? == 1;
    let top = if get_u8(buf)? == 1 {
        Some(get_u64(buf)?)
    } else {
        None
    };
    let targets = match get_u8(buf)? {
        0 => SelectTargets::Star,
        1 => {
            let n = get_u32(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let expr = match get_u8(buf)? {
                    0 => SelectExpr::Col(dec_colref(buf)?),
                    1 => SelectExpr::Agg(match get_u8(buf)? {
                        0 => AggCall::CountStar,
                        1 => AggCall::Count(dec_colref(buf)?),
                        2 => AggCall::Sum(dec_colref(buf)?),
                        3 => AggCall::Avg(dec_colref(buf)?),
                        4 => AggCall::Min(dec_colref(buf)?),
                        5 => AggCall::Max(dec_colref(buf)?),
                        t => return Err(GraqlError::ir(format!("bad agg tag {t}"))),
                    }),
                    t => return Err(GraqlError::ir(format!("bad item tag {t}"))),
                };
                let alias = get_opt_str(buf)?;
                items.push(SelectItem { expr, alias });
            }
            SelectTargets::Items(items)
        }
        t => return Err(GraqlError::ir(format!("bad targets tag {t}"))),
    };
    let source = match get_u8(buf)? {
        0 => SelectSource::Table(get_str(buf)?),
        1 => SelectSource::Graph(dec_comp(buf)?),
        t => return Err(GraqlError::ir(format!("bad source tag {t}"))),
    };
    let where_clause = get_opt_expr(buf)?;
    let n = get_u32(buf)? as usize;
    let mut group_by = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        group_by.push(dec_colref(buf)?);
    }
    let n = get_u32(buf)? as usize;
    let mut order_by = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let col = dec_colref(buf)?;
        let desc = get_u8(buf)? == 1;
        order_by.push(OrderKey { col, desc });
    }
    let into = match get_u8(buf)? {
        0 => None,
        1 => Some(IntoClause::Table(get_str(buf)?)),
        2 => Some(IntoClause::Subgraph(get_str(buf)?)),
        t => return Err(GraqlError::ir(format!("bad into tag {t}"))),
    };
    Ok(SelectStmt {
        distinct,
        top,
        targets,
        source,
        where_clause,
        group_by,
        order_by,
        into,
        span: Span::default(),
    })
}

fn enc_colref(b: &mut BytesMut, c: &ColRef) {
    put_opt_str(b, &c.qualifier);
    put_str(b, &c.name);
}

fn dec_colref(buf: &mut &[u8]) -> Result<ColRef> {
    Ok(ColRef {
        qualifier: get_opt_str(buf)?,
        name: get_str(buf)?,
    })
}

// -- path compositions ----------------------------------------------------------

fn enc_comp(b: &mut BytesMut, c: &PathComposition) {
    match c {
        PathComposition::Single(p) => {
            b.put_u8(0);
            enc_path(b, p);
        }
        PathComposition::And(ps) => {
            b.put_u8(1);
            b.put_u32_le(ps.len() as u32);
            ps.iter().for_each(|p| enc_comp(b, p));
        }
        PathComposition::Or(ps) => {
            b.put_u8(2);
            b.put_u32_le(ps.len() as u32);
            ps.iter().for_each(|p| enc_comp(b, p));
        }
    }
}

fn dec_comp(buf: &mut &[u8]) -> Result<PathComposition> {
    Ok(match get_u8(buf)? {
        0 => PathComposition::Single(dec_path(buf)?),
        1 => {
            let n = get_u32(buf)? as usize;
            PathComposition::And((0..n).map(|_| dec_comp(buf)).collect::<Result<_>>()?)
        }
        2 => {
            let n = get_u32(buf)? as usize;
            PathComposition::Or((0..n).map(|_| dec_comp(buf)).collect::<Result<_>>()?)
        }
        t => return Err(GraqlError::ir(format!("bad composition tag {t}"))),
    })
}

fn enc_path(b: &mut BytesMut, p: &PathQuery) {
    enc_vstep(b, &p.head);
    b.put_u32_le(p.segments.len() as u32);
    for s in &p.segments {
        match s {
            Segment::Hop { edge, vertex } => {
                b.put_u8(0);
                enc_estep(b, edge);
                enc_vstep(b, vertex);
            }
            Segment::Group {
                hops, quant, exit, ..
            } => {
                b.put_u8(1);
                b.put_u32_le(hops.len() as u32);
                for (e, v) in hops {
                    enc_estep(b, e);
                    enc_vstep(b, v);
                }
                match quant {
                    Quant::Star => b.put_u8(0),
                    Quant::Plus => b.put_u8(1),
                    Quant::Range(a, z) => {
                        b.put_u8(2);
                        b.put_u32_le(*a);
                        b.put_u32_le(*z);
                    }
                }
                match exit {
                    Some(v) => {
                        b.put_u8(1);
                        enc_vstep(b, v);
                    }
                    None => b.put_u8(0),
                }
            }
        }
    }
}

fn dec_path(buf: &mut &[u8]) -> Result<PathQuery> {
    let head = dec_vstep(buf)?;
    let n = get_u32(buf)? as usize;
    let mut segments = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        segments.push(match get_u8(buf)? {
            0 => Segment::Hop {
                edge: dec_estep(buf)?,
                vertex: dec_vstep(buf)?,
            },
            1 => {
                let h = get_u32(buf)? as usize;
                let mut hops = Vec::with_capacity(h.min(64));
                for _ in 0..h {
                    hops.push((dec_estep(buf)?, dec_vstep(buf)?));
                }
                let quant = match get_u8(buf)? {
                    0 => Quant::Star,
                    1 => Quant::Plus,
                    2 => Quant::Range(get_u32(buf)?, get_u32(buf)?),
                    t => return Err(GraqlError::ir(format!("bad quant tag {t}"))),
                };
                let exit = if get_u8(buf)? == 1 {
                    Some(dec_vstep(buf)?)
                } else {
                    None
                };
                Segment::Group {
                    hops,
                    quant,
                    exit,
                    span: Span::default(),
                }
            }
            t => return Err(GraqlError::ir(format!("bad segment tag {t}"))),
        });
    }
    Ok(PathQuery { head, segments })
}

fn enc_label(b: &mut BytesMut, l: &Option<LabelDef>) {
    match l {
        None => b.put_u8(0),
        Some(l) => {
            b.put_u8(match l.kind {
                LabelKind::Set => 1,
                LabelKind::Each => 2,
            });
            put_str(b, &l.name);
        }
    }
}

fn dec_label(buf: &mut &[u8]) -> Result<Option<LabelDef>> {
    Ok(match get_u8(buf)? {
        0 => None,
        1 => Some(LabelDef {
            kind: LabelKind::Set,
            name: get_str(buf)?,
            span: Span::default(),
        }),
        2 => Some(LabelDef {
            kind: LabelKind::Each,
            name: get_str(buf)?,
            span: Span::default(),
        }),
        t => return Err(GraqlError::ir(format!("bad label tag {t}"))),
    })
}

fn enc_stepname(b: &mut BytesMut, n: &StepName) {
    match n {
        StepName::Any => b.put_u8(0),
        StepName::Named(s) => {
            b.put_u8(1);
            put_str(b, s);
        }
    }
}

fn dec_stepname(buf: &mut &[u8]) -> Result<StepName> {
    Ok(match get_u8(buf)? {
        0 => StepName::Any,
        1 => StepName::Named(get_str(buf)?),
        t => return Err(GraqlError::ir(format!("bad step-name tag {t}"))),
    })
}

fn enc_vstep(b: &mut BytesMut, v: &VertexStep) {
    enc_label(b, &v.label_def);
    put_opt_str(b, &v.seed);
    enc_stepname(b, &v.name);
    put_opt_expr(b, &v.cond);
}

fn dec_vstep(buf: &mut &[u8]) -> Result<VertexStep> {
    Ok(VertexStep {
        label_def: dec_label(buf)?,
        seed: get_opt_str(buf)?,
        name: dec_stepname(buf)?,
        cond: get_opt_expr(buf)?,
        span: Span::default(),
    })
}

fn enc_estep(b: &mut BytesMut, e: &EdgeStep) {
    enc_label(b, &e.label_def);
    enc_stepname(b, &e.name);
    put_opt_expr(b, &e.cond);
    b.put_u8(match e.dir {
        Dir::Out => 0,
        Dir::In => 1,
    });
}

fn dec_estep(buf: &mut &[u8]) -> Result<EdgeStep> {
    Ok(EdgeStep {
        label_def: dec_label(buf)?,
        name: dec_stepname(buf)?,
        cond: get_opt_expr(buf)?,
        span: Span::default(),
        dir: match get_u8(buf)? {
            0 => Dir::Out,
            1 => Dir::In,
            t => return Err(GraqlError::ir(format!("bad direction tag {t}"))),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graql_parser::parse_script;

    fn corpus() -> &'static str {
        "create table Products(id varchar(10), price float, n integer, d date)\n\
         create vertex ProductVtx(id) from table Products where price > 0.5\n\
         create edge subclass with vertices (TypeVtx as A, TypeVtx as B) where A.subclassOf = B.id\n\
         create edge type with vertices (ProductVtx, TypeVtx) from table ProductTypes where ProductTypes.product = ProductVtx.id\n\
         ingest table Products 'products.csv'\n\
         select y.id from graph ProductVtx(id = %Product1%) --feature--> FeatureVtx <--feature-- def y: ProductVtx(id != %Product1%) into table T1\n\
         select top 10 id, count(*) as groupCount from table T1 group by id order by groupCount desc\n\
         select * from graph A(x = 1) { --[]--> [] }{2,5} --> B(d = date '2008-01-01') into subgraph r\n\
         select * from graph (P() --e--> foreach y: Q()) and (y --f--> R()) or (S() <--g-- T())"
    }

    #[test]
    fn round_trip_corpus() {
        let script = parse_script(corpus()).unwrap();
        let blob = encode(&script);
        let back = decode(&blob).unwrap();
        assert_eq!(script, back);
    }

    #[test]
    fn header_is_checked() {
        assert!(decode(b"").is_err());
        assert!(decode(b"XXXX\x01\x00\x00\x00\x00").is_err());
        let mut blob = encode(&parse_script("select * from table T").unwrap()).to_vec();
        blob[4] = 99; // version
        assert!(decode(&blob).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let blob = encode(&parse_script(corpus()).unwrap());
        for cut in [5, 10, blob.len() / 2, blob.len() - 1] {
            assert!(decode(&blob[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut blob = encode(&parse_script("select * from table T").unwrap()).to_vec();
        blob.push(0);
        assert!(decode(&blob).is_err());
    }

    #[test]
    fn ir_is_compact() {
        let script = parse_script(corpus()).unwrap();
        let blob = encode(&script);
        let text_len = corpus().len();
        // Not a strict requirement, but the binary IR should be in the same
        // ballpark as the source text, not an explosion.
        assert!(
            blob.len() < text_len * 3,
            "IR {} vs text {}",
            blob.len(),
            text_len
        );
    }
}
